//! Quickstart: predict and verify the obstacle problem on a small cluster.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Runs the scaled-down obstacle workload on 2–8 Bordeplage nodes, once with
//! the full P2PDC reference executor and once through the dPerf prediction
//! pipeline, and reports how closely the prediction tracks the reference —
//! the claim of Fig. 10.

use dperf::OptLevel;
use obstacle::ObstacleApp;
use p2p_perf::{PlatformKind, Scenario};

fn main() {
    let app = ObstacleApp::small();
    println!(
        "obstacle problem: {}x{} grid, {} sweeps",
        app.n, app.n, app.sweeps
    );
    println!(
        "{:>6}  {:>14}  {:>14}  {:>8}",
        "peers", "reference [s]", "predicted [s]", "error"
    );
    for nprocs in [2usize, 4, 8] {
        let scenario = Scenario::new(PlatformKind::Grid5000, nprocs)
            .with_app(app.clone())
            .with_opt(OptLevel::O3);
        let reference = scenario.run_reference();
        let prediction = scenario.predict();
        let r = reference.execution_time.as_secs_f64();
        let p = prediction.total.as_secs_f64();
        println!(
            "{nprocs:>6}  {r:>14.3}  {p:>14.3}  {:>7.1}%",
            (p - r).abs() / r * 100.0
        );
    }
    println!("\nreference time includes peer collection, hierarchical allocation and result");
    println!("return; the prediction covers the iteration loop, exactly as dPerf does.");
}
