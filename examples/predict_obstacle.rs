//! The dPerf pipeline, step by step.
//!
//! ```text
//! cargo run --release --example predict_obstacle
//! ```
//!
//! Walks through every stage of Fig. 6 for the obstacle problem: static
//! analysis of the program, block decomposition and dependence graph,
//! instrumentation (and the unparsed instrumented pseudo-source), block
//! benchmarking, per-process trace generation, and finally trace-based
//! simulation on the three platforms of the evaluation.

use dperf::analysis::{analyze, build_dependence_graph, DepKind};
use dperf::instrument::instrument;
use dperf::ir::RankContext;
use dperf::{generate_traces, predict_traces, MachineModel, ModeledBencher, OptLevel};
use netsim::{cluster_bordeplage, daisy_xdsl, lan, HostSpec, PlacementPolicy, SharingMode};
use obstacle::ObstacleApp;
use p2psap::IterativeScheme;

fn main() {
    let app = ObstacleApp::small();
    let nprocs = 4;
    let program = app.program();

    // 1. Automatic static analysis (per rank).
    let env = ObstacleApp::rank_env(1, nprocs, &program.defaults);
    let report = analyze(&program, &env, RankContext { rank: 1, nprocs });
    println!("== static analysis (rank 1 of {nprocs}) ==");
    println!(
        "  statements: {}, loop depth: {}",
        report.stmt_count, report.max_loop_depth
    );
    println!(
        "  communication sites: {} point-to-point, {} collective",
        report.comm_sites, report.collective_sites
    );
    println!(
        "  dynamic work: {:.2e} flops, {} messages",
        report.total_flops, report.dynamic_messages
    );

    // 2. Dependence graphs (the DDG/CDG of Fig. 7).
    let ddg = build_dependence_graph(&program);
    println!("\n== dependence graph ==");
    println!(
        "  {} nodes, {} flow edges, {} control edges",
        ddg.node_count(),
        ddg.edges_of_kind(DepKind::Flow).len(),
        ddg.edges_of_kind(DepKind::Control).len()
    );

    // 3. Instrumentation and unparsing.
    let instrumented = instrument(&program);
    println!(
        "\n== instrumented pseudo-source ({} probes) ==",
        instrumented.probes.len()
    );
    for line in instrumented.unparse().lines().take(12) {
        println!("  {line}");
    }
    println!("  ...");

    // 4. Block benchmarking + trace generation (one trace file per process).
    let bencher = ModeledBencher::new(MachineModel::xeon_em64t_3ghz(), OptLevel::O0);
    let traces = generate_traces(
        &program,
        &app.base_env(),
        nprocs,
        &bencher,
        Some(&ObstacleApp::rank_env),
        "0",
    );
    println!("\n== traces ==");
    println!(
        "  {} processes, {} events, {} messages, max per-rank compute {}",
        traces.nprocs,
        traces.event_count(),
        traces.total_messages(),
        traces.max_compute_time()
    );

    // 5. Trace-based simulation on each platform.
    println!("\n== predictions (optimization level 0, {nprocs} peers) ==");
    let host = HostSpec::xeon_em64t_3ghz();
    let platforms = [
        ("Grid5000", cluster_bordeplage(nprocs, host)),
        ("LAN", lan(64, host)),
        ("xDSL", daisy_xdsl(64, host, 42)),
    ];
    for (name, topo) in platforms {
        let hosts = topo.pick_hosts(nprocs, PlacementPolicy::Spread);
        let pred = predict_traces(
            &traces,
            &topo,
            &hosts,
            IterativeScheme::Synchronous,
            SharingMode::Bottleneck,
        );
        println!(
            "  {name:<9} t_predicted = {:>9.3} s   (compute {:>7.3} s, waiting {:>7.3} s, {} messages)",
            pred.total.as_secs_f64(),
            pred.max_compute.as_secs_f64(),
            pred.max_wait.as_secs_f64(),
            pred.messages
        );
    }
}
