//! The decentralized overlay under churn.
//!
//! ```text
//! cargo run --release --example overlay_churn
//! ```
//!
//! Builds the hybrid topology manager (server + trackers + peers), subjects it
//! to several hundred random join/leave/crash events, and shows that the
//! tracker line stays consistent, that the server can disappear without
//! stopping the system, and that a submitter can still collect peers for a
//! computation afterwards — the robustness claims of §III-A.

use p2p_common::{IpAddr, PeerResources, ResourceRequirements, TaskId};
use p2pdc::{ChurnInjector, Overlay, OverlayConfig};

fn main() {
    // Bootstrap: one core tracker per /16, as the administrator would.
    let core: Vec<IpAddr> = (0..4u8).map(|i| IpAddr::from_octets(10, i, 0, 1)).collect();
    let mut overlay = Overlay::bootstrap(OverlayConfig::default(), &core);
    for i in 0..64u32 {
        let ip = IpAddr::from_octets(10, (i % 4) as u8, (i / 4) as u8 + 1, (i % 200) as u8 + 1);
        overlay.peer_join(ip, None, PeerResources::xeon_em64t());
    }
    println!(
        "bootstrapped: {} trackers, {} peers, {} protocol messages",
        overlay.tracker_count(),
        overlay.peer_count(),
        overlay.total_messages
    );

    // Take the server away: the overlay must keep operating.
    overlay.server_disconnect();

    let mut churn = ChurnInjector::new(2024);
    let events = churn.run(&mut overlay, 400);
    let crashes = events
        .iter()
        .filter(|e| matches!(e, p2pdc::ChurnEvent::TrackerCrash(_)))
        .count();
    println!(
        "after 400 churn events ({} tracker crashes): {} trackers, {} peers",
        crashes,
        overlay.tracker_count(),
        overlay.peer_count()
    );
    let problems = overlay.check_invariants();
    println!("overlay invariant violations: {}", problems.len());
    assert!(problems.is_empty(), "{problems:?}");

    // The server comes back and receives the buffered statistics.
    let cost = overlay.server_reconnect();
    println!(
        "server reconnected, {} statistics reports flushed",
        cost.messages
    );

    // A submitter can still assemble a computation.
    let submitter = overlay.peers().next().expect("peers remain").id;
    let want = overlay.peer_count().saturating_sub(1).min(16);
    let (collected, cost) = overlay.collect_peers(
        submitter,
        want,
        &ResourceRequirements::none(),
        TaskId::new(1),
    );
    println!(
        "collected {} peers for a new computation in {} messages ({} hops on the critical path)",
        collected.len(),
        cost.messages,
        cost.critical_hops
    );
}
