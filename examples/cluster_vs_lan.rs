//! How many LAN or xDSL peers does it take to match the cluster?
//!
//! ```text
//! cargo run --release --example cluster_vs_lan
//! ```
//!
//! Reproduces the reasoning behind Table I on the scaled-down workload: build
//! the predicted performance curves of the Grid'5000 cluster, the xDSL Daisy
//! grid and the campus LAN, then search for the smallest peer-to-peer
//! configuration whose performance is comparable to each cluster size.

use dperf::OptLevel;
use obstacle::ObstacleApp;
use p2p_perf::experiments::{equivalence_table, prediction_curve};
use p2p_perf::PlatformKind;

fn main() {
    let app = ObstacleApp::small();
    let sizes = [2usize, 4, 8, 16, 32];

    println!("predicted execution times (seconds), optimization level 0:\n");
    println!(
        "{:>6}  {:>10}  {:>10}  {:>10}",
        "peers", "Grid5000", "LAN", "xDSL"
    );
    let grid = prediction_curve(&app, PlatformKind::Grid5000, &sizes, OptLevel::O0);
    let lan = prediction_curve(&app, PlatformKind::Lan, &sizes, OptLevel::O0);
    let xdsl = prediction_curve(&app, PlatformKind::Xdsl, &sizes, OptLevel::O0);
    for &n in &sizes {
        println!(
            "{n:>6}  {:>10.3}  {:>10.3}  {:>10.3}",
            grid.at(n).unwrap().time.as_secs_f64(),
            lan.at(n).unwrap().time.as_secs_f64(),
            xdsl.at(n).unwrap().time.as_secs_f64()
        );
    }

    println!("\nequivalent computing power (Table I):\n");
    let table = equivalence_table(&app, &[2, 4, 8], &sizes, OptLevel::O0);
    println!("{}", table.render());
    println!("Reading: e.g. a row '8 LAN slightly lower than 4 Grid5000' means you may choose");
    println!("to deploy the code on eight LAN peers instead of waiting for four cluster nodes.");
}
