//! Root shim of the `p2p-perf-repro` package.
//!
//! The package exists only to host the workspace-level integration tests
//! (`tests/`) and examples (`examples/`); all functionality lives in the
//! crates under `crates/`. Re-export the facade so examples can use either
//! name.

pub use p2p_perf::*;
