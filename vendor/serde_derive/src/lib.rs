//! In-repo shim for `serde_derive` (see `vendor/README.md`).
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace uses, by hand-parsing the item's token stream (no
//! `syn`/`quote` available offline):
//!
//! * structs with named fields           → JSON object
//! * newtype structs (one tuple field)   → transparent (the inner value)
//! * tuple structs (2+ fields)           → JSON array
//! * unit enum variants                  → the variant name as a string
//! * newtype enum variants               → `{"Variant": value}`
//! * tuple enum variants                 → `{"Variant": [values...]}`
//! * struct enum variants                → `{"Variant": {fields...}}`
//!
//! Generic types and `#[serde(...)]` attributes are not supported; the
//! macro panics with a clear message if it meets one.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Skip one attribute (`#` already consumed is NOT assumed: the caller peeks).
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then `[...]` (outer attribute / doc comment).
                i += 1;
                match tokens.get(i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => i += 1,
                    other => panic!("serde_derive shim: malformed attribute near {other:?}"),
                }
            }
            _ => return i,
        }
    }
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Advance past a type (or any token soup) to the next comma at angle-bracket
/// depth zero. Returns the index of that comma (or `tokens.len()`).
fn skip_to_comma(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut depth: i32 = 0;
    while let Some(t) = tokens.get(i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return i,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

/// Parse `name: Type, ...` named fields out of a brace group's tokens.
fn parse_named_fields(tokens: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(tokens, i);
        if i >= tokens.len() {
            break;
        }
        i = skip_vis(tokens, i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive shim: expected field name, found {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive shim: expected `:` after field {name}, found {other:?}"),
        }
        i = skip_to_comma(tokens, i);
        i += 1; // past the comma (or end)
        fields.push(name);
    }
    fields
}

/// Count the comma-separated types of a paren group (tuple struct / variant).
fn count_tuple_fields(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(tokens, i);
        i = skip_vis(tokens, i);
        i = skip_to_comma(tokens, i);
        count += 1;
        i += 1;
    }
    count
}

fn parse_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive shim: expected variant name, found {other:?}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                VariantKind::Tuple(count_tuple_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                VariantKind::Struct(parse_named_fields(&inner))
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional explicit discriminant `= expr`.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '=' {
                i = skip_to_comma(tokens, i);
            }
        }
        // Past the separating comma.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected struct/enum, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic type {name} is not supported");
        }
    }
    let shape = match (kind.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Shape::NamedStruct(parse_named_fields(&inner))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Shape::TupleStruct(count_tuple_fields(&inner))
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Shape::Enum(parse_variants(&inner))
        }
        (k, other) => panic!("serde_derive shim: unsupported item {k} {name}: {other:?}"),
    };
    Item { name, shape }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Object(vec![{}])", pairs.join(", "))
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_value(f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binders: Vec<String> =
                                (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Array(vec![{}]))]),",
                                binders.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binders = fields.join(", ");
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binders} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Object(vec![{}]))]),",
                                pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    );
    out.parse()
        .expect("serde_derive shim: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(fields, \"{f}\", \"{name}\")?"))
                .collect();
            format!(
                "let fields = v.as_object().ok_or_else(|| ::serde::DeError::expected(\"object\", \"{name}\", v))?;\n\
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                .collect();
            format!(
                "let arr = v.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", \"{name}\", v))?;\n\
                 if arr.len() != {n} {{ return Err(::serde::DeError::msg(format!(\"{name}: expected {n} elements, found {{}}\", arr.len()))); }}\n\
                 Ok({name}({}))",
                inits.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => return Ok({name}::{0}),", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => return Ok({name}::{vn}(::serde::Deserialize::from_value(payload)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&arr[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let arr = payload.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", \"{name}::{vn}\", payload))?;\n\
                                     if arr.len() != {n} {{ return Err(::serde::DeError::msg(format!(\"{name}::{vn}: expected {n} elements, found {{}}\", arr.len()))); }}\n\
                                     return Ok({name}::{vn}({}));\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::field(fields, \"{f}\", \"{name}::{vn}\")?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let fields = payload.as_object().ok_or_else(|| ::serde::DeError::expected(\"object\", \"{name}::{vn}\", payload))?;\n\
                                     return Ok({name}::{vn} {{ {} }});\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "if let Some(s) = v.as_str() {{\n\
                     match s {{ {unit} _ => return Err(::serde::DeError::msg(format!(\"unknown {name} variant {{s}}\"))), }}\n\
                 }}\n\
                 if let Some(fields) = v.as_object() {{\n\
                     if fields.len() == 1 {{\n\
                         let (tag, payload) = &fields[0];\n\
                         match tag.as_str() {{ {data} _ => return Err(::serde::DeError::msg(format!(\"unknown {name} variant {{tag}}\"))), }}\n\
                     }}\n\
                 }}\n\
                 Err(::serde::DeError::expected(\"enum variant\", \"{name}\", v))",
                unit = unit_arms.join("\n"),
                data = data_arms.join("\n"),
            )
        }
    };
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    );
    out.parse()
        .expect("serde_derive shim: generated invalid Deserialize impl")
}
