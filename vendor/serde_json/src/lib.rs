//! In-repo shim for `serde_json` (see `vendor/README.md`).
//!
//! Prints and parses the `serde` shim's [`Value`] tree as JSON. Integers
//! round-trip exactly (`u64`/`i64` are parsed without going through `f64`).

use serde::{DeError, Deserialize, Serialize};
use std::fmt;

pub use serde::Value;

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error(e.0)
    }
}

/// Render any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serialize to a compact JSON string. (Infallible for this shim's data
/// model; the `Result` mirrors serde_json's signature.)
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse a JSON string into any deserializable value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => write_f64(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_f64(f: f64, out: &mut String) {
    if f.is_finite() {
        // Rust's Display for f64 is shortest-round-trip; make sure integral
        // floats keep a `.0` so they read back as floats.
        let s = f.to_string();
        out.push_str(&s);
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/inf; serde_json errors here, we emit null.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not produced by this shim's
                            // writer; accept BMP scalars only.
                            let c =
                                char::from_u32(code).ok_or_else(|| Error::new("bad \\u scalar"))?;
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape \\{}", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_value_tree() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(u64::MAX)),
            ("b".into(), Value::Int(-42)),
            ("c".into(), Value::Float(1.5)),
            ("d".into(), Value::Str("hi \"there\"\n".into())),
            (
                "e".into(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
        ]);
        let compact = to_string(&v).unwrap();
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn integral_floats_keep_their_point() {
        let s = to_string(&Value::Float(2.0)).unwrap();
        assert_eq!(s, "2.0");
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, Value::Float(2.0));
    }
}
