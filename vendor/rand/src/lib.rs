//! In-repo shim for `rand` 0.8 (see `vendor/README.md`).

use std::fmt;

/// Error type of fallible RNG operations (never produced by this shim's
/// generators, but part of the `RngCore` contract).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
    /// Fallible fill (infallible here).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator seedable from a fixed-size byte seed.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a 64-bit seed, expanded with SplitMix64 like rand_core.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod distributions {
    //! Sampling distributions (uniform only).

    use super::RngCore;

    /// Types samplable from the "standard" distribution via [`Rng::gen`].
    ///
    /// [`Rng::gen`]: super::Rng::gen
    pub trait Standard: Sized {
        /// Draw one value.
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl Standard for f64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
            // 53 random bits into [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Standard for f32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Standard for u32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Standard for u64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Standard for bool {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
            rng.next_u32() & 1 == 1
        }
    }

    pub mod uniform {
        //! Uniform sampling over ranges.

        use super::super::RngCore;

        /// Types with a uniform sampler over half-open / inclusive ranges.
        pub trait SampleUniform: PartialOrd + Copy {
            /// Uniform draw from `[low, high)`.
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
            /// Uniform draw from `[low, high]`.
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
        }

        /// Uniform draw of a `u64` below `bound` (widening-multiply method).
        fn u64_below<R: RngCore + ?Sized>(bound: u64, rng: &mut R) -> u64 {
            debug_assert!(bound > 0);
            // Widening multiply gives a near-uniform map from 2^64 to bound
            // buckets; reject the biased low zone for exactness.
            let threshold = bound.wrapping_neg() % bound;
            loop {
                let x = rng.next_u64();
                let m = (x as u128) * (bound as u128);
                if (m as u64) >= threshold {
                    return (m >> 64) as u64;
                }
            }
        }

        macro_rules! impl_uniform_int {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                        assert!(low < high, "gen_range: low >= high");
                        let span = (high as i128 - low as i128) as u64;
                        (low as i128 + u64_below(span, rng) as i128) as $t
                    }
                    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                        assert!(low <= high, "gen_range: low > high");
                        let span = (high as i128 - low as i128) as u64;
                        if span == u64::MAX {
                            return rng.next_u64() as $t;
                        }
                        (low as i128 + u64_below(span + 1, rng) as i128) as $t
                    }
                }
            )*};
        }

        impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! impl_uniform_float {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                        assert!(low < high, "gen_range: low >= high");
                        let unit = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                        let v = low + (high - low) * unit;
                        // Guard against rounding up to `high`.
                        if v < high { v } else { low }
                    }
                    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                        assert!(low <= high, "gen_range: low > high");
                        let unit = (rng.next_u64() >> 11) as $t * (1.0 / ((1u64 << 53) - 1) as $t);
                        low + (high - low) * unit
                    }
                }
            )*};
        }

        impl_uniform_float!(f32, f64);

        /// Range-shaped arguments of `gen_range`.
        pub trait SampleRange<T> {
            /// Draw one value from the range.
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_half_open(self.start, self.end, rng)
            }
        }

        impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_inclusive(*self.start(), *self.end(), rng)
            }
        }
    }
}

use distributions::uniform::{SampleRange, SampleUniform};
use distributions::Standard;

/// Convenience extension over [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform draw from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}
