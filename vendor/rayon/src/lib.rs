//! In-repo shim for `rayon` (see `vendor/README.md`).
//!
//! Implements the slice/`Vec` parallel-iterator subset this workspace uses:
//! `par_iter()` / `into_par_iter()`, chained `map`s, and `collect()` into a
//! `Vec` with **deterministic, order-preserving output** — plus
//! [`scope_for_each_mut`], a scoped fork–join over a mutable slice for
//! callers that manage their own work partitioning (the netsim shard
//! executor). Work is split into one contiguous chunk per worker and
//! executed on `std::thread::scope` threads — no work stealing, which is
//! adequate for the coarse-grained simulation sweeps this workspace
//! parallelises.
//!
//! Like the real rayon, the default worker count honours the
//! `RAYON_NUM_THREADS` environment variable (a positive integer overrides
//! the detected core count); the value is resolved **once** per process and
//! cached, exactly as a real global thread pool would pin it at creation.

use std::num::NonZeroUsize;
use std::sync::OnceLock;

pub mod prelude {
    //! The traits a caller needs in scope.
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

/// The process-wide default worker count: `RAYON_NUM_THREADS` when set to a
/// positive integer, the detected core count otherwise. Resolved once and
/// cached (the real rayon pins its global pool size the same way), so
/// repeated parallel calls neither re-read the environment nor re-query
/// `available_parallelism`.
pub fn current_num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Number of worker threads to use for `n` items.
fn thread_count(n: usize) -> usize {
    current_num_threads().min(n).max(1)
}

/// Order-preserving parallel map of `items` through `f`.
fn par_apply<T, U, F>(items: Vec<T>, f: &F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let threads = thread_count(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Slot buffer the worker threads fill in place, one disjoint chunk each.
    let mut slots: Vec<Option<U>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let chunk = n.div_ceil(threads);
    // Hand each worker an owned chunk of inputs and the matching slot chunk.
    let mut work: Vec<(Vec<T>, &mut [Option<U>])> = Vec::with_capacity(threads);
    {
        let mut items = items;
        let mut rest: &mut [Option<U>] = &mut slots;
        while !items.is_empty() {
            let take = chunk.min(items.len());
            let tail = items.split_off(take);
            let (head, next) = rest.split_at_mut(take);
            work.push((std::mem::replace(&mut items, tail), head));
            rest = next;
        }
    }
    std::thread::scope(|s| {
        for (inputs, outputs) in work {
            s.spawn(move || {
                for (slot, item) in outputs.iter_mut().zip(inputs) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("parallel worker filled every slot"))
        .collect()
}

/// A parallel iterator: a finite, order-preserving pipeline of items.
pub trait ParallelIterator: Sized + Send {
    /// The element type.
    type Item: Send;

    /// Materialise all items, running the pipeline in parallel.
    fn run(self) -> Vec<Self::Item>;

    /// Map every item through `op` (applied in parallel at `collect` time).
    fn map<U, F>(self, op: F) -> Map<Self, F>
    where
        U: Send,
        F: Fn(Self::Item) -> U + Sync + Send,
    {
        Map { base: self, op }
    }

    /// Collect into a container, preserving item order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }
}

/// Containers collectible from a parallel iterator.
pub trait FromParallelIterator<T: Send> {
    /// Build the container.
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        iter.run()
    }
}

/// Leaf iterator over an owned batch of items.
pub struct IntoParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for IntoParIter<T> {
    type Item = T;
    fn run(self) -> Vec<T> {
        self.items
    }
}

/// A mapped parallel iterator.
pub struct Map<I, F> {
    base: I,
    op: F,
}

impl<I, U, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    U: Send,
    F: Fn(I::Item) -> U + Sync + Send,
{
    type Item = U;
    fn run(self) -> Vec<U> {
        par_apply(self.base.run(), &self.op)
    }
}

/// Types convertible into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = IntoParIter<T>;
    fn into_par_iter(self) -> IntoParIter<T> {
        IntoParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = IntoParIter<usize>;
    fn into_par_iter(self) -> IntoParIter<usize> {
        IntoParIter {
            items: self.collect(),
        }
    }
}

/// Types offering a parallel iterator over references.
pub trait IntoParallelRefIterator<'a> {
    /// The element type (a reference).
    type Item: Send;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Iterate in parallel by reference.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = IntoParIter<&'a T>;
    fn par_iter(&'a self) -> IntoParIter<&'a T> {
        IntoParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = IntoParIter<&'a T>;
    fn par_iter(&'a self) -> IntoParIter<&'a T> {
        IntoParIter {
            items: self.iter().collect(),
        }
    }
}

/// Scoped fork–join over a mutable slice: split `items` into at most
/// `max_threads` contiguous chunks and run `f` on every element, each chunk
/// on its own scoped worker thread (the first chunk runs on the calling
/// thread, so a two-way split spawns a single worker).
///
/// This is the entry point for callers that partition work themselves into
/// per-task buffers borrowed from surrounding state — e.g. netsim's shard
/// executor, which hands each worker a `&mut` shard task whose closure also
/// reads shared `&` network state. `std::thread::scope` makes those borrows
/// legal without `'static` bounds or `Arc`.
///
/// `max_threads` is taken at face value (clamped to the item count, minimum
/// 1), **not** capped at [`current_num_threads`]: determinism tests
/// deliberately run the same partition at 1, 2 and 8 workers on any
/// machine. `max_threads <= 1` degenerates to a plain sequential loop with
/// no thread machinery at all.
pub fn scope_for_each_mut<T, F>(items: &mut [T], max_threads: usize, f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    let n = items.len();
    let threads = max_threads.min(n).max(1);
    if threads <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        let mut rest = items;
        let mut first: Option<&mut [T]> = None;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            if first.is_none() {
                first = Some(head);
            } else {
                let f = &f;
                s.spawn(move || {
                    for item in head {
                        f(item);
                    }
                });
            }
        }
        // The first chunk runs on the calling thread while the workers go.
        for item in first.expect("non-empty slice has a first chunk") {
            f(item);
        }
    });
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join worker panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn chained_maps_and_into_par_iter() {
        let out: Vec<String> = (0..16)
            .into_par_iter()
            .map(|x| x + 1)
            .map(|x| x.to_string())
            .collect();
        assert_eq!(out[0], "1");
        assert_eq!(out[15], "16");
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn current_num_threads_is_positive_and_stable() {
        let a = super::current_num_threads();
        let b = super::current_num_threads();
        assert!(a >= 1);
        assert_eq!(a, b, "the worker count is resolved once and cached");
    }

    #[test]
    fn scope_for_each_mut_visits_every_element_once() {
        for threads in [1, 2, 3, 8, 64] {
            let mut items: Vec<u64> = (0..37).collect();
            super::scope_for_each_mut(&mut items, threads, |x| *x += 1000);
            assert_eq!(
                items,
                (0..37).map(|x| x + 1000).collect::<Vec<_>>(),
                "every element mutated exactly once at {threads} threads"
            );
        }
    }

    #[test]
    fn scope_for_each_mut_allows_borrowed_environment() {
        // The closure reads shared borrowed state while mutating per-task
        // buffers — the exact shape of the netsim shard executor.
        let shared: Vec<u64> = (0..10).collect();
        let mut tasks: Vec<(usize, u64)> = (0..10).map(|i| (i, 0)).collect();
        super::scope_for_each_mut(&mut tasks, 4, |(i, out)| *out = shared[*i] * 2);
        for (i, out) in tasks {
            assert_eq!(out, shared[i] * 2);
        }
    }

    #[test]
    fn scope_for_each_mut_handles_empty_and_oversized_thread_counts() {
        let mut empty: Vec<u32> = vec![];
        super::scope_for_each_mut(&mut empty, 8, |_| unreachable!());
        let mut one = vec![7u32];
        super::scope_for_each_mut(&mut one, 0, |x| *x += 1);
        assert_eq!(one, vec![8]);
    }
}
