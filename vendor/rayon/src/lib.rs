//! In-repo shim for `rayon` (see `vendor/README.md`).
//!
//! Implements the slice/`Vec` parallel-iterator subset this workspace uses:
//! `par_iter()` / `into_par_iter()`, chained `map`s, and `collect()` into a
//! `Vec` with **deterministic, order-preserving output** — plus
//! [`scope_for_each_mut`], a fork–join over a mutable slice for callers
//! that manage their own work partitioning (the netsim shard executor).
//!
//! Since PR 10 the shim is **pool-backed**, like the real rayon: a
//! [`ThreadPool`] keeps its workers parked on a condvar between dispatches
//! instead of spawning scoped threads per call, so the per-call cost is a
//! wake + join of already-running threads rather than thread creation.
//! `par_iter`/`collect` and [`scope_for_each_mut`] run on a lazily created
//! process-global pool; embedders that want their own worker budget (the
//! netsim flush engine) create private [`ThreadPool`] instances. Items are
//! claimed from a shared atomic cursor — task-level stealing — so an
//! uneven partition no longer pins the slow tail on one worker.
//!
//! Like the real rayon, the default worker count honours the
//! `RAYON_NUM_THREADS` environment variable (a positive integer overrides
//! the detected core count); the value is resolved **once** per process and
//! cached, exactly as a real global thread pool would pin it at creation.

use std::num::NonZeroUsize;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicIsize, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

pub mod prelude {
    //! The traits a caller needs in scope.
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

/// The process-wide default worker count: `RAYON_NUM_THREADS` when set to a
/// positive integer, the detected core count otherwise. Resolved once and
/// cached (the real rayon pins its global pool size the same way), so
/// repeated parallel calls neither re-read the environment nor re-query
/// `available_parallelism`.
pub fn current_num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Number of worker threads to use for `n` items.
fn thread_count(n: usize) -> usize {
    current_num_threads().min(n).max(1)
}

/// A dispatched unit of work: a monomorphized trampoline plus a pointer to
/// the dispatcher's stack-held context. The dispatch barrier in
/// [`ThreadPool::for_each_mut`] guarantees the context outlives every
/// worker's use of it, and the `T: Send` / `F: Sync` bounds on the only
/// call site make the cross-thread handoff sound.
#[derive(Clone, Copy)]
struct Job {
    run: unsafe fn(*const ()),
    ctx: *const (),
}

// Safety: see `Job` — the pointer targets live only as long as the
// dispatching call, which blocks until every worker is done with them.
unsafe impl Send for Job {}

struct PoolState {
    job: Option<Job>,
    /// Stamp incremented per dispatch so a worker never re-runs a job it
    /// already executed (it parks again until the stamp moves).
    seq: u64,
    /// Workers that have not yet finished the current job.
    running: usize,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers park here between dispatches.
    work_ready: Condvar,
    /// The dispatcher blocks here until `running` drains to zero.
    work_done: Condvar,
    wakeups: AtomicU64,
    panicked: AtomicBool,
}

/// Claim context for one `for_each_mut` dispatch. Items are taken from a
/// shared cursor one index at a time, so a worker that finishes early keeps
/// pulling work that a static partition would have left on a slow peer —
/// task-level stealing without per-item channels.
struct ForEachCtx<'a, T, F> {
    base: *mut T,
    len: usize,
    cursor: &'a AtomicUsize,
    /// Concurrency cap: workers take one ticket each before claiming any
    /// items; with no ticket they contribute nothing. The caller holds an
    /// implicit ticket, so `limit` counts it.
    tickets: &'a AtomicIsize,
    f: &'a F,
}

fn claim_loop<T, F: Fn(&mut T)>(ctx: &ForEachCtx<'_, T, F>) {
    loop {
        let i = ctx.cursor.fetch_add(1, Ordering::Relaxed);
        if i >= ctx.len {
            break;
        }
        // Safety: `fetch_add` hands out each index exactly once, so this
        // `&mut` is disjoint from every other claimer's.
        unsafe { (ctx.f)(&mut *ctx.base.add(i)) };
    }
}

unsafe fn run_for_each<T, F: Fn(&mut T) + Sync>(ctx: *const ()) {
    let ctx = unsafe { &*(ctx as *const ForEachCtx<'_, T, F>) };
    if ctx.tickets.fetch_sub(1, Ordering::Relaxed) <= 0 {
        return;
    }
    claim_loop(ctx);
}

/// A persistent pool of parked worker threads.
///
/// Workers are spawned once at construction and then sleep on a condvar;
/// each [`for_each_mut`](Self::for_each_mut) call wakes them, lets them
/// claim items from a shared cursor alongside the calling thread, and
/// blocks until all of them have finished (so borrowed state in the closure
/// needs no `'static` bound). Dropping the pool parks no orphans: workers
/// are signalled to shut down and joined.
///
/// `ThreadPool::new(0)` is valid and spawns nothing — every dispatch then
/// degenerates to a serial loop on the caller, which is the intended mode
/// on single-core machines.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// Serialises concurrent dispatches from different threads (the global
    /// pool is shared process-wide); one job is in flight at a time.
    dispatch_lock: Mutex<()>,
}

impl ThreadPool {
    /// Spawn `threads` parked workers.
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                job: None,
                seq: 0,
                running: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
            wakeups: AtomicU64::new(0),
            panicked: AtomicBool::new(false),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rayon-shim-{i}"))
                    .spawn(move || Self::worker_loop(&shared))
                    .expect("spawn rayon shim worker")
            })
            .collect();
        ThreadPool {
            shared,
            workers,
            dispatch_lock: Mutex::new(()),
        }
    }

    fn worker_loop(shared: &PoolShared) {
        let mut last_seq = 0u64;
        loop {
            let job = {
                let mut st = shared.state.lock().unwrap();
                loop {
                    if st.shutdown {
                        return;
                    }
                    match st.job {
                        Some(job) if st.seq != last_seq => {
                            last_seq = st.seq;
                            break job;
                        }
                        _ => st = shared.work_ready.wait(st).unwrap(),
                    }
                }
            };
            shared.wakeups.fetch_add(1, Ordering::Relaxed);
            // Safety: the dispatcher keeps `job.ctx` alive until `running`
            // drains to zero, which includes this execution.
            let outcome =
                std::panic::catch_unwind(AssertUnwindSafe(|| unsafe { (job.run)(job.ctx) }));
            if outcome.is_err() {
                shared.panicked.store(true, Ordering::SeqCst);
            }
            let mut st = shared.state.lock().unwrap();
            st.running -= 1;
            if st.running == 0 {
                st.job = None;
                shared.work_done.notify_all();
            }
        }
    }

    /// Number of worker threads this pool spawned (the calling thread is
    /// always an additional claimer on top of these).
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Total worker wakeups served since construction. Scheduling-dependent
    /// and therefore **not** deterministic across runs; callers exporting
    /// it must treat it as advisory.
    pub fn wakeups(&self) -> u64 {
        self.shared.wakeups.load(Ordering::Relaxed)
    }

    /// Run `f` once on every element of `items`, claiming elements from a
    /// shared cursor across at most `limit` concurrent claimers (calling
    /// thread included). Blocks until all elements are processed. With no
    /// workers, `limit <= 1`, or fewer than two items, runs serially on the
    /// calling thread with no synchronisation at all.
    ///
    /// Panics in `f` are re-raised on the calling thread after all workers
    /// have quiesced.
    pub fn for_each_mut<T, F>(&self, items: &mut [T], limit: usize, f: F)
    where
        T: Send,
        F: Fn(&mut T) + Sync,
    {
        let n = items.len();
        let limit = limit.min(n).max(1);
        if self.workers.is_empty() || limit <= 1 || n <= 1 {
            for item in items {
                f(item);
            }
            return;
        }
        let cursor = AtomicUsize::new(0);
        // The caller claims without a ticket, so workers share `limit - 1`.
        let tickets = AtomicIsize::new(limit as isize - 1);
        let ctx = ForEachCtx {
            base: items.as_mut_ptr(),
            len: n,
            cursor: &cursor,
            tickets: &tickets,
            f: &f,
        };
        let guard = self.dispatch_lock.lock().unwrap();
        {
            let mut st = self.shared.state.lock().unwrap();
            st.seq += 1;
            st.job = Some(Job {
                run: run_for_each::<T, F>,
                ctx: (&ctx as *const ForEachCtx<'_, T, F>).cast(),
            });
            st.running = self.workers.len();
            self.shared.work_ready.notify_all();
        }
        // The calling thread works through the same cursor while the
        // workers run. A panic here must still wait out the workers (they
        // hold pointers into this stack frame) before unwinding.
        let caller_outcome = std::panic::catch_unwind(AssertUnwindSafe(|| claim_loop(&ctx)));
        let mut st = self.shared.state.lock().unwrap();
        while st.running > 0 {
            st = self.shared.work_done.wait(st).unwrap();
        }
        drop(st);
        let worker_panicked = self.shared.panicked.swap(false, Ordering::SeqCst);
        drop(guard);
        if let Err(payload) = caller_outcome {
            std::panic::resume_unwind(payload);
        }
        if worker_panicked {
            panic!("rayon shim pool worker panicked");
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// The process-global pool backing `par_iter`/`collect` and
/// [`scope_for_each_mut`]: [`current_num_threads`]` - 1` workers (the
/// calling thread is the extra claimer), created on first parallel call.
fn global_pool() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| ThreadPool::new(current_num_threads().saturating_sub(1)))
}

/// Order-preserving parallel map of `items` through `f`.
fn par_apply<T, U, F>(items: Vec<T>, f: &F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let threads = thread_count(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    // In-place slot buffer: each element is taken and replaced by its image
    // under `f`, so output order matches input order regardless of which
    // claimer processed which index.
    let mut slots: Vec<(Option<T>, Option<U>)> =
        items.into_iter().map(|item| (Some(item), None)).collect();
    global_pool().for_each_mut(&mut slots, threads, |slot| {
        let item = slot.0.take().expect("each slot is claimed exactly once");
        slot.1 = Some(f(item));
    });
    slots
        .into_iter()
        .map(|(_, out)| out.expect("parallel worker filled every slot"))
        .collect()
}

/// A parallel iterator: a finite, order-preserving pipeline of items.
pub trait ParallelIterator: Sized + Send {
    /// The element type.
    type Item: Send;

    /// Materialise all items, running the pipeline in parallel.
    fn run(self) -> Vec<Self::Item>;

    /// Map every item through `op` (applied in parallel at `collect` time).
    fn map<U, F>(self, op: F) -> Map<Self, F>
    where
        U: Send,
        F: Fn(Self::Item) -> U + Sync + Send,
    {
        Map { base: self, op }
    }

    /// Collect into a container, preserving item order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }
}

/// Containers collectible from a parallel iterator.
pub trait FromParallelIterator<T: Send> {
    /// Build the container.
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        iter.run()
    }
}

/// Leaf iterator over an owned batch of items.
pub struct IntoParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for IntoParIter<T> {
    type Item = T;
    fn run(self) -> Vec<T> {
        self.items
    }
}

/// A mapped parallel iterator.
pub struct Map<I, F> {
    base: I,
    op: F,
}

impl<I, U, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    U: Send,
    F: Fn(I::Item) -> U + Sync + Send,
{
    type Item = U;
    fn run(self) -> Vec<U> {
        par_apply(self.base.run(), &self.op)
    }
}

/// Types convertible into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = IntoParIter<T>;
    fn into_par_iter(self) -> IntoParIter<T> {
        IntoParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = IntoParIter<usize>;
    fn into_par_iter(self) -> IntoParIter<usize> {
        IntoParIter {
            items: self.collect(),
        }
    }
}

/// Types offering a parallel iterator over references.
pub trait IntoParallelRefIterator<'a> {
    /// The element type (a reference).
    type Item: Send;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Iterate in parallel by reference.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = IntoParIter<&'a T>;
    fn par_iter(&'a self) -> IntoParIter<&'a T> {
        IntoParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = IntoParIter<&'a T>;
    fn par_iter(&'a self) -> IntoParIter<&'a T> {
        IntoParIter {
            items: self.iter().collect(),
        }
    }
}

/// Fork–join over a mutable slice: run `f` on every element with at most
/// `max_threads` concurrent claimers (the calling thread is one of them),
/// dispatched on the process-global [`ThreadPool`].
///
/// This is the entry point for callers that partition work themselves into
/// per-task buffers borrowed from surrounding state — e.g. netsim's shard
/// executor, which hands each worker a `&mut` shard task whose closure also
/// reads shared `&` network state. The dispatch barrier makes those borrows
/// legal without `'static` bounds or `Arc`.
///
/// `max_threads` is taken at face value (clamped to the item count, minimum
/// 1), **not** capped at [`current_num_threads`]: determinism tests
/// deliberately run the same partition at 1, 2 and 8 workers on any machine
/// (actual concurrency is additionally bounded by the pool's spawned
/// workers). `max_threads <= 1` degenerates to a plain sequential loop with
/// no thread machinery at all.
pub fn scope_for_each_mut<T, F>(items: &mut [T], max_threads: usize, f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    let n = items.len();
    let threads = max_threads.min(n).max(1);
    if threads <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    global_pool().for_each_mut(items, threads, f);
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join worker panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn chained_maps_and_into_par_iter() {
        let out: Vec<String> = (0..16)
            .into_par_iter()
            .map(|x| x + 1)
            .map(|x| x.to_string())
            .collect();
        assert_eq!(out[0], "1");
        assert_eq!(out[15], "16");
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn current_num_threads_is_positive_and_stable() {
        let a = super::current_num_threads();
        let b = super::current_num_threads();
        assert!(a >= 1);
        assert_eq!(a, b, "the worker count is resolved once and cached");
    }

    #[test]
    fn scope_for_each_mut_visits_every_element_once() {
        for threads in [1, 2, 3, 8, 64] {
            let mut items: Vec<u64> = (0..37).collect();
            super::scope_for_each_mut(&mut items, threads, |x| *x += 1000);
            assert_eq!(
                items,
                (0..37).map(|x| x + 1000).collect::<Vec<_>>(),
                "every element mutated exactly once at {threads} threads"
            );
        }
    }

    #[test]
    fn scope_for_each_mut_allows_borrowed_environment() {
        // The closure reads shared borrowed state while mutating per-task
        // buffers — the exact shape of the netsim shard executor.
        let shared: Vec<u64> = (0..10).collect();
        let mut tasks: Vec<(usize, u64)> = (0..10).map(|i| (i, 0)).collect();
        super::scope_for_each_mut(&mut tasks, 4, |(i, out)| *out = shared[*i] * 2);
        for (i, out) in tasks {
            assert_eq!(out, shared[i] * 2);
        }
    }

    #[test]
    fn scope_for_each_mut_handles_empty_and_oversized_thread_counts() {
        let mut empty: Vec<u32> = vec![];
        super::scope_for_each_mut(&mut empty, 8, |_| unreachable!());
        let mut one = vec![7u32];
        super::scope_for_each_mut(&mut one, 0, |x| *x += 1);
        assert_eq!(one, vec![8]);
    }

    #[test]
    fn thread_pool_is_reusable_across_dispatches() {
        let pool = super::ThreadPool::new(2);
        assert_eq!(pool.threads(), 2);
        for round in 0..50u64 {
            let mut items: Vec<u64> = (0..97).collect();
            pool.for_each_mut(&mut items, 8, |x| *x += round);
            assert_eq!(items, (0..97).map(|x| x + round).collect::<Vec<_>>());
        }
        assert!(
            pool.wakeups() > 0,
            "workers were woken at least once across 50 dispatches"
        );
    }

    #[test]
    fn thread_pool_with_zero_workers_runs_serially() {
        let pool = super::ThreadPool::new(0);
        assert_eq!(pool.threads(), 0);
        let mut items: Vec<u32> = (0..10).collect();
        pool.for_each_mut(&mut items, 8, |x| *x *= 3);
        assert_eq!(items, (0..10).map(|x| x * 3).collect::<Vec<_>>());
        assert_eq!(pool.wakeups(), 0, "no workers, no wakeups");
    }

    #[test]
    fn thread_pool_ticket_limit_caps_claimers() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let pool = super::ThreadPool::new(4);
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let mut items = vec![(); 64];
        pool.for_each_mut(&mut items, 2, |_| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::yield_now();
            live.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(
            peak.load(Ordering::SeqCst) <= 2,
            "at most `limit` claimers run concurrently"
        );
    }

    #[test]
    fn thread_pool_propagates_worker_panics_and_survives() {
        let pool = super::ThreadPool::new(2);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut items: Vec<u32> = (0..32).collect();
            pool.for_each_mut(&mut items, 4, |x| {
                if *x == 17 {
                    panic!("boom");
                }
            });
        }));
        assert!(outcome.is_err(), "the panic reaches the dispatcher");
        // The pool stays usable after a propagated panic.
        let mut items: Vec<u32> = (0..8).collect();
        pool.for_each_mut(&mut items, 4, |x| *x += 1);
        assert_eq!(items, (1..9).collect::<Vec<_>>());
    }

    #[test]
    fn thread_pool_drop_joins_workers() {
        let pool = super::ThreadPool::new(3);
        let mut items: Vec<u32> = (0..16).collect();
        pool.for_each_mut(&mut items, 3, |x| *x += 1);
        drop(pool); // must not hang or leave detached workers running
    }
}
