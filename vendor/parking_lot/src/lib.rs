//! In-repo shim for `parking_lot` (see `vendor/README.md`).
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API: a
//! panic while holding a lock aborts the acquiring side with an explicit
//! message instead of returning a `PoisonError`.

use std::fmt;

/// A mutual-exclusion lock whose `lock` cannot fail.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard of [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("poisoned Mutex")
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (blocking).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().expect("poisoned Mutex")
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().expect("poisoned Mutex")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// A reader–writer lock whose acquisitions cannot fail.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII guard of [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII guard of [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("poisoned RwLock")
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().expect("poisoned RwLock")
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().expect("poisoned RwLock")
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().expect("poisoned RwLock")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.into_inner(), vec![1, 2, 3]);
    }
}
