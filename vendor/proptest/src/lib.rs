//! In-repo shim for `proptest` (see `vendor/README.md`).
//!
//! Implements the strategy combinators and macros this workspace's property
//! tests use. Inputs are generated from a deterministic per-test RNG
//! (SplitMix64 keyed by the test name and case index) so failures are
//! reproducible; there is **no shrinking** — a failing case panics with the
//! case number, and the deterministic RNG regenerates it on the next run.
//!
//! Case count defaults to 64, overridable with `PROPTEST_CASES`.
//!
//! # Failure persistence (regression corpus)
//!
//! Like the real proptest, a failing case is persisted so it reruns forever
//! after: since a case is fully determined by the `(test name, case index)`
//! pair, the corpus is a plain text file of case indices at
//! `<crate>/tests/regressions/<file-stem>__<test-name>.txt` (one index per
//! line, `#` comments allowed). Every run of the property **replays the
//! whole corpus first**, then runs the fresh cases — so a checked-in corpus
//! is asserted green on every `cargo test`, in every profile. On a fresh
//! failure the shim appends the case index to the corpus (creating the file
//! under a comment header) before re-raising the panic; set
//! `PROPTEST_PERSIST=0` to disable the write (replay always happens).

/// Deterministic generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one (test, case) pair.
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for b in test_name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: seed ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw below `bound` (> 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Number of cases each property runs (`PROPTEST_CASES`, default 64).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Where the regression corpus of one property lives:
/// `<manifest>/tests/regressions/<file-stem>__<test-name>.txt`.
fn corpus_path(manifest_dir: &str, file: &str, test_name: &str) -> std::path::PathBuf {
    let stem = std::path::Path::new(file)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("unknown");
    std::path::Path::new(manifest_dir)
        .join("tests")
        .join("regressions")
        .join(format!("{stem}__{test_name}.txt"))
}

/// Parse a corpus file into case indices. A missing file is an empty corpus;
/// a malformed line is a hard error (a silently skipped regression would
/// defeat the corpus's purpose).
fn read_corpus(path: &std::path::Path) -> Vec<u32> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            l.parse().unwrap_or_else(|_| {
                panic!(
                    "malformed regression corpus line {l:?} in {} (expected a case index)",
                    path.display()
                )
            })
        })
        .collect()
}

/// Append a freshly failing case to the corpus (unless `PROPTEST_PERSIST=0`).
fn persist_failure(path: &std::path::Path, test_name: &str, case: u32) {
    if std::env::var("PROPTEST_PERSIST").as_deref() == Ok("0") {
        return;
    }
    use std::io::Write as _;
    let existed = path.exists();
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    else {
        eprintln!(
            "[proptest-shim] could not persist failing case {case} to {}",
            path.display()
        );
        return;
    };
    if !existed {
        let _ = writeln!(
            f,
            "# proptest-shim regression corpus for `{test_name}`.\n\
             # One case index per line; every test run replays these before fresh cases.\n\
             # See vendor/proptest/src/lib.rs (failure persistence)."
        );
    }
    let _ = writeln!(f, "{case}");
    eprintln!(
        "[proptest-shim] persisted failing case {case} of `{test_name}` to {}",
        path.display()
    );
}

/// Drive one property: replay its persisted regression corpus, then run the
/// fresh cases, persisting any new failure. Called by [`proptest!`].
pub fn run_property<F: Fn(&mut TestRng)>(name: &str, manifest_dir: &str, file: &str, f: F) {
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    let corpus = corpus_path(manifest_dir, file, name);
    for case in read_corpus(&corpus) {
        let mut rng = TestRng::for_case(name, case);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(&mut rng))) {
            eprintln!(
                "[proptest-shim] persisted regression case {case} of `{name}` failed again \
                 (corpus: {})",
                corpus.display()
            );
            resume_unwind(payload);
        }
    }
    for case in 0..cases() {
        let mut rng = TestRng::for_case(name, case);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(&mut rng))) {
            eprintln!("[proptest-shim] case {case} of `{name}` failed");
            persist_failure(&corpus, name, case);
            resume_unwind(payload);
        }
    }
}

pub mod strategy {
    //! Strategies: recipes for random values.

    use super::TestRng;
    use std::sync::Arc;

    /// A recipe for generating random values of one type.
    pub trait Strategy: 'static {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U + 'static,
        {
            Map { base: self, f }
        }

        /// Type-erase.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized,
        {
            BoxedStrategy(Arc::new(move |rng: &mut TestRng| self.generate(rng)))
        }

        /// Build a recursive strategy: `f` receives the strategy for the
        /// previous depth and returns the one-level-deeper strategy. Values
        /// are nested at most `depth` levels; the extra parameters of the
        /// real proptest signature (desired size / branching) are accepted
        /// and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + Clone,
            R: Strategy<Value = Self::Value>,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                let deeper = f(cur).boxed();
                // Half leaf, half deeper: yields a mix of nesting depths.
                cur = one_of(vec![leaf.clone(), deeper]);
            }
            cur
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T: 'static> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniformly choose one of the given strategies, then draw from it.
    pub fn one_of<T: 'static>(options: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
        assert!(!options.is_empty(), "one_of needs at least one option");
        BoxedStrategy(Arc::new(move |rng: &mut TestRng| {
            let i = rng.below(options.len() as u64) as usize;
            options[i].generate(rng)
        }))
    }

    /// Mapped strategy.
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U + 'static,
        U: 'static,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.generate(rng))
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span + 1) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + (self.end - self.start) * rng.unit_f64();
            if v < self.end {
                v
            } else {
                self.start
            }
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized + 'static {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for any [`Arbitrary`] type.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::{BoxedStrategy, Strategy};
    use super::TestRng;

    /// A `Vec` whose length is drawn from `len` and whose elements are drawn
    /// from `element`.
    pub fn vec<S>(element: S, len: core::ops::Range<usize>) -> BoxedStrategy<Vec<S::Value>>
    where
        S: Strategy,
        S::Value: 'static,
    {
        assert!(len.start < len.end, "empty length range");
        struct VecStrategy<S> {
            element: S,
            len: core::ops::Range<usize>,
        }
        impl<S: Strategy> Strategy for VecStrategy<S>
        where
            S::Value: 'static,
        {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.len.end - self.len.start) as u64;
                let n = self.len.start + rng.below(span) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
        VecStrategy { element, len }.boxed()
    }
}

pub mod sample {
    //! Sampling strategies.

    use super::strategy::{BoxedStrategy, Strategy};
    use super::TestRng;

    /// Uniformly pick one of the given values.
    pub fn select<T: Clone + 'static>(options: Vec<T>) -> BoxedStrategy<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        struct Select<T>(Vec<T>);
        impl<T: Clone + 'static> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.0[rng.below(self.0.len() as u64) as usize].clone()
            }
        }
        Select(options).boxed()
    }
}

/// The `prop::` namespace (`prop::collection::vec`, `prop::sample::select`).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    //! Everything a property test needs in scope.
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declare property tests: `proptest! { #[test] fn name(x in strategy) { .. } }`.
///
/// Each property first replays its persisted regression corpus (see the
/// crate docs), then runs [`cases`] fresh cases; a failing fresh case is
/// appended to the corpus before the panic propagates.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$attr])*
            fn $name() {
                $crate::run_property(
                    stringify!($name),
                    env!("CARGO_MANIFEST_DIR"),
                    file!(),
                    |__rng: &mut $crate::TestRng| {
                        $(let $arg = $crate::strategy::Strategy::generate(&($strategy), __rng);)+
                        $body
                    },
                );
            }
        )+
    };
}

/// Assert a condition inside a property (panics with the failing expression).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("property failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!("property failed: {}: {}", stringify!($cond), format!($($fmt)+));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        match (&$a, &$b) {
            (l, r) => {
                if !(*l == *r) {
                    panic!("property failed: {} == {}\n  left: {:?}\n right: {:?}",
                        stringify!($a), stringify!($b), l, r);
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (l, r) => {
                if !(*l == *r) {
                    panic!("property failed: {} == {}: {}\n  left: {:?}\n right: {:?}",
                        stringify!($a), stringify!($b), format!($($fmt)+), l, r);
                }
            }
        }
    };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        match (&$a, &$b) {
            (l, r) => {
                if *l == *r {
                    panic!(
                        "property failed: {} != {}\n  both: {:?}",
                        stringify!($a),
                        stringify!($b),
                        l
                    );
                }
            }
        }
    };
}

/// Uniformly choose among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 5u64..10, y in -3i32..4, f in 0.5f64..2.5) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-3..4).contains(&y));
            prop_assert!((0.5..2.5).contains(&f));
        }

        #[test]
        fn vec_and_select_compose(v in prop::collection::vec(0u32..100, 1..20), pick in prop::sample::select(vec!["a", "b"])) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&x| x < 100));
            prop_assert!(pick == "a" || pick == "b");
        }

        #[test]
        fn maps_and_oneof(e in prop_oneof![(0u32..10).prop_map(|x| x * 2), (100u32..110).prop_map(|x| x)]) {
            prop_assert!(e < 20 || (100..110).contains(&e));
        }
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
