//! In-repo shim for `criterion` (see `vendor/README.md`).
//!
//! A minimal wall-clock benchmark harness with criterion's API shape:
//! benchmark groups, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//! Every sample runs the closure once and records its duration; the mean,
//! min and max are printed per benchmark. Setting `CRITERION_SHIM_JSON` to a
//! path appends one JSON line per benchmark (id, samples, mean/min/max in
//! nanoseconds) — the hook the repo's recorded baselines use.
//!
//! Passing `--test` to the bench binary (`cargo bench -- --test`, the real
//! criterion's smoke-test flag) or setting `CRITERION_TEST_MODE=1` runs
//! every benchmark exactly once with no warm-up and no
//! `CRITERION_SHIM_JSON` dump — a cheap CI smoke mode that catches bench
//! bit-rot without paying measurement time. In that mode, setting
//! `CRITERION_SHIM_TEST_JSON` to a path appends one *minimal* JSON line per
//! benchmark (`{"id":…,"ns":…}` — the single untimed-warm-up-free run's
//! wall clock) so CI can gate on catastrophic slowdowns against the
//! recorded baselines without paying full measurement time.

use std::fmt;
use std::hint;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A two-part benchmark identifier (`function/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build from a function name and a parameter display.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Build from a parameter display only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    samples: usize,
    warmup: bool,
    recorded: Vec<Duration>,
}

impl Bencher {
    /// Run `payload` once per sample, timing each run.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut payload: F) {
        if self.warmup {
            // One untimed warm-up run (fills caches, triggers lazy init).
            black_box(payload());
        }
        self.recorded.clear();
        self.recorded.reserve(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(payload());
            self.recorded.push(start.elapsed());
        }
    }
}

#[derive(Debug, Clone)]
struct Record {
    id: String,
    samples: usize,
    mean_ns: u128,
    min_ns: u128,
    max_ns: u128,
}

/// JSON output targets, resolved from the environment **once** at harness
/// construction. Nothing reads the environment afterwards (and the tests
/// inject paths directly instead of mutating it — `setenv` racing `getenv`
/// across test threads is undefined behaviour on glibc).
#[derive(Debug, Clone, Default)]
struct JsonSinks {
    /// `CRITERION_SHIM_JSON` — full per-benchmark records, measure mode.
    measured: Option<std::path::PathBuf>,
    /// `CRITERION_SHIM_TEST_JSON` — minimal id+ns lines, `--test` mode.
    test: Option<std::path::PathBuf>,
}

impl JsonSinks {
    fn from_env() -> Self {
        JsonSinks {
            measured: std::env::var_os("CRITERION_SHIM_JSON").map(Into::into),
            test: std::env::var_os("CRITERION_SHIM_TEST_JSON").map(Into::into),
        }
    }
}

fn report(id: &str, recorded: &[Duration], test_mode: bool, sinks: &JsonSinks) -> Record {
    let total: Duration = recorded.iter().sum();
    let mean = total / recorded.len().max(1) as u32;
    let min = recorded.iter().min().copied().unwrap_or_default();
    let max = recorded.iter().max().copied().unwrap_or_default();
    let rec = Record {
        id: id.to_string(),
        samples: recorded.len(),
        mean_ns: mean.as_nanos(),
        min_ns: min.as_nanos(),
        max_ns: max.as_nanos(),
    };
    println!(
        "bench {id:<60} mean {mean:>12?} min {min:>12?} max {max:>12?} ({n} samples)",
        n = recorded.len()
    );
    if test_mode {
        // Test mode: optionally record the single run's wall clock in a
        // minimal per-scenario line, the input of CI's bench-regression
        // gate (one cold run is noisy, hence the gate's wide tolerance).
        if let Some(path) = &sinks.test {
            if let Ok(mut f) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let _ = writeln!(f, "{{\"id\":\"{}\",\"ns\":{}}}", rec.id, rec.mean_ns);
            }
        }
        return rec;
    }
    if let Some(path) = &sinks.measured {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                f,
                "{{\"id\":\"{}\",\"samples\":{},\"mean_ns\":{},\"min_ns\":{},\"max_ns\":{}}}",
                rec.id, rec.samples, rec.mean_ns, rec.min_ns, rec.max_ns
            );
        }
    }
    rec
}

/// The top-level harness handle.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    sinks: JsonSinks,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            test_mode: std::env::args().any(|a| a == "--test")
                || std::env::var("CRITERION_TEST_MODE").as_deref() == Ok("1"),
            sinks: JsonSinks::from_env(),
        }
    }
}

impl Criterion {
    /// Set the default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Append one auxiliary telemetry line for a benchmark scenario.
    ///
    /// Metrics ride the same JSON sinks as the timing records but with their
    /// own minimal schema — `{"id":…,"metric":…,"value":…}` — so downstream
    /// tooling (the repo's `bench_gate`) can gate on memory or throughput
    /// telemetry separately from wall clock. In `--test` mode the line goes
    /// to `CRITERION_SHIM_TEST_JSON`, otherwise to `CRITERION_SHIM_JSON`;
    /// with no sink configured only the human-readable line is printed.
    ///
    /// This is a shim extension (the real criterion has no such hook); the
    /// benches call it after `finish()` with the same `group/function/param`
    /// id the timing record used.
    pub fn record_metric(&self, id: &str, metric: &str, value: f64) {
        println!("metric {id:<60} {metric} = {value}");
        let path = if self.test_mode {
            self.sinks.test.as_ref()
        } else {
            self.sinks.measured.as_ref()
        };
        let Some(path) = path else { return };
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                f,
                "{{\"id\":\"{id}\",\"metric\":\"{metric}\",\"value\":{value}}}"
            );
        }
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let (sample_size, test_mode) = (self.sample_size, self.test_mode);
        let sinks = self.sinks.clone();
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
            test_mode,
            sinks,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: if self.test_mode { 1 } else { self.sample_size },
            warmup: !self.test_mode,
            recorded: Vec::new(),
        };
        f(&mut b);
        report(id, &b.recorded, self.test_mode, &self.sinks);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a Criterion,
    name: String,
    sample_size: usize,
    test_mode: bool,
    sinks: JsonSinks,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of samples for benchmarks of this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim has no time-based stopping.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark of this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: if self.test_mode { 1 } else { self.sample_size },
            warmup: !self.test_mode,
            recorded: Vec::new(),
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.id),
            &b.recorded,
            self.test_mode,
            &self.sinks,
        );
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: if self.test_mode { 1 } else { self.sample_size },
            warmup: !self.test_mode,
            recorded: Vec::new(),
        };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.id),
            &b.recorded,
            self.test_mode,
            &self.sinks,
        );
        self
    }

    /// Close the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_selftest");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 500), &500u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn harness_runs_and_records() {
        let mut c = Criterion::default();
        payload(&mut c);
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn test_mode_emits_minimal_json_lines() {
        let path =
            std::env::temp_dir().join(format!("crit_shim_test_{}.jsonl", std::process::id()));
        // Build the harness with the sink injected directly — equivalent to
        // launching with CRITERION_SHIM_TEST_JSON set, but without mutating
        // the process environment under concurrently-running tests.
        let mut c = Criterion {
            sample_size: 10,
            test_mode: true,
            sinks: JsonSinks {
                measured: None,
                test: Some(path.clone()),
            },
        };
        c.bench_function("minimal_json_probe", |b| b.iter(|| black_box(2 + 2)));
        let text = std::fs::read_to_string(&path).expect("test-mode JSON written");
        let _ = std::fs::remove_file(&path);
        let line = text
            .lines()
            .find(|l| l.contains("\"id\":\"minimal_json_probe\""))
            .expect("one line per benchmark");
        assert!(
            line.contains("\"ns\":"),
            "minimal schema is id + ns: {line}"
        );
    }

    #[test]
    fn metric_lines_use_their_own_schema() {
        let path =
            std::env::temp_dir().join(format!("crit_shim_metric_{}.jsonl", std::process::id()));
        let c = Criterion {
            sample_size: 10,
            test_mode: true,
            sinks: JsonSinks {
                measured: None,
                test: Some(path.clone()),
            },
        };
        c.record_metric("group/scenario/1", "peak_rss_bytes", 12345.0);
        let text = std::fs::read_to_string(&path).expect("metric line written");
        let _ = std::fs::remove_file(&path);
        let line = text
            .lines()
            .find(|l| l.contains("\"metric\":\"peak_rss_bytes\""))
            .expect("one line per metric");
        assert!(line.contains("\"id\":\"group/scenario/1\""), "{line}");
        assert!(line.contains("\"value\":12345"), "{line}");
    }
}
