//! In-repo shim for `serde` (see `vendor/README.md`).
//!
//! Instead of serde's zero-copy visitor architecture, this shim funnels
//! everything through an owned [`Value`] tree: `Serialize` renders a value
//! into a `Value`, `Deserialize` reconstructs it from one. The `serde_json`
//! shim prints and parses `Value`s. The encoding conventions match serde's
//! JSON data model so files written by this shim look like serde_json's:
//! newtype structs are transparent, unit enum variants are bare strings, and
//! data-carrying variants are single-key objects.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

/// An owned, JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer (exact).
    UInt(u64),
    /// A negative integer (exact).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved for readable output.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Field lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The array's elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric coercion to `u64` (exact integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(v) => Some(v),
            Value::Int(v) => u64::try_from(v).ok(),
            Value::Float(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            _ => None,
        }
    }

    /// Numeric coercion to `i64` (exact integers only).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::UInt(v) => i64::try_from(v).ok(),
            Value::Int(v) => Some(v),
            Value::Float(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            _ => None,
        }
    }

    /// Numeric coercion to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(v) => Some(v as f64),
            Value::Int(v) => Some(v as f64),
            Value::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) | Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error: a human-readable message.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// "expected X while deserializing Y, found Z" constructor.
    pub fn expected(what: &str, ty: &str, found: &Value) -> DeError {
        DeError(format!(
            "expected {what} while deserializing {ty}, found {}",
            found.kind()
        ))
    }

    /// Free-form constructor.
    pub fn msg(m: impl Into<String>) -> DeError {
        DeError(m.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Render `self` into a [`Value`].
pub trait Serialize {
    /// The value tree of `self`.
    fn to_value(&self) -> Value;
}

/// Reconstruct `Self` from a [`Value`].
pub trait Deserialize: Sized {
    /// Parse `Self` out of a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Helper used by derived code: pull field `name` out of an object (missing
/// fields read as `null`, which only `Option` fields accept).
pub fn field<T: Deserialize>(
    fields: &[(String, Value)],
    name: &str,
    ty: &str,
) -> Result<T, DeError> {
    let v = fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .unwrap_or(&Value::Null);
    T::from_value(v).map_err(|e| DeError(format!("{ty}.{name}: {e}")))
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_u64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| DeError::expected("unsigned integer", stringify!($t), v))
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::UInt(n as u64) } else { Value::Int(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_i64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| DeError::expected("integer", stringify!($t), v))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .ok_or_else(|| DeError::expected("number", "f64", v))
    }
}
impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| DeError::expected("number", "f32", v))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool()
            .ok_or_else(|| DeError::expected("bool", "bool", v))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("string", "String", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}
impl Deserialize for Arc<str> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(Arc::from)
            .ok_or_else(|| DeError::expected("string", "Arc<str>", v))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array", "Vec", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let arr = v
                    .as_array()
                    .ok_or_else(|| DeError::expected("array", "tuple", v))?;
                const LEN: usize = 0 $(+ { let _ = $n; 1 })+;
                if arr.len() != LEN {
                    return Err(DeError::msg(format!(
                        "expected a {LEN}-tuple, found array of {}",
                        arr.len()
                    )));
                }
                Ok(($($t::from_value(&arr[$n])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Render a map key: strings pass through, integers print in decimal
/// (serde_json's convention for integer-keyed maps).
fn key_to_string<K: Serialize>(key: &K) -> String {
    match key.to_value() {
        Value::Str(s) => s,
        Value::UInt(n) => n.to_string(),
        Value::Int(n) => n.to_string(),
        other => panic!(
            "serde shim: map keys must serialize to strings or integers, got {}",
            other.kind()
        ),
    }
}

/// Parse a map key back: try the string form first, then the integer forms.
fn key_from_string<K: Deserialize>(key: &str) -> Result<K, DeError> {
    if let Ok(k) = K::from_value(&Value::Str(key.to_owned())) {
        return Ok(k);
    }
    if let Ok(n) = key.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::UInt(n)) {
            return Ok(k);
        }
    }
    if let Ok(n) = key.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::Int(n)) {
            return Ok(k);
        }
    }
    Err(DeError::msg(format!("cannot parse map key `{key}`")))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(k), v.to_value()))
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::expected("object", "BTreeMap", v))?
            .iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic regardless of hash seed.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(k), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}
impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::expected("object", "HashMap", v))?
            .iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn from_value(_: &Value) -> Result<Self, DeError> {
        Ok(())
    }
}
