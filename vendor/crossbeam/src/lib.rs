//! In-repo shim for `crossbeam` (see `vendor/README.md`).
//!
//! Only `crossbeam::thread::scope` is provided, implemented on top of
//! `std::thread::scope` (stable since Rust 1.63, which makes the real
//! crossbeam implementation unnecessary for this workspace).

pub mod thread {
    //! Scoped threads.

    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Handle through which scoped threads are spawned.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to join one scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread and return its result.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope again so it
        /// can spawn nested threads, mirroring crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Create a scope for spawning threads that may borrow from the caller.
    /// Returns `Err` if any spawned (and not explicitly joined) thread
    /// panicked, like crossbeam.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1u64, 2, 3, 4];
            let total: u64 = super::scope(|s| {
                let handles: Vec<_> = data
                    .chunks(2)
                    .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            })
            .unwrap();
            assert_eq!(total, 10);
        }

        #[test]
        fn panics_surface_as_err() {
            let r = super::scope(|s| {
                s.spawn(|_| panic!("boom"));
            });
            assert!(r.is_err());
        }
    }
}
