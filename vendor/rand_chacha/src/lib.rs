//! In-repo shim for `rand_chacha` (see `vendor/README.md`).
//!
//! A faithful ChaCha implementation with 8 rounds and a 64-bit block
//! counter. The word stream is deterministic for a given seed but not
//! guaranteed identical to the real `rand_chacha` crate's stream; all users
//! in this workspace seed explicitly, so determinism is the property relied
//! upon.

use rand::{RngCore, SeedableRng};

/// The ChaCha8 pseudo-random generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    seed: [u8; 32],
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    /// Next unread word of `buffer`; 16 means "refill needed".
    index: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// The exact stream position of a [`ChaCha8Rng`], sufficient to reconstruct
/// the generator bit-identically with [`ChaCha8Rng::from_state`]. The buffer
/// contents are not stored: when `index < 16` the buffer is by construction
/// the keystream block `counter - 1`, so the restore recomputes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaChaState {
    /// The seed the generator was built from.
    pub seed: [u8; 32],
    /// The next block counter value (`refill` increments after each block).
    pub counter: u64,
    /// Next unread word of the current block; 16 means "refill needed".
    pub index: usize,
}

impl ChaCha8Rng {
    /// The seed this generator was built from.
    pub fn get_seed(&self) -> [u8; 32] {
        self.seed
    }

    /// Capture the full stream position (seed + block counter + word index).
    pub fn state(&self) -> ChaChaState {
        ChaChaState {
            seed: self.seed,
            counter: self.counter,
            index: self.index,
        }
    }

    /// Reconstruct a generator at an exact stream position captured by
    /// [`ChaCha8Rng::state`]: the restored generator produces the same word
    /// stream as the original would have from that point on.
    pub fn from_state(state: ChaChaState) -> Self {
        let mut rng = Self::from_seed(state.seed);
        if state.index < 16 {
            // The saved buffer was the block at `counter - 1`; regenerate it
            // (refill re-increments the counter back to the saved value).
            rng.counter = state.counter.wrapping_sub(1);
            rng.refill();
            rng.index = state.index;
            debug_assert_eq!(rng.counter, state.counter);
        } else {
            rng.counter = state.counter;
        }
        rng
    }

    fn refill(&mut self) {
        let mut state: [u32; 16] = [0; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        // 8 rounds = 4 double rounds.
        for _ in 0..4 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buffer[i] = state[i].wrapping_add(input[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng {
            seed,
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buffer[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut c = ChaCha8Rng::seed_from_u64(2);
        let sa: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn get_seed_round_trips() {
        let rng = ChaCha8Rng::seed_from_u64(7);
        let again = ChaCha8Rng::from_seed(rng.get_seed());
        let mut x = rng.clone();
        let mut y = again;
        for _ in 0..16 {
            assert_eq!(x.next_u32(), y.next_u32());
        }
    }

    #[test]
    fn state_round_trips_mid_block_and_at_block_boundaries() {
        for consumed in [0usize, 1, 7, 15, 16, 17, 31, 32, 33, 100] {
            let mut rng = ChaCha8Rng::seed_from_u64(42);
            for _ in 0..consumed {
                rng.next_u32();
            }
            let mut restored = ChaCha8Rng::from_state(rng.state());
            for i in 0..64 {
                assert_eq!(
                    rng.next_u32(),
                    restored.next_u32(),
                    "diverged at word {i} after consuming {consumed}"
                );
            }
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
