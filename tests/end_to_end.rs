//! End-to-end integration tests: the full figure-generation pipeline on the
//! scaled-down workload, checking the *shapes* the paper reports.

use dperf::OptLevel;
use obstacle::ObstacleApp;
use p2p_perf::experiments::{
    fig10_prediction_accuracy, fig11_topology_comparison, fig9_reference_times,
};

fn tiny() -> ObstacleApp {
    // Scaled-down workload: the shapes asserted below need compute to dominate
    // the constant per-run overheads, so this is larger than the unit-test
    // instances but still ~1/150 of the paper-scale problem.
    ObstacleApp {
        n: 600,
        sweeps: 90,
        flops_per_point: 21.0,
    }
}

#[test]
fn fig9_shape_levels_ordered_and_scaling_down() {
    let fig = fig9_reference_times(&tiny(), &[2, 4, 8]);
    assert_eq!(fig.series.len(), 5, "five optimisation levels");
    let at = |label: &str, n: usize| {
        fig.series
            .iter()
            .find(|s| s.label.ends_with(label))
            .unwrap()
            .at(n)
            .unwrap()
    };
    // Every level scales down with more peers.
    for label in [" 0", " 1", " 2", " 3", " s"] {
        assert!(at(label, 8) < at(label, 2), "level{label} must scale");
    }
    // O0 slowest, O3 fastest, Os between O1 and O2 (paper ordering).
    assert!(at(" 0", 2) > at(" 1", 2));
    assert!(at(" 1", 2) > at(" 2", 2));
    assert!(at(" 2", 2) >= at(" 3", 2));
    assert!(at(" s", 2) < at(" 1", 2) && at(" s", 2) > at(" 2", 2));
    // O0 is roughly 3x O3, as the compiler model prescribes.
    let ratio = at(" 0", 2) / at(" 3", 2);
    assert!(ratio > 2.0 && ratio < 4.0, "O0/O3 ratio {ratio}");
}

#[test]
fn fig10_shape_prediction_tracks_reference_at_every_size() {
    let fig = fig10_prediction_accuracy(&tiny(), &[2, 4, 8], OptLevel::O3);
    let reference = &fig.series[0];
    let prediction = &fig.series[1];
    for &n in &[2usize, 4, 8] {
        let r = reference.at(n).unwrap();
        let p = prediction.at(n).unwrap();
        let err = (r - p).abs() / r;
        assert!(
            err < 0.2,
            "n={n}: prediction error {:.1}% too large",
            err * 100.0
        );
    }
}

#[test]
fn fig11_shape_platform_ordering_and_xdsl_flatness() {
    let fig = fig11_topology_comparison(&tiny(), &[2, 4, 8, 16], OptLevel::O0);
    let series = |needle: &str| {
        fig.series
            .iter()
            .find(|s| s.label.contains(needle))
            .unwrap_or_else(|| panic!("missing series {needle}"))
    };
    let grid = series("prediction for Grid5000");
    let lan = series("LAN");
    let xdsl = series("xDSL");
    let reference = series("reference");
    for &n in &[2usize, 4, 8, 16] {
        // Cluster fastest, LAN close behind, xDSL clearly slower.
        assert!(lan.at(n).unwrap() >= grid.at(n).unwrap() * 0.99, "n={n}");
        assert!(xdsl.at(n).unwrap() > lan.at(n).unwrap(), "n={n}");
        // The Grid5000 prediction tracks the reference curve.
        let err = (grid.at(n).unwrap() - reference.at(n).unwrap()).abs() / reference.at(n).unwrap();
        assert!(err < 0.25, "n={n}: prediction error {err}");
    }
    // Cluster and LAN keep improving with more peers; xDSL flattens out
    // (communication dominates), i.e. its speedup from 2 to 16 peers is small.
    // (At the scaled-down test workload the cluster speedup is a bit below the
    // paper-scale value, hence the 2.5x threshold rather than the ~5x seen at
    // full scale.)
    assert!(grid.at(16).unwrap() < grid.at(2).unwrap() / 2.5);
    let xdsl_speedup = xdsl.at(2).unwrap() / xdsl.at(16).unwrap();
    let grid_speedup = grid.at(2).unwrap() / grid.at(16).unwrap();
    assert!(
        xdsl_speedup < grid_speedup / 2.0,
        "xDSL speedup {xdsl_speedup:.2} should lag far behind the cluster's {grid_speedup:.2}"
    );
}
