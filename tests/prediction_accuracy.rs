//! Prediction-accuracy integration tests (the Fig. 10 claim) plus trace-file
//! round-trips through the on-disk format, and the engine-interchangeability
//! guarantee the prediction pipeline rests on.

use dperf::{predict_traces, OptLevel, TraceSet};
use netsim::SharingMode;
use obstacle::ObstacleApp;
use p2p_perf::{PlatformKind, Scenario};
use p2psap::IterativeScheme;

fn tiny() -> ObstacleApp {
    ObstacleApp {
        n: 160,
        sweeps: 50,
        flops_per_point: 21.0,
    }
}

#[test]
fn prediction_matches_reference_within_tolerance_on_every_platform() {
    for platform in [
        PlatformKind::Grid5000,
        PlatformKind::Lan,
        PlatformKind::Xdsl,
    ] {
        let scenario = Scenario::new(platform, 4)
            .with_app(tiny())
            .with_opt(OptLevel::O0);
        let reference = scenario.run_reference();
        let prediction = scenario.predict();
        let r = reference.execution_time.as_secs_f64();
        let p = prediction.total.as_secs_f64();
        let err = (r - p).abs() / r;
        assert!(
            err < 0.25,
            "{}: prediction {p:.3}s vs reference {r:.3}s (error {:.1}%)",
            platform.label(),
            err * 100.0
        );
    }
}

#[test]
fn prediction_is_deterministic() {
    let scenario = Scenario::new(PlatformKind::Xdsl, 8).with_app(tiny());
    let a = scenario.predict();
    let b = scenario.predict();
    assert_eq!(a.total, b.total);
    assert_eq!(a.messages, b.messages);
    // A different platform seed changes the random xDSL last miles and hence
    // the prediction.
    let c = scenario.clone().with_seed(7).predict();
    assert_ne!(a.total, c.total);
}

#[test]
fn traces_survive_the_on_disk_format_and_predict_identically() {
    let scenario = Scenario::new(PlatformKind::Grid5000, 4).with_app(tiny());
    let traces = scenario.traces();
    let dir = std::env::temp_dir().join("p2p-perf-test-traces");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("obstacle-4.json");
    traces.write_to(&path).unwrap();
    let reloaded = TraceSet::read_from(&path).unwrap();
    assert_eq!(traces, reloaded);
    std::fs::remove_file(&path).ok();

    let topology = scenario.build_topology();
    let hosts = scenario.pick_hosts(&topology);
    let from_memory = predict_traces(
        &traces,
        &topology,
        &hosts,
        IterativeScheme::Synchronous,
        SharingMode::Bottleneck,
    );
    let from_disk = predict_traces(
        &reloaded,
        &topology,
        &hosts,
        IterativeScheme::Synchronous,
        SharingMode::Bottleneck,
    );
    assert_eq!(from_memory.total, from_disk.total);
}

#[test]
fn compute_bound_lower_bound_holds() {
    // The predicted time can never be smaller than the largest per-rank
    // compute time contained in the traces.
    for nprocs in [2usize, 4, 8] {
        let scenario = Scenario::new(PlatformKind::Lan, nprocs).with_app(tiny());
        let traces = scenario.traces();
        let prediction = scenario.predict();
        assert!(
            prediction.total >= traces.max_compute_time(),
            "nprocs={nprocs}"
        );
    }
}

#[test]
fn sharing_model_choice_only_matters_under_contention() {
    // With 2 peers on the cluster there is no contention: both models agree.
    let base = Scenario::new(PlatformKind::Grid5000, 2).with_app(tiny());
    let analytic = base.clone().with_sharing(SharingMode::Bottleneck).predict();
    let fair = base.with_sharing(SharingMode::MaxMinFair).predict();
    let rel = (analytic.total.as_secs_f64() - fair.total.as_secs_f64()).abs()
        / analytic.total.as_secs_f64();
    assert!(rel < 0.05, "models diverge by {rel} without contention");
}

/// The fault-model counterpart of the Fig. 10 claim: after heavy correlated
/// churn (one whole DSLAM tree killed, plus individual peer crashes in the
/// surviving trees), dPerf predictions on the *surviving* hosts must still
/// track the reference execution within the paper's envelope. Churn must not
/// silently degrade the predictor — the survivors form an ordinary (smaller)
/// platform.
#[test]
fn prediction_tracks_the_reference_on_churn_survivors() {
    use netsim::{dslam_forest, HostSpec};
    use p2pdc::ExecutionConfig;
    use p2pdc_bench::robustness::{run_robustness, RobustnessConfig};

    let churn = RobustnessConfig {
        trees: 3,
        nodes_per_tree: 8,
        ..RobustnessConfig::default()
    };
    let report = run_robustness(&churn);
    assert!(
        report.invariant_violations.is_empty(),
        "{:?}",
        report.invariant_violations
    );

    // Pick four live hosts from a surviving tree (deterministic: survivor
    // lists are in host order).
    let survivors = report
        .survivor_hosts
        .iter()
        .enumerate()
        .find(|(c, hosts)| *c != churn.kill_component && hosts.len() >= 4)
        .map(|(_, hosts)| hosts.clone())
        .expect("a surviving tree keeps at least four peers");
    let hosts = survivors[..4].to_vec();

    // The forest build is deterministic, so the prediction pipeline can
    // reconstruct the exact platform the churn scenario ran on.
    let topology = dslam_forest(
        churn.trees,
        churn.nodes_per_tree,
        HostSpec::default(),
        churn.seed,
    );

    let scenario = Scenario::new(PlatformKind::Xdsl, 4)
        .with_app(tiny())
        .with_opt(OptLevel::O0);
    let traces = scenario.traces();
    let prediction = predict_traces(
        &traces,
        &topology,
        &hosts,
        IterativeScheme::Synchronous,
        SharingMode::Bottleneck,
    );
    let cfg = ExecutionConfig {
        opt_factor: OptLevel::O0.time_factor(),
        ..ExecutionConfig::default()
    };
    let reference = p2pdc::run_reference(&tiny(), &topology, &hosts, &cfg);

    let r = reference.execution_time.as_secs_f64();
    let p = prediction.total.as_secs_f64();
    let err = (r - p).abs() / r;
    assert!(
        err < 0.25,
        "post-churn survivors: prediction {p:.3}s vs reference {r:.3}s (error {:.1}%)",
        err * 100.0
    );
}

/// The prediction pipeline replays traces through `netsim::replay`, which
/// since PR 4 defaults to the parallel-shard rebalance engine. A predicted
/// time must not depend on that engineering choice: every engine, under
/// every sharing mode (and whatever the worker-thread budget), must produce
/// the identical replay result on a synchronous halo-exchange workload
/// crossing shared links.
#[test]
fn replay_result_is_identical_across_rebalance_engines() {
    use netsim::{
        daisy_xdsl, replay, EngineConfig, HostSpec, ProcessScript, RebalanceEngine, ReplayConfig,
        ReplayOp,
    };
    use p2p_common::SimDuration;

    let topo = daisy_xdsl(16, HostSpec::default(), 9);
    let hosts: Vec<_> = topo.hosts[..8].to_vec();
    // Two rounds of compute + ring halo exchange over the shared DSLAM
    // fabric: enough concurrent transfers that max–min sharing (and thus
    // the rebalance engine) actually decides the timing.
    let scripts: Vec<ProcessScript> = (0..8)
        .map(|rank| {
            let mut ops = vec![];
            for round in 0..2u64 {
                ops.push(ReplayOp::Compute {
                    duration: SimDuration::from_millis(3 + rank as u64 + round),
                });
                ops.push(ReplayOp::Send {
                    to: (rank + 1) % 8,
                    bytes: 400_000,
                    tag: round as u32,
                });
                ops.push(ReplayOp::Recv {
                    from: (rank + 7) % 8,
                    tag: round as u32,
                });
            }
            ProcessScript { rank, ops }
        })
        .collect();

    for sharing in [SharingMode::MaxMinFair, SharingMode::Bottleneck] {
        let mut results = vec![];
        for engine in [
            RebalanceEngine::ParallelShard,
            RebalanceEngine::DirtyComponent,
            RebalanceEngine::BucketedBatched,
            RebalanceEngine::ScanPerEvent,
        ] {
            let cfg = ReplayConfig {
                sharing,
                // Pin the shard knobs so the parallel engine shards whenever
                // this small workload's flushes span several components —
                // worker budget never changes simulated results.
                config: EngineConfig::new(engine).workers(4).parallel_threshold(0),
                ..ReplayConfig::default()
            };
            results.push(replay(topo.platform.clone(), &hosts, &scripts, &cfg));
        }
        assert!(results[0].makespan > SimDuration::ZERO);
        for r in &results[1..] {
            assert_eq!(results[0].makespan, r.makespan, "makespan diverged");
            assert_eq!(
                results[0].finish_times, r.finish_times,
                "per-rank finish times diverged ({sharing:?})"
            );
            assert_eq!(results[0].net_stats, r.net_stats);
        }
    }
}
