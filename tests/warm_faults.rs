//! Record-invalidation interleavings with scripted mass failures.
//!
//! The warm-start engine persists per-component fill records across
//! flushes; a `FaultPlan` mass failure is the nastiest interleaving those
//! records face: a whole DSLAM tree's peers die at one instant (the harness
//! also calls `Network::invalidate_fill_records` at that instant — the
//! conservative product path), their in-flight heartbeat flows drain and
//! depart in a burst, the survivors' sessions re-route and re-inject
//! traffic, and individual crashes keep churning the surviving trees for
//! minutes of simulated time afterwards. This test drives the full
//! robustness scenario (heartbeats as real netsim flows, correlated kill,
//! staggered crashes) under the warm-start engine and under its two cold
//! baselines, and requires the *entire* reports — detection latencies,
//! reroute outcomes, flow statistics, final overlay shape — to be
//! identical. Any stale warm start would skew a heartbeat rate, shift a
//! delivery, and cascade into a visibly different report.
//!
//! The scenario seed can be pinned from the environment
//! (`ROBUSTNESS_SEED`), matching the CI `robustness` matrix.

use netsim::network::RebalanceEngine;
use p2pdc_bench::robustness::{run_robustness, RobustnessConfig};

fn seed_from_env() -> u64 {
    std::env::var("ROBUSTNESS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5)
}

#[test]
fn mass_failure_churn_is_identical_across_warm_and_cold_engines() {
    let mut seeds = vec![seed_from_env(), 17];
    seeds.dedup();
    for seed in seeds {
        let cfg = |engine| RobustnessConfig {
            seed,
            config: netsim::EngineConfig::new(engine),
            ..RobustnessConfig::default()
        };
        let warm = run_robustness(&cfg(RebalanceEngine::WarmStart));
        let parallel = run_robustness(&cfg(RebalanceEngine::ParallelShard));
        let dirty = run_robustness(&cfg(RebalanceEngine::DirtyComponent));
        assert_eq!(
            warm, parallel,
            "warm-start vs parallel-shard diverged under mass failure (seed {seed})"
        );
        assert_eq!(
            parallel, dirty,
            "parallel-shard vs dirty-component diverged under mass failure (seed {seed})"
        );
        // The scenario must actually have exercised what it claims to: a
        // correlated kill and post-kill churn.
        assert!(warm.mass_victims > 0, "the mass failure must strike");
        assert!(
            warm.finished_at > RobustnessConfig::default().kill_at,
            "churn must continue past the kill"
        );
    }
}
