//! Restore identity under a scripted fault plan — the workspace-level
//! checkpoint scenario.
//!
//! The netsim-local suite (`crates/netsim/tests/checkpoint.rs`) proves
//! restore identity for pure traffic. This scenario layers on the pieces a
//! real capacity-planning service would checkpoint alongside the network:
//!
//! * a [`FaultPlan`] scripted against a DSLAM forest's components — a mass
//!   failure that kills a whole tree's hosts mid-run, plus staggered
//!   individual host crashes afterwards;
//! * a [`DetRng`] that keeps generating fresh traffic *after* the cut, so
//!   the restored run only matches if the RNG stream position survived the
//!   checkpoint exactly;
//! * the periodic traffic/fault machinery itself (cursor into the plan,
//!   dead-host set), riding in the checkpoint envelope's `world` slot.
//!
//! The interrupted run is cut mid-simulation — between the mass failure
//! and the trailing individual crashes — serialized through the JSON text
//! path, restored into fresh objects, and drained. Every delivery after the
//! cut must land at the identical nanosecond, under every rebalance engine.

use netsim::checkpoint;
use netsim::event::Scheduler;
use netsim::network::{NetEvent, Network, RebalanceEngine, SharingMode};
use netsim::platform::HostSpec;
use netsim::topology::dslam_forest;
use p2p_common::{DataSize, DetRng, HostId, PeerId, SimDuration, SimTime};
use p2pdc::{FaultEvent, FaultPlan};
use serde::{Deserialize, Serialize, Value};

const ENGINES: [RebalanceEngine; 5] = [
    RebalanceEngine::ScanPerEvent,
    RebalanceEngine::BucketedBatched,
    RebalanceEngine::DirtyComponent,
    RebalanceEngine::ParallelShard,
    RebalanceEngine::WarmStart,
];

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
enum Ev {
    Net(NetEvent),
    /// Periodic traffic tick: the RNG draws a batch of fresh flows.
    Traffic,
    /// Scripted fault injection instant (the plan cursor says which).
    Fault,
}

impl From<NetEvent> for Ev {
    fn from(e: NetEvent) -> Self {
        Ev::Net(e)
    }
}

impl netsim::network::NetWorldEvent for Ev {
    fn as_net_event(&self) -> Option<NetEvent> {
        match self {
            Ev::Net(e) => Some(*e),
            _ => None,
        }
    }
}

/// Everything beyond the network that the scenario checkpoints: the traffic
/// RNG, the fault script and its delivery cursor, and which hosts are dead.
#[derive(Serialize, Deserialize)]
struct Extra {
    rng: DetRng,
    plan: FaultPlan,
    next_fault: usize,
    dead: Vec<bool>,
    next_token: u64,
}

struct Scenario {
    net: Network,
    sched: Scheduler<Ev>,
    extra: Extra,
    deliveries: Vec<(u64, u64)>,
    /// host → component index, rebuilt from the plan (derived state).
    comp_of: Vec<usize>,
}

fn comp_of_hosts(plan: &FaultPlan, hosts: usize) -> Vec<usize> {
    let mut comp_of = vec![0usize; hosts];
    for c in 0..plan.component_count() {
        for &h in plan.component_hosts(c) {
            comp_of[h.index()] = c;
        }
    }
    comp_of
}

const TRAFFIC_PERIOD: SimDuration = SimDuration::from_millis(5);
const HORIZON: SimTime = SimTime::from_millis(400);

impl Scenario {
    fn new(engine: RebalanceEngine, seed: u64) -> Scenario {
        let topo = dslam_forest(3, 5, HostSpec::default(), seed);
        // Script: tree 1 dies wholesale at 60 ms, then two individual host
        // crashes at 150 ms and 250 ms (PeerId doubles as a host index here —
        // the scenario has no overlay, only hosts).
        let plan = FaultPlan::for_topology(&topo)
            .with_fault(
                SimTime::from_millis(60),
                FaultEvent::MassFailure { component: 1 },
            )
            .with_fault(
                SimTime::from_millis(150),
                FaultEvent::PeerCrash(PeerId::new(0)),
            )
            .with_fault(
                SimTime::from_millis(250),
                FaultEvent::PeerCrash(PeerId::new(7)),
            );
        let hosts = topo.hosts.len();
        let mut sched: Scheduler<Ev> = Scheduler::new();
        sched.schedule_at(SimTime::ZERO, Ev::Traffic);
        for f in plan.faults() {
            sched.schedule_at(f.at, Ev::Fault);
        }
        let comp_of = comp_of_hosts(&plan, hosts);
        Scenario {
            net: Network::with_engine(topo.platform, SharingMode::MaxMinFair, engine),
            sched,
            extra: Extra {
                rng: DetRng::new(seed).fork(0xFA017),
                plan,
                next_fault: 0,
                dead: vec![false; hosts],
                next_token: 0,
            },
            deliveries: Vec::new(),
            comp_of,
        }
    }

    /// Pick two distinct live hosts in the same component (trees are
    /// disjoint platform components, so cross-tree routes do not exist).
    fn live_pair(&mut self) -> Option<(HostId, HostId)> {
        let live: Vec<u32> = (0..self.extra.dead.len() as u32)
            .filter(|&h| !self.extra.dead[h as usize])
            .collect();
        if live.is_empty() {
            return None;
        }
        let src = live[self.extra.rng.gen_range(0..live.len())];
        let peers: Vec<u32> = live
            .iter()
            .copied()
            .filter(|&h| h != src && self.comp_of[h as usize] == self.comp_of[src as usize])
            .collect();
        if peers.is_empty() {
            return None;
        }
        let dst = peers[self.extra.rng.gen_range(0..peers.len())];
        Some((HostId::new(src), HostId::new(dst)))
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::Net(ne) => {
                let now = self.sched.now();
                for d in self.net.on_event(&mut self.sched, ne) {
                    self.deliveries.push((d.token, now.as_nanos()));
                }
            }
            Ev::Traffic => {
                // A couple of fresh flows between random live hosts.
                for _ in 0..2 {
                    let Some((src, dst)) = self.live_pair() else {
                        continue;
                    };
                    let bytes = self.extra.rng.gen_range(50_000..600_000u64);
                    let token = self.extra.next_token;
                    self.extra.next_token += 1;
                    self.net.start_flow(
                        &mut self.sched,
                        src,
                        dst,
                        DataSize::from_bytes(bytes),
                        token,
                    );
                }
                let next = self.sched.now().saturating_add(TRAFFIC_PERIOD);
                if next <= HORIZON {
                    self.sched.schedule_at(next, Ev::Traffic);
                }
            }
            Ev::Fault => {
                let now = self.sched.now();
                while let Some(f) = self.extra.plan.faults().get(self.extra.next_fault) {
                    if f.at > now {
                        break;
                    }
                    match f.event.clone() {
                        FaultEvent::MassFailure { component } => {
                            for &h in self.extra.plan.component_hosts(component) {
                                self.extra.dead[h.index()] = true;
                            }
                            // The conservative product path at a correlated
                            // kill (mirrors the robustness harness).
                            self.net.invalidate_fill_records();
                        }
                        FaultEvent::PeerCrash(id) => {
                            let h = id.index() % self.extra.dead.len();
                            self.extra.dead[h] = true;
                        }
                        FaultEvent::TrackerCrash(_) => {}
                    }
                    self.extra.next_fault += 1;
                }
            }
        }
    }

    /// Pop and handle events; stop after `limit` if given.
    fn run(&mut self, limit: Option<SimTime>) {
        while let Some(next) = self.sched.peek_time() {
            if let Some(l) = limit {
                if next > l {
                    break;
                }
            }
            let (_, ev) = self.sched.pop().expect("peeked event must exist");
            self.handle(ev);
        }
    }

    fn checkpoint_json(&self) -> String {
        let world = Value::Object(vec![
            ("extra".to_owned(), self.extra.to_value()),
            (
                "deliveries".to_owned(),
                self.deliveries
                    .iter()
                    .map(|&(t, ns)| (t, ns))
                    .collect::<Vec<_>>()
                    .to_value(),
            ),
        ]);
        checkpoint::to_json(&self.net, &self.sched, world).expect("encodable")
    }

    fn restore_json(json: &str) -> Scenario {
        let restored = checkpoint::from_json::<Ev>(json).expect("valid checkpoint");
        let fields = restored.world.as_object().expect("world slot object");
        let extra: Extra = serde::field(fields, "extra", "Scenario").expect("extra state");
        let deliveries: Vec<(u64, u64)> =
            serde::field(fields, "deliveries", "Scenario").expect("delivery log");
        let comp_of = comp_of_hosts(&extra.plan, extra.dead.len());
        Scenario {
            net: restored.network,
            sched: restored.scheduler,
            extra,
            deliveries,
            comp_of,
        }
    }
}

#[test]
fn faulted_run_restores_bit_identically_across_engines() {
    for engine in ENGINES {
        let seed = 11;
        // Uninterrupted reference.
        let mut reference = Scenario::new(engine, seed);
        reference.run(None);
        assert!(
            reference.deliveries.len() > 20,
            "scenario must generate real traffic ({engine:?})"
        );
        assert_eq!(
            reference.extra.next_fault,
            reference.extra.plan.len(),
            "all scripted faults must fire ({engine:?})"
        );

        // Interrupted: cut between the mass failure and the later crashes,
        // round-trip through JSON text, drain the restored copy.
        let mut paused = Scenario::new(engine, seed);
        paused.run(Some(SimTime::from_millis(110)));
        assert!(
            paused.extra.next_fault >= 1,
            "mass failure fired before cut"
        );
        assert!(
            paused.extra.next_fault < paused.extra.plan.len(),
            "crashes remain after cut"
        );
        let json = paused.checkpoint_json();
        let mut resumed = Scenario::restore_json(&json);
        assert_eq!(resumed.deliveries, paused.deliveries);
        resumed.run(None);

        assert_eq!(
            resumed.deliveries, reference.deliveries,
            "{engine:?}: post-restore deliveries diverged from the uninterrupted run"
        );
        assert_eq!(
            resumed.net.stats(),
            reference.net.stats(),
            "{engine:?}: network statistics diverged"
        );
        assert_eq!(resumed.extra.next_token, reference.extra.next_token);
        assert_eq!(resumed.extra.dead, reference.extra.dead);
    }
}

#[test]
fn rng_stream_position_survives_the_checkpoint() {
    // Same scenario, but compare against a *fresh* RNG restart to prove the
    // checkpoint is actually carrying the mid-stream position: a reseeded
    // run diverges, the restored run does not.
    let seed = 23;
    let mut reference = Scenario::new(RebalanceEngine::WarmStart, seed);
    reference.run(None);

    let mut paused = Scenario::new(RebalanceEngine::WarmStart, seed);
    paused.run(Some(SimTime::from_millis(110)));
    let json = paused.checkpoint_json();

    // Restored: identical.
    let mut resumed = Scenario::restore_json(&json);
    resumed.run(None);
    assert_eq!(resumed.deliveries, reference.deliveries);

    // Tampered: reset the RNG inside the checkpoint to its seed-fresh state
    // and the continuation visibly diverges — the stream position matters.
    let fresh = DetRng::new(seed).fork(0xFA017);
    let fresh_json = {
        let v: Value = serde_json::from_str(&json).unwrap();
        fn swap_rng(v: &Value, fresh: &Value) -> Value {
            match v {
                Value::Object(fields) => Value::Object(
                    fields
                        .iter()
                        .map(|(k, inner)| {
                            if k == "rng" {
                                (k.clone(), fresh.clone())
                            } else {
                                (k.clone(), swap_rng(inner, fresh))
                            }
                        })
                        .collect(),
                ),
                Value::Array(items) => {
                    Value::Array(items.iter().map(|i| swap_rng(i, fresh)).collect())
                }
                other => other.clone(),
            }
        }
        serde_json::to_string(&swap_rng(&v, &fresh.to_value())).unwrap()
    };
    let mut reseeded = Scenario::restore_json(&fresh_json);
    reseeded.run(None);
    assert_ne!(
        reseeded.deliveries, reference.deliveries,
        "a reseeded RNG must visibly diverge — otherwise this scenario \
         would not be testing the RNG capture at all"
    );
}
