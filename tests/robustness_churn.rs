//! Robustness integration suite: heavy correlated churn on a DSLAM forest.
//!
//! Drives the `p2pdc_bench::robustness` scenario (the same harness the
//! `robustness_churn` bench and the CI `robustness` job run) and asserts the
//! acceptance properties of the fault model end to end:
//!
//! * a correlated whole-component kill is detected via heartbeat timeout
//!   within the configured window;
//! * every affected session either re-routes through a surviving relay or
//!   terminates after its retry budget — no wedged sessions;
//! * the overlay re-converges: line consistent, no orphaned peers;
//! * the outcome is identical across seeds' repeated runs and across
//!   engine thread pinnings (the CI matrix additionally varies
//!   `NETSIM_WORKERS` and debug/release around this binary).
//!
//! The seed can be pinned from the environment (`ROBUSTNESS_SEED`) so the CI
//! job runs the same binary over several seeds without recompiling.

use p2p_common::{SimDuration, SimTime};
use p2pdc::HeartbeatConfig;
use p2pdc_bench::robustness::{run_robustness, RobustnessConfig, RobustnessReport};

/// Scenario used by every test: 4 trees × 16 hosts, tree 1 mass-killed at
/// t=20 s, three individual crashes in surviving trees from t=60 s.
fn scenario(seed: u64) -> RobustnessConfig {
    RobustnessConfig {
        seed,
        ..RobustnessConfig::default()
    }
}

fn seed_from_env() -> u64 {
    std::env::var("ROBUSTNESS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5)
}

fn report() -> RobustnessReport {
    run_robustness(&scenario(seed_from_env()))
}

#[test]
fn correlated_kill_is_detected_within_the_heartbeat_window() {
    let cfg = scenario(seed_from_env());
    let r = report();
    // The whole tree died at once...
    assert_eq!(r.mass_victims, cfg.nodes_per_tree);
    // ...and every victim was declared dead by heartbeat timeout,
    assert_eq!(r.mass_detected, r.mass_victims);
    // within timeout + two beat periods (worst-case phase alignment).
    let window = cfg.heartbeat.timeout() + cfg.heartbeat.beat_period.saturating_mul(2);
    assert!(
        r.mass_detection_latency <= window,
        "detection took {} (window {})",
        r.mass_detection_latency,
        window
    );
    // Never faster than the timeout itself: detection needs real misses.
    assert!(r.mass_detection_latency >= cfg.heartbeat.timeout());
}

#[test]
fn no_session_wedges_under_churn() {
    let cfg = scenario(seed_from_env());
    let r = report();
    assert_eq!(r.crash_victims, cfg.extra_peer_crashes);
    assert_eq!(r.wedged_sessions, 0, "wedged sessions: {r:?}");
    // Every broken session reached a terminal outcome...
    assert_eq!(
        r.rerouted_sessions + r.failed_sessions,
        r.crash_victims,
        "unresolved session outcomes: {r:?}"
    );
    // ...and with 16-host trees a surviving relay always exists.
    assert_eq!(r.rerouted_sessions, r.crash_victims);
    assert_eq!(r.failed_sessions, 0);
}

#[test]
fn overlay_reconverges_after_churn() {
    let cfg = scenario(seed_from_env());
    let r = report();
    // Line consistent, no orphaned peers, zones well-formed.
    assert!(
        r.invariant_violations.is_empty(),
        "{:?}",
        r.invariant_violations
    );
    // Every detected departure was flushed out of the overlay maps: what
    // remains is exactly the live population.
    assert_eq!(r.overlay_peers, r.live_peers);
    let expected_live = (cfg.trees - 1) * cfg.nodes_per_tree - cfg.extra_peer_crashes;
    assert_eq!(r.live_peers, expected_live);
    // The killed tree is empty; survivor lists cover the rest.
    assert!(r.survivor_hosts[cfg.kill_component].is_empty());
    let listed: usize = r.survivor_hosts.iter().map(Vec::len).sum();
    assert_eq!(listed, expected_live);
}

#[test]
fn heartbeats_are_real_network_traffic() {
    let r = report();
    assert!(r.heartbeat_flows > 0);
    assert_eq!(r.net_stats.flows_started, r.heartbeat_flows);
    assert!(r.heartbeat_deliveries > 0);
    // Crashed peers stop beating, so some flows outlive their usefulness
    // but none are conjured from nowhere.
    assert!(r.heartbeat_deliveries <= r.heartbeat_flows);
    assert!(r.net_stats.bytes_delivered > 0);
}

#[test]
fn outcome_is_deterministic_for_a_seed_and_thread_pinning() {
    let cfg = scenario(seed_from_env());
    let a = run_robustness(&cfg);
    let b = run_robustness(&cfg);
    assert_eq!(a, b, "same config must reproduce the same report");
    // Forcing the parallel-shard engine wide open must not change simulated
    // outcomes (this binary also runs under NETSIM_WORKERS ∈ {1,2,8} in
    // CI).
    let pinned = RobustnessConfig {
        config: cfg.config.workers(8).parallel_threshold(0),
        ..cfg
    };
    assert_eq!(a, run_robustness(&pinned));
}

#[test]
fn distinct_seeds_change_traffic_but_not_guarantees() {
    // Different last-mile draws shift timings, yet the acceptance
    // properties hold for every seed.
    for seed in [5, 17, 99] {
        let cfg = scenario(seed);
        let r = run_robustness(&cfg);
        assert_eq!(r.mass_detected, r.mass_victims, "seed {seed}");
        assert_eq!(r.wedged_sessions, 0, "seed {seed}");
        assert!(r.invariant_violations.is_empty(), "seed {seed}");
    }
}

#[test]
fn tighter_heartbeats_detect_faster() {
    let base = scenario(5);
    let slow = run_robustness(&base);
    let fast_cfg = RobustnessConfig {
        heartbeat: HeartbeatConfig {
            beat_period: SimDuration::from_secs(2),
            miss_threshold: 2,
            ..base.heartbeat
        },
        ..base
    };
    let fast = run_robustness(&fast_cfg);
    assert!(
        fast.mass_detection_latency < slow.mass_detection_latency,
        "2s×2 beats ({}) should detect before 5s×3 beats ({})",
        fast.mass_detection_latency,
        slow.mass_detection_latency
    );
    // Tighter beats mean more heartbeat traffic over the same horizon.
    assert!(fast.heartbeat_flows > slow.heartbeat_flows);
}

#[test]
fn a_longer_horizon_only_adds_heartbeats() {
    let short = run_robustness(&scenario(5));
    let long_cfg = RobustnessConfig {
        horizon: SimTime::from_secs(300),
        ..scenario(5)
    };
    let long = run_robustness(&long_cfg);
    // All churn is over well before either horizon: detection results and
    // session outcomes agree; only keep-alive traffic grows.
    assert_eq!(short.mass_detected, long.mass_detected);
    assert_eq!(short.mass_detection_latency, long.mass_detection_latency);
    assert_eq!(short.rerouted_sessions, long.rerouted_sessions);
    assert_eq!(short.live_peers, long.live_peers);
    assert!(long.heartbeat_flows > short.heartbeat_flows);
}
