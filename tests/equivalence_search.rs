//! Table I integration tests: the equivalent-computing-power search over the
//! predicted curves of the three platforms.

use dperf::equivalence::Tolerance;
use dperf::{Comparison, EquivalenceTable, OptLevel, PerfCurve};
use obstacle::ObstacleApp;
use p2p_perf::experiments::{equivalence_table, prediction_curve};
use p2p_perf::PlatformKind;

fn tiny() -> ObstacleApp {
    // Large enough that compute (not constant per-run overhead) shapes the
    // curves, small enough to keep the test quick (~1/150 of paper scale).
    ObstacleApp {
        n: 600,
        sweeps: 90,
        flops_per_point: 21.0,
    }
}

#[test]
fn table1_shape_lan_needs_more_peers_and_xdsl_is_marginal() {
    let sizes = [2usize, 4, 8, 16, 32];
    let table = equivalence_table(&tiny(), &[2, 4], &sizes, OptLevel::O0);
    assert!(
        !table.rows.is_empty(),
        "the table must contain at least one row"
    );

    // Every LAN equivalent of a cluster size needs at least as many peers.
    for row in table.rows.iter().filter(|r| r.candidate_label == "LAN") {
        assert!(
            row.candidate_procs >= row.reference_procs,
            "{} LAN peers cannot replace {} cluster nodes with fewer machines",
            row.candidate_procs,
            row.reference_procs
        );
        assert!(row.comparison.is_acceptable());
    }
    // If xDSL can match the 2-node cluster at all, it needs strictly more
    // peers and only reaches "same" or below — never "higher".
    for row in table.rows.iter().filter(|r| r.candidate_label == "xDSL") {
        assert!(row.candidate_procs > row.reference_procs);
        assert_ne!(row.comparison, Comparison::Higher);
    }
    // The rendered table uses the paper's vocabulary.
    let rendered = table.render();
    assert!(rendered.contains("topology"));
    assert!(rendered.contains("than"));
}

#[test]
fn lan_curve_sits_between_cluster_and_xdsl() {
    let sizes = [2usize, 8, 32];
    let grid = prediction_curve(&tiny(), PlatformKind::Grid5000, &sizes, OptLevel::O0);
    let lan = prediction_curve(&tiny(), PlatformKind::Lan, &sizes, OptLevel::O0);
    let xdsl = prediction_curve(&tiny(), PlatformKind::Xdsl, &sizes, OptLevel::O0);
    for &n in &sizes {
        let g = grid.at(n).unwrap().time;
        let l = lan.at(n).unwrap().time;
        let x = xdsl.at(n).unwrap().time;
        assert!(g <= l, "n={n}: cluster must be fastest");
        assert!(l < x, "n={n}: LAN must beat xDSL");
    }
}

#[test]
fn equivalence_search_is_consistent_with_manual_classification() {
    // Build a table from hand-written curves and cross-check each row against
    // a direct classification of its two times.
    let reference = PerfCurve::from_secs("Grid5000", &[(2, 40.0), (4, 20.0), (8, 10.0)]);
    let lan = PerfCurve::from_secs(
        "LAN",
        &[(2, 44.0), (4, 26.0), (8, 14.0), (16, 11.0), (32, 10.5)],
    );
    let tol = Tolerance::default();
    let table = EquivalenceTable::build(&reference, &[2, 4, 8], &[&lan], tol);
    assert_eq!(table.rows.len(), 3);
    for row in &table.rows {
        let direct = dperf::equivalence::classify(row.candidate_time, row.reference_time, tol);
        assert_eq!(direct, row.comparison);
        assert!(row.comparison.is_acceptable());
    }
}
