//! Integration tests of the P2PDC environment: overlay + allocation +
//! executor working together, including under churn and across platforms.

use netsim::{cluster_bordeplage, daisy_xdsl, HostSpec, PlacementPolicy};
use obstacle::ObstacleApp;
use p2p_common::{IpAddr, PeerResources, ResourceRequirements, TaskId};
use p2pdc::allocation::{flat_cost, hierarchical_cost};
use p2pdc::proximity::GroupCandidate;
use p2pdc::{
    build_allocation, run_reference, ChurnInjector, ExecutionConfig, Overlay, OverlayConfig, CMAX,
};
use p2psap::IterativeScheme;

#[test]
fn collection_then_allocation_covers_every_collected_peer_once() {
    let core: Vec<IpAddr> = (0..3u8)
        .map(|i| IpAddr::from_octets(172, 16, i, 1))
        .collect();
    let mut overlay = Overlay::bootstrap(OverlayConfig::default(), &core);
    for i in 0..70u32 {
        let ip = IpAddr::from_octets(172, 16, (i % 3) as u8, (i + 10) as u8);
        overlay.peer_join(ip, None, PeerResources::xeon_em64t());
    }
    let submitter = overlay.peers().next().unwrap().id;
    let (collected, _) =
        overlay.collect_peers(submitter, 64, &ResourceRequirements::none(), TaskId::new(1));
    assert_eq!(collected.len(), 64);

    let candidates: Vec<GroupCandidate> = collected
        .iter()
        .map(|&id| {
            let p = overlay.peer(id).unwrap();
            GroupCandidate {
                id,
                ip: p.ip,
                resources: p.resources,
            }
        })
        .collect();
    let graph = build_allocation(submitter, &candidates, CMAX);
    assert_eq!(graph.peer_count(), 64);
    assert!(graph.max_group_size() <= CMAX);
    assert!(graph.groups.len() >= 2);
    // Hierarchical allocation must beat the flat baseline on the critical path.
    assert!(hierarchical_cost(&graph).critical_sends < flat_cost(64).critical_sends);
}

#[test]
fn executor_runs_the_obstacle_app_on_the_cluster_and_on_xdsl() {
    let app = ObstacleApp {
        n: 240,
        sweeps: 30,
        flops_per_point: 21.0,
    };
    let cluster = cluster_bordeplage(8, HostSpec::default());
    let cfg = ExecutionConfig::default();
    let cluster_report = run_reference(&app, &cluster, &cluster.hosts, &cfg);
    assert_eq!(cluster_report.peers, 8);
    assert!(cluster_report.app_messages > 0);

    let xdsl = daisy_xdsl(128, HostSpec::default(), 11);
    let hosts = xdsl.pick_hosts(8, PlacementPolicy::Spread);
    let xdsl_report = run_reference(&app, &xdsl, &hosts, &cfg);
    assert!(
        xdsl_report.execution_time > cluster_report.execution_time * 2u64,
        "xDSL execution ({}) must be far slower than the cluster ({})",
        xdsl_report.execution_time,
        cluster_report.execution_time
    );
}

#[test]
fn asynchronous_scheme_beats_synchronous_on_xdsl_but_not_on_the_cluster() {
    let app = ObstacleApp {
        n: 240,
        sweeps: 30,
        flops_per_point: 21.0,
    };
    let xdsl = daisy_xdsl(64, HostSpec::default(), 3);
    let hosts = xdsl.pick_hosts(4, PlacementPolicy::Spread);
    let sync = run_reference(&app, &xdsl, &hosts, &ExecutionConfig::default());
    let asyn = run_reference(
        &app,
        &xdsl,
        &hosts,
        &ExecutionConfig {
            scheme: IterativeScheme::Asynchronous,
            ..ExecutionConfig::default()
        },
    );
    assert!(
        asyn.execution_time < sync.execution_time,
        "async must win on xDSL"
    );

    let cluster = cluster_bordeplage(4, HostSpec::default());
    let csync = run_reference(&app, &cluster, &cluster.hosts, &ExecutionConfig::default());
    let casyn = run_reference(
        &app,
        &cluster,
        &cluster.hosts,
        &ExecutionConfig {
            scheme: IterativeScheme::Asynchronous,
            ..ExecutionConfig::default()
        },
    );
    // The asynchronous scheme's pay-off comes from not waiting on slow links,
    // so its advantage on the low-latency cluster must be far smaller than on
    // xDSL (it pays ~30 % more iterations either way).
    let xdsl_gain = sync.execution_time.as_secs_f64() / asyn.execution_time.as_secs_f64();
    let cluster_gain = csync.execution_time.as_secs_f64() / casyn.execution_time.as_secs_f64();
    assert!(
        xdsl_gain > 2.0 * cluster_gain,
        "async gain on xDSL ({xdsl_gain:.2}x) should dwarf the gain on the cluster ({cluster_gain:.2}x)"
    );
}

#[test]
fn overlay_survives_heavy_churn_and_still_serves_collections() {
    let core: Vec<IpAddr> = (0..5u8).map(|i| IpAddr::from_octets(10, i, 0, 1)).collect();
    let mut overlay = Overlay::bootstrap(OverlayConfig::default(), &core);
    for i in 0..40u32 {
        overlay.peer_join(
            IpAddr::from_octets(10, (i % 5) as u8, 2, (i + 1) as u8),
            None,
            PeerResources::xeon_em64t(),
        );
    }
    overlay.server_disconnect();
    let mut churn = ChurnInjector::new(77);
    churn.run(&mut overlay, 500);
    assert!(
        overlay.check_invariants().is_empty(),
        "{:?}",
        overlay.check_invariants()
    );

    // Refill a few peers if churn removed too many, then collect.
    let mut extra = 0u8;
    while overlay.peer_count() < 9 {
        overlay.peer_join(
            IpAddr::from_octets(10, 2, 9, extra + 1),
            None,
            PeerResources::xeon_em64t(),
        );
        extra += 1;
    }
    let submitter = overlay.peers().next().unwrap().id;
    let (collected, _) =
        overlay.collect_peers(submitter, 8, &ResourceRequirements::none(), TaskId::new(5));
    assert_eq!(collected.len(), 8);
}
