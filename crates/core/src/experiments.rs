//! Regeneration of every figure and table of the paper's evaluation (§IV).
//!
//! Each function returns the plotted data (a [`Figure`] of series, or an
//! [`EquivalenceTable`]) so the benches, the `experiments` binary, the
//! examples and the integration tests all share the same code path. The
//! functions accept the application so tests can use the scaled-down instance;
//! the `experiments` binary runs the paper-scale workload.
//!
//! Every sweep here — peer counts within a curve, optimisation levels within
//! Fig. 9, platforms within Fig. 11 — is embarrassingly parallel: each point
//! is an independent simulation of an independent [`Scenario`]. The sweeps
//! run through rayon's order-preserving `par_iter().map().collect()`, so the
//! figures saturate every core while the output data stays byte-identical to
//! a serial run.

use crate::scenario::{PlatformKind, Scenario};
use dperf::equivalence::Tolerance;
use dperf::report::{Figure, Series};
use dperf::{EquivalenceTable, OptLevel, PerfCurve};
use obstacle::ObstacleApp;
use rayon::prelude::*;

/// The peer counts of the paper's evaluation: 2^n for n in 1..=5.
pub const PAPER_PEER_COUNTS: [usize; 5] = [2, 4, 8, 16, 32];

/// Reference execution-time curve (`t_normal_execution`) of the application
/// on a platform, at one optimisation level.
pub fn reference_curve(
    app: &ObstacleApp,
    platform: PlatformKind,
    sizes: &[usize],
    opt: OptLevel,
) -> PerfCurve {
    let points: Vec<(usize, f64)> = sizes
        .par_iter()
        .map(|&n| {
            let report = Scenario::new(platform, n)
                .with_app(app.clone())
                .with_opt(opt)
                .run_reference();
            (n, report.total.as_secs_f64())
        })
        .collect();
    PerfCurve::from_secs(platform.label(), &points)
}

/// dPerf prediction curve (`t_predicted`) of the application on a platform,
/// at one optimisation level.
pub fn prediction_curve(
    app: &ObstacleApp,
    platform: PlatformKind,
    sizes: &[usize],
    opt: OptLevel,
) -> PerfCurve {
    let points: Vec<(usize, f64)> = sizes
        .par_iter()
        .map(|&n| {
            let prediction = Scenario::new(platform, n)
                .with_app(app.clone())
                .with_opt(opt)
                .predict();
            (n, prediction.total.as_secs_f64())
        })
        .collect();
    PerfCurve::from_secs(platform.label(), &points)
}

fn curve_to_series(label: impl Into<String>, curve: &PerfCurve) -> Series {
    let points: Vec<(usize, f64)> = curve
        .points
        .iter()
        .map(|p| (p.nprocs, p.time.as_secs_f64()))
        .collect();
    Series::new(label, &points)
}

/// **Fig. 9** — Stage-1 reference execution time of the obstacle problem on
/// the Bordeplage cluster for every GCC optimisation level.
pub fn fig9_reference_times(app: &ObstacleApp, sizes: &[usize]) -> Figure {
    let mut fig = Figure::new(
        "Fig. 9 — Stage-1 reference execution time, obstacle problem in the P2PDC environment",
    );
    // Outer sweep over optimisation levels also runs in parallel; the inner
    // per-curve size sweep nests its own parallel map (the rayon shim spawns
    // scoped threads, so nesting is cheap at this fan-out).
    let curves: Vec<(OptLevel, PerfCurve)> = OptLevel::all()
        .to_vec()
        .into_par_iter()
        .map(|opt| {
            (
                opt,
                reference_curve(app, PlatformKind::Grid5000, sizes, opt),
            )
        })
        .collect();
    for (opt, curve) in &curves {
        fig.push(curve_to_series(
            format!("optimization level {}", opt.label()),
            curve,
        ));
    }
    fig
}

/// **Fig. 10** — Stage-1 reference time compared to the dPerf prediction on
/// the identical cluster platform (GCC optimisation level 3 in the paper).
pub fn fig10_prediction_accuracy(app: &ObstacleApp, sizes: &[usize], opt: OptLevel) -> Figure {
    let mut fig = Figure::new(format!(
        "Fig. 10 — Stage-1 reference vs dPerf prediction, GCC optimization level {}",
        opt.label()
    ));
    let (reference, prediction) = rayon::join(
        || reference_curve(app, PlatformKind::Grid5000, sizes, opt),
        || prediction_curve(app, PlatformKind::Grid5000, sizes, opt),
    );
    fig.push(curve_to_series("reference time", &reference));
    fig.push(curve_to_series("prediction with dPerf", &prediction));
    fig
}

/// **Fig. 11** — reference time compared to the dPerf predictions for the
/// Grid'5000 cluster, the xDSL Daisy grid and the LAN (optimisation level 0 in
/// the paper).
pub fn fig11_topology_comparison(app: &ObstacleApp, sizes: &[usize], opt: OptLevel) -> Figure {
    let mut fig = Figure::new(format!(
        "Fig. 11 — reference vs dPerf predictions for Grid5000, xDSL and LAN, optimization level {}",
        opt.label()
    ));
    let platforms = [
        PlatformKind::Grid5000,
        PlatformKind::Xdsl,
        PlatformKind::Lan,
    ];
    let (reference, predictions) = rayon::join(
        || reference_curve(app, PlatformKind::Grid5000, sizes, opt),
        || {
            platforms
                .to_vec()
                .into_par_iter()
                .map(|platform| (platform, prediction_curve(app, platform, sizes, opt)))
                .collect::<Vec<_>>()
        },
    );
    fig.push(curve_to_series("reference time", &reference));
    for (platform, curve) in &predictions {
        fig.push(curve_to_series(
            format!("dPerf prediction for {}", platform.label()),
            curve,
        ));
    }
    fig
}

/// **Table I** — equivalent computing power: for each cluster size, the
/// smallest xDSL / LAN configuration whose predicted performance is
/// comparable, with the paper's "higher / same / slightly lower" wording.
pub fn equivalence_table(
    app: &ObstacleApp,
    reference_sizes: &[usize],
    candidate_sizes: &[usize],
    opt: OptLevel,
) -> EquivalenceTable {
    let (reference, (xdsl, lan)) = rayon::join(
        || prediction_curve(app, PlatformKind::Grid5000, reference_sizes, opt),
        || {
            rayon::join(
                || prediction_curve(app, PlatformKind::Xdsl, candidate_sizes, opt),
                || prediction_curve(app, PlatformKind::Lan, candidate_sizes, opt),
            )
        },
    );
    EquivalenceTable::build(
        &reference,
        reference_sizes,
        &[&xdsl, &lan],
        Tolerance::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ObstacleApp {
        // Scaled-down instance: small enough to keep the tests fast, large
        // enough that compute still dominates the constant per-run overheads
        // (otherwise the scaling shape the assertions check disappears).
        ObstacleApp {
            n: 600,
            sweeps: 90,
            flops_per_point: 21.0,
        }
    }

    #[test]
    fn fig9_has_five_levels_that_scale_down_with_peers() {
        let fig = fig9_reference_times(&tiny(), &[2, 4, 8]);
        assert_eq!(fig.series.len(), 5);
        for series in &fig.series {
            assert!(
                series.at(8).unwrap() < series.at(2).unwrap(),
                "{}",
                series.label
            );
        }
        // Level 0 is the slowest, level 3 the fastest.
        let o0 = fig.series.iter().find(|s| s.label.ends_with(" 0")).unwrap();
        let o3 = fig.series.iter().find(|s| s.label.ends_with(" 3")).unwrap();
        assert!(o0.at(2).unwrap() > 2.0 * o3.at(2).unwrap());
    }

    #[test]
    fn fig10_prediction_is_close_to_reference() {
        let fig = fig10_prediction_accuracy(&tiny(), &[2, 4], OptLevel::O3);
        let reference = &fig.series[0];
        let prediction = &fig.series[1];
        for &n in &[2usize, 4] {
            let r = reference.at(n).unwrap();
            let p = prediction.at(n).unwrap();
            assert!(
                (r - p).abs() / r < 0.2,
                "n={n}: reference {r} vs prediction {p}"
            );
        }
    }

    #[test]
    fn fig11_xdsl_is_the_slowest_platform() {
        let fig = fig11_topology_comparison(&tiny(), &[2, 4], OptLevel::O0);
        let grid = fig
            .series
            .iter()
            .find(|s| s.label.contains("Grid5000"))
            .unwrap();
        let xdsl = fig
            .series
            .iter()
            .find(|s| s.label.contains("xDSL"))
            .unwrap();
        let lan = fig.series.iter().find(|s| s.label.contains("LAN")).unwrap();
        for &n in &[2usize, 4] {
            assert!(
                xdsl.at(n).unwrap() > lan.at(n).unwrap(),
                "xDSL must trail LAN at n={n}"
            );
            assert!(
                lan.at(n).unwrap() >= grid.at(n).unwrap(),
                "LAN cannot beat the cluster at n={n}"
            );
        }
    }
}
