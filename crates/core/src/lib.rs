//! # p2p-perf — performance prediction in a decentralized P2P computing environment
//!
//! Facade crate of the reproduction of *"Performance Prediction in a
//! Decentralized Environment for Peer-to-Peer Computing"* (Cornea, Bourgeois,
//! Nguyen, El-Baz — IPDPS 2011). It ties the individual crates together:
//!
//! | crate | role |
//! |---|---|
//! | `netsim` | flow-level discrete-event network simulator (SimGrid substitute) and the three evaluation platforms |
//! | `p2psap` | the self-adaptive communication protocol model |
//! | `p2pdc` | the decentralized P2P computing environment (overlay, allocation, executor) |
//! | `dperf` | the performance-prediction pipeline (IR, static analysis, block benchmarking, traces, replay, equivalence search) |
//! | `obstacle` | the obstacle-problem application of the paper's evaluation |
//!
//! The [`Scenario`] type is the one-stop entry point: pick a platform, a peer
//! count and an optimisation level, then ask for the reference execution time
//! (`t_normal_execution`, what P2PDC would measure) or the dPerf prediction
//! (`t_predicted`). The [`experiments`] module regenerates every figure and
//! table of the paper's evaluation from those two calls.
//!
//! ```
//! use p2p_perf::{PlatformKind, Scenario};
//! use obstacle::ObstacleApp;
//!
//! // A scaled-down obstacle problem on 4 LAN peers.
//! let scenario = Scenario::new(PlatformKind::Lan, 4)
//!     .with_app(ObstacleApp::small());
//! let reference = scenario.run_reference();
//! let prediction = scenario.predict();
//! let rel_err = (prediction.total.as_secs_f64() - reference.execution_time.as_secs_f64()).abs()
//!     / reference.execution_time.as_secs_f64();
//! assert!(rel_err < 0.2, "dPerf must track the reference time");
//! ```

#![warn(missing_docs)]

pub mod experiments;
pub mod scenario;

pub use experiments::{
    equivalence_table, fig10_prediction_accuracy, fig11_topology_comparison, fig9_reference_times,
    prediction_curve, reference_curve,
};
pub use scenario::{PlatformKind, Scenario};

// Re-export the sub-crates so downstream users need a single dependency.
pub use dperf;
pub use netsim;
pub use obstacle;
pub use p2p_common as common;
pub use p2pdc;
pub use p2psap;
