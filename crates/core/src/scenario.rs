//! Scenarios: one experiment configuration, end to end.

use dperf::{generate_traces, predict_traces, ModeledBencher, OptLevel, Prediction, TraceSet};
use netsim::{
    cluster_bordeplage, daisy_xdsl, lan, HostSpec, PlacementPolicy, SharingMode, Topology,
};
use obstacle::ObstacleApp;
use p2p_common::HostId;
use p2pdc::{run_reference, ExecutionConfig, RunReport};
use p2psap::IterativeScheme;

/// Which evaluation platform a scenario runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlatformKind {
    /// Stage-1: the Grid'5000 Bordeplage cluster.
    Grid5000,
    /// Stage-2A: the xDSL Daisy desktop grid (Fig. 8).
    Xdsl,
    /// Stage-2B: the campus LAN.
    Lan,
}

impl PlatformKind {
    /// Label used in figures and tables ("Grid5000", "xDSL", "LAN").
    pub fn label(self) -> &'static str {
        match self {
            PlatformKind::Grid5000 => "Grid5000",
            PlatformKind::Xdsl => "xDSL",
            PlatformKind::Lan => "LAN",
        }
    }
}

/// A fully specified experiment: application, platform, peer count, compiler
/// optimisation level, iterative scheme and simulation options.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The obstacle-problem workload.
    pub app: ObstacleApp,
    /// Target platform.
    pub platform: PlatformKind,
    /// Number of peers that compute.
    pub nprocs: usize,
    /// GCC optimisation level of the (simulated) binary.
    pub opt_level: OptLevel,
    /// Iterative scheme announced to P2PSAP.
    pub scheme: IterativeScheme,
    /// Bandwidth-sharing model of the network simulation.
    pub sharing: SharingMode,
    /// How peers are placed on the platform's hosts.
    pub placement: PlacementPolicy,
    /// Seed of the randomised platform parameters (xDSL last-mile bandwidths).
    pub seed: u64,
    /// Number of end hosts the Stage-2 platforms are built with.
    pub platform_nodes: usize,
}

impl Scenario {
    /// A scenario with the paper's defaults: paper-scale obstacle problem,
    /// `-O3`, synchronous scheme, bottleneck sharing, spread placement, and
    /// the 1024-node Stage-2 platforms.
    pub fn new(platform: PlatformKind, nprocs: usize) -> Self {
        assert!(nprocs > 0, "a scenario needs at least one peer");
        Scenario {
            app: ObstacleApp::paper_scale(),
            platform,
            nprocs,
            opt_level: OptLevel::O3,
            scheme: IterativeScheme::Synchronous,
            sharing: SharingMode::Bottleneck,
            placement: PlacementPolicy::Spread,
            seed: 42,
            platform_nodes: 1024,
        }
    }

    /// Replace the application (e.g. [`ObstacleApp::small`] in tests).
    pub fn with_app(mut self, app: ObstacleApp) -> Self {
        self.app = app;
        self
    }

    /// Set the optimisation level.
    pub fn with_opt(mut self, opt: OptLevel) -> Self {
        self.opt_level = opt;
        self
    }

    /// Set the iterative scheme.
    pub fn with_scheme(mut self, scheme: IterativeScheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Set the bandwidth-sharing model.
    pub fn with_sharing(mut self, sharing: SharingMode) -> Self {
        self.sharing = sharing;
        self
    }

    /// Set the platform seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Build the platform this scenario runs on.
    pub fn build_topology(&self) -> Topology {
        let host = HostSpec::xeon_em64t_3ghz();
        match self.platform {
            PlatformKind::Grid5000 => cluster_bordeplage(self.nprocs.max(2), host),
            PlatformKind::Xdsl => daisy_xdsl(self.platform_nodes, host, self.seed),
            PlatformKind::Lan => lan(self.platform_nodes.min(1024), host),
        }
    }

    /// The hosts rank `0..nprocs` map to.
    pub fn pick_hosts(&self, topology: &Topology) -> Vec<HostId> {
        match self.platform {
            PlatformKind::Grid5000 => topology.hosts[..self.nprocs].to_vec(),
            _ => topology.pick_hosts(self.nprocs, self.placement),
        }
    }

    /// Run the full P2PDC reference execution (`t_normal_execution`).
    pub fn run_reference(&self) -> RunReport {
        let topology = self.build_topology();
        let hosts = self.pick_hosts(&topology);
        let cfg = ExecutionConfig {
            opt_factor: self.opt_level.time_factor(),
            scheme: self.scheme,
            sharing: self.sharing,
            ..ExecutionConfig::default()
        };
        run_reference(&self.app, &topology, &hosts, &cfg)
    }

    /// Generate the dPerf trace set of this scenario (static analysis + block
    /// benchmarking + instrumented run).
    pub fn traces(&self) -> TraceSet {
        let bencher = ModeledBencher::new(dperf::MachineModel::xeon_em64t_3ghz(), self.opt_level);
        generate_traces(
            &self.app.program(),
            &self.app.base_env(),
            self.nprocs,
            &bencher,
            Some(&ObstacleApp::rank_env),
            self.opt_level.label(),
        )
    }

    /// Run the dPerf prediction (`t_predicted`): trace-based simulation of the
    /// scenario's traces on the scenario's platform.
    pub fn predict(&self) -> Prediction {
        let topology = self.build_topology();
        let hosts = self.pick_hosts(&topology);
        let traces = self.traces();
        predict_traces(&traces, &topology, &hosts, self.scheme, self.sharing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(platform: PlatformKind, nprocs: usize) -> Scenario {
        Scenario::new(platform, nprocs)
            .with_app(ObstacleApp::small())
            .with_opt(OptLevel::O0)
    }

    #[test]
    fn scenario_builds_each_platform() {
        for (platform, expected_hosts) in [
            (PlatformKind::Grid5000, 4),
            (PlatformKind::Xdsl, 64),
            (PlatformKind::Lan, 64),
        ] {
            let mut s = small(platform, 4);
            s.platform_nodes = 64;
            let topo = s.build_topology();
            assert!(topo.hosts.len() >= expected_hosts.min(4));
            let hosts = s.pick_hosts(&topo);
            assert_eq!(hosts.len(), 4);
        }
    }

    #[test]
    fn prediction_tracks_the_reference_on_the_cluster() {
        let s = small(PlatformKind::Grid5000, 4);
        let reference = s.run_reference();
        let prediction = s.predict();
        let r = reference.execution_time.as_secs_f64();
        let p = prediction.total.as_secs_f64();
        let rel = (p - r).abs() / r;
        assert!(rel < 0.15, "prediction {p} vs reference {r} (rel {rel})");
    }

    #[test]
    fn opt_level_0_is_slower_than_3() {
        let s3 = small(PlatformKind::Grid5000, 2).with_opt(OptLevel::O3);
        let s0 = small(PlatformKind::Grid5000, 2).with_opt(OptLevel::O0);
        let t3 = s3.predict().total.as_secs_f64();
        let t0 = s0.predict().total.as_secs_f64();
        assert!(t0 > 2.0 * t3, "O0 {t0} vs O3 {t3}");
    }

    #[test]
    fn traces_are_consistent() {
        let s = small(PlatformKind::Lan, 4);
        let traces = s.traces();
        assert_eq!(traces.nprocs, 4);
        assert!(traces.validate().is_empty());
        assert_eq!(traces.opt_level, "0");
    }

    #[test]
    fn platform_labels() {
        assert_eq!(PlatformKind::Grid5000.label(), "Grid5000");
        assert_eq!(PlatformKind::Xdsl.label(), "xDSL");
        assert_eq!(PlatformKind::Lan.label(), "LAN");
    }
}
