//! Property-based tests of the dPerf IR, traces and equivalence search.

use dperf::equivalence::{classify, Tolerance};
use dperf::ir::{Expr, ParamEnv};
use dperf::{ProcessTrace, TraceEvent, TraceSet};
use p2p_common::SimDuration;
use proptest::prelude::*;

/// A strategy for small random work expressions.
fn arb_expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (-1e6f64..1e6).prop_map(Expr::Const),
        prop::sample::select(vec!["N", "iters", "my_rows", "x"]).prop_map(Expr::p),
    ]
    .boxed();
    leaf.prop_recursive(depth, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.add(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.sub(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.mul(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.div(b)),
            (inner.clone(), inner).prop_map(|(a, b)| a.max(b)),
        ]
    })
    .boxed()
}

proptest! {
    /// Expression evaluation never panics, and every parameter it reports as
    /// free really appears in the rendered form.
    #[test]
    fn expr_eval_total_and_free_params_sound(e in arb_expr(4), n in -1e3f64..1e3) {
        let env = ParamEnv::new().with("N", n).with("iters", 10.0);
        let v = e.eval(&env);
        prop_assert!(!v.is_nan() || v.is_nan(), "eval returned"); // totality: no panic
        let rendered = e.to_string();
        for p in e.free_params() {
            prop_assert!(rendered.contains(&p), "{} not in {}", p, rendered);
        }
        // eval_count never panics, and non-positive work clamps to zero.
        let c = e.eval_count(&env);
        if v <= 0.0 {
            prop_assert_eq!(c, 0);
        }
    }

    /// Trace sets survive the JSON round trip bit-for-bit.
    #[test]
    fn trace_json_roundtrip(events in prop::collection::vec((0u64..1_000_000, 0usize..4, 0u32..8), 0..50)) {
        let nprocs = 4;
        let traces: Vec<ProcessTrace> = (0..nprocs)
            .map(|rank| ProcessTrace {
                rank,
                events: events
                    .iter()
                    .map(|&(ns, to, tag)| {
                        if to == rank {
                            TraceEvent::Compute { ns, block: "b".into() }
                        } else {
                            TraceEvent::Send { to, bytes: ns % 10_000, tag }
                        }
                    })
                    .collect(),
            })
            .collect();
        let set = TraceSet { app: "prop".into(), nprocs, opt_level: "3".into(), traces };
        let back = TraceSet::from_json(&set.to_json()).unwrap();
        prop_assert_eq!(back, set);
    }

    /// The Table-I classification is total and monotone: a slower candidate
    /// never classifies better than a faster one against the same reference.
    #[test]
    fn classification_is_monotone(reference in 1u64..100_000_000, a in 1u64..100_000_000, b in 1u64..100_000_000) {
        let tol = Tolerance::default();
        let r = SimDuration::from_nanos(reference);
        let (fast, slow) = if a <= b { (a, b) } else { (b, a) };
        let rank = |c: dperf::Comparison| match c {
            dperf::Comparison::Higher => 0,
            dperf::Comparison::Same => 1,
            dperf::Comparison::SlightlyLower => 2,
            dperf::Comparison::MuchLower => 3,
        };
        let cf = classify(SimDuration::from_nanos(fast), r, tol);
        let cs = classify(SimDuration::from_nanos(slow), r, tol);
        prop_assert!(rank(cf) <= rank(cs), "{:?} vs {:?}", cf, cs);
    }
}
