//! Data- and control-dependence graphs.
//!
//! The ROSE-based dPerf translator exploits "the methods available within Rose
//! for analyzing not only the AST, but also the data and control dependence
//! graphs of an input code" (paper §III-D.1). This module derives the same
//! information from the IR: flow (read-after-write), anti (write-after-read)
//! and output (write-after-write) dependences between blocks, based on their
//! declared array accesses, plus control dependences of statements on their
//! enclosing loops and branches.

use crate::ir::{Program, Stmt};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Kind of a dependence edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DepKind {
    /// Read-after-write (true/flow dependence).
    Flow,
    /// Write-after-read (anti dependence).
    Anti,
    /// Write-after-write (output dependence).
    Output,
    /// Statement is governed by a loop or branch.
    Control,
}

/// A node of the dependence graph: one statement, identified by its pre-order
/// index, with a human-readable label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DepNode {
    /// Pre-order index of the statement.
    pub index: usize,
    /// Label: block name, `comm(tag)`, `collective(tag)`, `loop`, `if`.
    pub label: String,
}

/// The dependence graph of a program.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DependenceGraph {
    /// Nodes in pre-order.
    pub nodes: Vec<DepNode>,
    /// Edges `(from, to, kind)`, with `from < to` for data dependences.
    pub edges: Vec<(usize, usize, DepKind)>,
}

impl DependenceGraph {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// All edges of a given kind.
    pub fn edges_of_kind(&self, kind: DepKind) -> Vec<(usize, usize)> {
        self.edges
            .iter()
            .filter(|&&(_, _, k)| k == kind)
            .map(|&(a, b, _)| (a, b))
            .collect()
    }

    /// Indices of the nodes the given node depends on.
    pub fn dependencies_of(&self, index: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter(|&&(_, to, _)| to == index)
            .map(|&(from, _, _)| from)
            .collect()
    }
}

/// Build the dependence graph of a program.
pub fn build_dependence_graph(program: &Program) -> DependenceGraph {
    let mut builder = GraphBuilder::default();
    builder.visit_all(&program.body, None);
    builder.add_data_edges();
    DependenceGraph {
        nodes: builder.nodes,
        edges: builder.edges,
    }
}

#[derive(Default)]
struct GraphBuilder {
    nodes: Vec<DepNode>,
    edges: Vec<(usize, usize, DepKind)>,
    /// (node index, reads, writes) for compute blocks, in program order.
    accesses: Vec<(usize, Vec<String>, Vec<String>)>,
}

impl GraphBuilder {
    fn push_node(&mut self, label: String) -> usize {
        let index = self.nodes.len();
        self.nodes.push(DepNode { index, label });
        index
    }

    fn visit_all(&mut self, stmts: &[Stmt], parent: Option<usize>) {
        for stmt in stmts {
            self.visit(stmt, parent);
        }
    }

    fn visit(&mut self, stmt: &Stmt, parent: Option<usize>) {
        match stmt {
            Stmt::Compute(block) => {
                let idx = self.push_node(block.name.clone());
                if let Some(p) = parent {
                    self.edges.push((p, idx, DepKind::Control));
                }
                self.accesses
                    .push((idx, block.reads.clone(), block.writes.clone()));
            }
            Stmt::Comm(call) => {
                let idx = self.push_node(format!("comm(tag={})", call.tag));
                if let Some(p) = parent {
                    self.edges.push((p, idx, DepKind::Control));
                }
            }
            Stmt::Collective(coll) => {
                let idx = self.push_node(format!("collective(tag={})", coll.tag));
                if let Some(p) = parent {
                    self.edges.push((p, idx, DepKind::Control));
                }
            }
            Stmt::Loop { body, .. } => {
                let idx = self.push_node("loop".to_string());
                if let Some(p) = parent {
                    self.edges.push((p, idx, DepKind::Control));
                }
                self.visit_all(body, Some(idx));
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                let idx = self.push_node("if".to_string());
                if let Some(p) = parent {
                    self.edges.push((p, idx, DepKind::Control));
                }
                self.visit_all(then_branch, Some(idx));
                self.visit_all(else_branch, Some(idx));
            }
        }
    }

    fn add_data_edges(&mut self) {
        // Track, per array, the index of the last writer and of the readers
        // since that write.
        let mut last_writer: HashMap<&str, usize> = HashMap::new();
        let mut readers_since_write: HashMap<&str, Vec<usize>> = HashMap::new();
        let accesses = std::mem::take(&mut self.accesses);
        for (idx, reads, writes) in &accesses {
            for array in reads {
                if let Some(&w) = last_writer.get(array.as_str()) {
                    self.edges.push((w, *idx, DepKind::Flow));
                }
                readers_since_write.entry(array).or_default().push(*idx);
            }
            for array in writes {
                if let Some(&w) = last_writer.get(array.as_str()) {
                    if w != *idx {
                        self.edges.push((w, *idx, DepKind::Output));
                    }
                }
                if let Some(readers) = readers_since_write.get(array.as_str()) {
                    for &r in readers {
                        if r != *idx {
                            self.edges.push((r, *idx, DepKind::Anti));
                        }
                    }
                }
                last_writer.insert(array, *idx);
                readers_since_write.insert(array, Vec::new());
            }
        }
        self.accesses = accesses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{ComputeBlock, Expr, Guard, Program, Target};

    fn pipeline() -> Program {
        Program::builder("dep-test")
            .compute(ComputeBlock::new("produce", Expr::c(1.0)).writing(&["a"]))
            .compute(
                ComputeBlock::new("transform", Expr::c(1.0))
                    .reading(&["a"])
                    .writing(&["b"]),
            )
            .compute(ComputeBlock::new("consume", Expr::c(1.0)).reading(&["b"]))
            .compute(ComputeBlock::new("overwrite", Expr::c(1.0)).writing(&["b"]))
            .build()
    }

    #[test]
    fn flow_anti_and_output_dependences_are_found() {
        let g = build_dependence_graph(&pipeline());
        assert_eq!(g.node_count(), 4);
        let flow = g.edges_of_kind(DepKind::Flow);
        assert!(flow.contains(&(0, 1)), "produce -> transform (RAW on a)");
        assert!(flow.contains(&(1, 2)), "transform -> consume (RAW on b)");
        let output = g.edges_of_kind(DepKind::Output);
        assert!(
            output.contains(&(1, 3)),
            "transform and overwrite both write b"
        );
        let anti = g.edges_of_kind(DepKind::Anti);
        assert!(
            anti.contains(&(2, 3)),
            "consume reads b before overwrite writes it"
        );
    }

    #[test]
    fn control_dependences_point_at_enclosing_constructs() {
        let p = Program::builder("ctl")
            .loop_(Expr::c(2.0), |b| {
                b.compute(ComputeBlock::new("body", Expr::c(1.0))).if_(
                    Guard::IsCoordinator,
                    |t| t.send(Target::AbsoluteRank(1), Expr::c(8.0), 0),
                    |e| e,
                )
            })
            .build();
        let g = build_dependence_graph(&p);
        // Nodes: loop(0), body(1), if(2), comm(3).
        let control = g.edges_of_kind(DepKind::Control);
        assert!(control.contains(&(0, 1)));
        assert!(control.contains(&(0, 2)));
        assert!(control.contains(&(2, 3)));
        assert_eq!(g.dependencies_of(3), vec![2]);
    }

    #[test]
    fn independent_blocks_have_no_data_edges() {
        let p = Program::builder("indep")
            .compute(ComputeBlock::new("a", Expr::c(1.0)).writing(&["x"]))
            .compute(ComputeBlock::new("b", Expr::c(1.0)).writing(&["y"]))
            .build();
        let g = build_dependence_graph(&p);
        assert!(g.edges_of_kind(DepKind::Flow).is_empty());
        assert!(g.edges_of_kind(DepKind::Output).is_empty());
    }
}
