//! Block decomposition and static summary.
//!
//! dPerf's "decomposition by blocks" (Fig. 6) identifies the basic instruction
//! blocks of the input code and the communication calls between them — that is
//! precisely what [`analyze`] extracts from the IR, and what
//! [`merge_adjacent_computes`] normalises (consecutive compute statements with
//! no intervening communication or control flow belong to the same basic
//! block, so they are merged into one).

use crate::ir::{ParamEnv, Program, RankContext, Stmt};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-block static summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockSummary {
    /// Block name.
    pub name: String,
    /// Number of *static* occurrences in the program text.
    pub sites: usize,
    /// Number of *dynamic* executions for the analysed rank (loop trip counts
    /// and guards resolved).
    pub executions: u64,
    /// Total dynamic work of the block for the analysed rank, in flops.
    pub dynamic_flops: f64,
}

/// The static-analysis report for one rank.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// Total statements in the program tree.
    pub stmt_count: usize,
    /// Deepest loop nesting.
    pub max_loop_depth: usize,
    /// Summaries per distinct block name.
    pub blocks: Vec<BlockSummary>,
    /// Static point-to-point communication call sites.
    pub comm_sites: usize,
    /// Static collective call sites.
    pub collective_sites: usize,
    /// Dynamic point-to-point messages the analysed rank will issue
    /// (send + exchange sites, loop counts applied, unresolved targets skipped).
    pub dynamic_messages: u64,
    /// Dynamic payload bytes the analysed rank will send.
    pub dynamic_bytes_sent: f64,
    /// Total dynamic flops for the analysed rank.
    pub total_flops: f64,
}

impl AnalysisReport {
    /// The summary for a block name, if present.
    pub fn block(&self, name: &str) -> Option<&BlockSummary> {
        self.blocks.iter().find(|b| b.name == name)
    }
}

/// Analyse `program` for one rank: resolve loop counts and guards against
/// `env` (overlaid on the program defaults) and accumulate the dynamic work
/// and communication volume.
pub fn analyze(program: &Program, env: &ParamEnv, ctx: RankContext) -> AnalysisReport {
    let env = program.defaults.overlaid_with(env);
    let mut acc = Accumulator {
        env: &env,
        ctx,
        blocks: BTreeMap::new(),
        comm_sites: 0,
        collective_sites: 0,
        dynamic_messages: 0,
        dynamic_bytes_sent: 0.0,
        total_flops: 0.0,
        max_loop_depth: 0,
    };
    acc.visit_all(&program.body, 1.0, 0);
    AnalysisReport {
        stmt_count: program.stmt_count(),
        max_loop_depth: acc.max_loop_depth,
        blocks: acc
            .blocks
            .into_iter()
            .map(|(name, (sites, executions, flops))| BlockSummary {
                name,
                sites,
                executions,
                dynamic_flops: flops,
            })
            .collect(),
        comm_sites: acc.comm_sites,
        collective_sites: acc.collective_sites,
        dynamic_messages: acc.dynamic_messages,
        dynamic_bytes_sent: acc.dynamic_bytes_sent,
        total_flops: acc.total_flops,
    }
}

struct Accumulator<'a> {
    env: &'a ParamEnv,
    ctx: RankContext,
    /// name -> (static sites, dynamic executions, dynamic flops)
    blocks: BTreeMap<String, (usize, u64, f64)>,
    comm_sites: usize,
    collective_sites: usize,
    dynamic_messages: u64,
    dynamic_bytes_sent: f64,
    total_flops: f64,
    max_loop_depth: usize,
}

impl Accumulator<'_> {
    fn visit_all(&mut self, stmts: &[Stmt], multiplier: f64, depth: usize) {
        for stmt in stmts {
            self.visit(stmt, multiplier, depth);
        }
    }

    fn visit(&mut self, stmt: &Stmt, multiplier: f64, depth: usize) {
        match stmt {
            Stmt::Compute(block) => {
                let flops = block.flops.eval(self.env).max(0.0) * multiplier;
                let entry = self.blocks.entry(block.name.clone()).or_insert((0, 0, 0.0));
                entry.0 += 1;
                entry.1 += multiplier.round() as u64;
                entry.2 += flops;
                self.total_flops += flops;
            }
            Stmt::Comm(call) => {
                self.comm_sites += 1;
                if call.peer.resolve(self.ctx).is_some() {
                    use crate::ir::CommKind;
                    let sends = match call.kind {
                        CommKind::Send | CommKind::SendRecv => 1.0,
                        CommKind::Recv => 0.0,
                    };
                    self.dynamic_messages += (multiplier * sends).round() as u64;
                    self.dynamic_bytes_sent +=
                        call.bytes.eval(self.env).max(0.0) * multiplier * sends;
                }
            }
            Stmt::Collective(coll) => {
                self.collective_sites += 1;
                // Each collective costs this rank one send towards (or from)
                // the coordinator; the coordinator sends to everyone.
                use crate::ir::CollectiveKind;
                let sends_per_execution = match (coll.kind, self.ctx.is_coordinator()) {
                    (CollectiveKind::Gather, true) => 0.0,
                    (CollectiveKind::Gather, false) => 1.0,
                    (CollectiveKind::Broadcast, true) => (self.ctx.nprocs - 1) as f64,
                    (CollectiveKind::Broadcast, false) => 0.0,
                    (CollectiveKind::AllReduce, true) => (self.ctx.nprocs - 1) as f64,
                    (CollectiveKind::AllReduce, false) => 1.0,
                };
                self.dynamic_messages += (multiplier * sends_per_execution).round() as u64;
                self.dynamic_bytes_sent +=
                    coll.bytes.eval(self.env).max(0.0) * multiplier * sends_per_execution;
            }
            Stmt::Loop { count, body } => {
                self.max_loop_depth = self.max_loop_depth.max(depth + 1);
                let trips = count.eval(self.env).max(0.0);
                self.visit_all(body, multiplier * trips, depth + 1);
            }
            Stmt::If {
                guard,
                then_branch,
                else_branch,
            } => {
                if guard.eval(self.ctx, self.env) {
                    self.visit_all(then_branch, multiplier, depth);
                } else {
                    self.visit_all(else_branch, multiplier, depth);
                }
            }
        }
    }
}

/// Merge runs of consecutive `Compute` statements into single blocks (the
/// basic-block normalisation step). Names are joined with `+`, work summed,
/// read/write sets unioned. Loops and branches are processed recursively.
pub fn merge_adjacent_computes(program: &Program) -> Program {
    Program {
        name: program.name.clone(),
        defaults: program.defaults.clone(),
        body: merge_stmts(&program.body),
    }
}

fn merge_stmts(stmts: &[Stmt]) -> Vec<Stmt> {
    let mut out: Vec<Stmt> = Vec::with_capacity(stmts.len());
    for stmt in stmts {
        let transformed = match stmt {
            Stmt::Loop { count, body } => Stmt::Loop {
                count: count.clone(),
                body: merge_stmts(body),
            },
            Stmt::If {
                guard,
                then_branch,
                else_branch,
            } => Stmt::If {
                guard: guard.clone(),
                then_branch: merge_stmts(then_branch),
                else_branch: merge_stmts(else_branch),
            },
            other => other.clone(),
        };
        match (out.last_mut(), &transformed) {
            (Some(Stmt::Compute(prev)), Stmt::Compute(next)) => {
                prev.name = format!("{}+{}", prev.name, next.name);
                prev.flops = prev.flops.clone().add(next.flops.clone());
                for r in &next.reads {
                    if !prev.reads.contains(r) {
                        prev.reads.push(r.clone());
                    }
                }
                for w in &next.writes {
                    if !prev.writes.contains(w) {
                        prev.writes.push(w.clone());
                    }
                }
            }
            _ => out.push(transformed),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{CollectiveKind, ComputeBlock, Expr, Guard, Target};

    fn stencil(iters: f64) -> Program {
        Program::builder("stencil")
            .param("N", 100.0)
            .param("iters", iters)
            .compute(ComputeBlock::new("init", Expr::p("N").mul(Expr::p("N"))))
            .loop_(Expr::p("iters"), |b| {
                b.compute(
                    ComputeBlock::new(
                        "sweep",
                        Expr::c(5.0).mul(Expr::p("N")).mul(Expr::p("my_rows")),
                    )
                    .reading(&["u"])
                    .writing(&["u"]),
                )
                .if_(
                    Guard::HasDownNeighbor,
                    |t| t.sendrecv(Target::RelativeRank(1), Expr::c(8.0).mul(Expr::p("N")), 1),
                    |e| e,
                )
                .collective(CollectiveKind::AllReduce, Expr::c(8.0), 2)
            })
            .build()
    }

    #[test]
    fn analysis_resolves_loops_and_guards_per_rank() {
        let p = stencil(10.0);
        let env = ParamEnv::new().with("my_rows", 25.0);
        // Middle rank of 4: has a down neighbour.
        let mid = analyze(&p, &env, RankContext { rank: 1, nprocs: 4 });
        assert_eq!(mid.max_loop_depth, 1);
        assert_eq!(mid.comm_sites, 1);
        assert_eq!(mid.collective_sites, 1);
        let sweep = mid.block("sweep").unwrap();
        assert_eq!(sweep.executions, 10);
        assert_eq!(sweep.dynamic_flops, 5.0 * 100.0 * 25.0 * 10.0);
        // 10 halo exchanges + 10 reduction contributions.
        assert_eq!(mid.dynamic_messages, 20);
        // Last rank: no down neighbour, so only the reduction messages remain.
        let last = analyze(&p, &env, RankContext { rank: 3, nprocs: 4 });
        assert_eq!(last.dynamic_messages, 10);
        // Coordinator: broadcasts the reduction result to 3 peers per iteration.
        let coord = analyze(&p, &env, RankContext { rank: 0, nprocs: 4 });
        assert_eq!(coord.dynamic_messages, 10 + 30);
    }

    #[test]
    fn total_flops_scale_with_iteration_count() {
        let env = ParamEnv::new().with("my_rows", 25.0);
        let ctx = RankContext { rank: 1, nprocs: 4 };
        let short = analyze(&stencil(10.0), &env, ctx);
        let long = analyze(&stencil(20.0), &env, ctx);
        let init = 100.0 * 100.0;
        assert!((long.total_flops - init) / (short.total_flops - init) > 1.99);
    }

    #[test]
    fn merge_collapses_adjacent_compute_blocks() {
        let p = Program::builder("merge-me")
            .compute(
                ComputeBlock::new("a", Expr::c(10.0))
                    .reading(&["x"])
                    .writing(&["y"]),
            )
            .compute(
                ComputeBlock::new("b", Expr::c(20.0))
                    .reading(&["y"])
                    .writing(&["z"]),
            )
            .sendrecv(Target::RelativeRank(1), Expr::c(100.0), 0)
            .compute(ComputeBlock::new("c", Expr::c(30.0)))
            .build();
        let merged = merge_adjacent_computes(&p);
        assert_eq!(merged.body.len(), 3, "a+b, comm, c");
        match &merged.body[0] {
            Stmt::Compute(block) => {
                assert_eq!(block.name, "a+b");
                assert_eq!(block.flops.eval(&ParamEnv::new()), 30.0);
                assert_eq!(block.reads, vec!["x", "y"]);
                assert_eq!(block.writes, vec!["y", "z"]);
            }
            other => panic!("expected merged compute, got {other:?}"),
        }
    }

    #[test]
    fn merge_recurses_into_loops() {
        let p = Program::builder("nested")
            .loop_(Expr::c(4.0), |b| {
                b.compute(ComputeBlock::new("a", Expr::c(1.0)))
                    .compute(ComputeBlock::new("b", Expr::c(2.0)))
            })
            .build();
        let merged = merge_adjacent_computes(&p);
        match &merged.body[0] {
            Stmt::Loop { body, .. } => assert_eq!(body.len(), 1),
            other => panic!("expected loop, got {other:?}"),
        }
        // Dynamic work must be preserved by the normalisation.
        let env = ParamEnv::new();
        let ctx = RankContext { rank: 0, nprocs: 1 };
        assert_eq!(
            analyze(&p, &env, ctx).total_flops,
            analyze(&merged, &env, ctx).total_flops
        );
    }
}
