//! Visitor-based traversal of the statement tree.

use crate::ir::{Collective, CommCall, ComputeBlock, Expr, Guard, Stmt};

/// A visitor over the program tree. All methods have empty default bodies so
/// implementors only override what they need (the same ergonomics as ROSE's
/// `AstSimpleProcessing`).
pub trait Visitor {
    /// Called on every compute block.
    fn visit_compute(&mut self, _block: &ComputeBlock, _depth: usize) {}
    /// Called on every point-to-point communication call.
    fn visit_comm(&mut self, _call: &CommCall, _depth: usize) {}
    /// Called on every collective call.
    fn visit_collective(&mut self, _coll: &Collective, _depth: usize) {}
    /// Called when entering a loop.
    fn enter_loop(&mut self, _count: &Expr, _depth: usize) {}
    /// Called when leaving a loop.
    fn exit_loop(&mut self, _count: &Expr, _depth: usize) {}
    /// Called when entering a branch.
    fn enter_if(&mut self, _guard: &Guard, _depth: usize) {}
    /// Called when leaving a branch.
    fn exit_if(&mut self, _guard: &Guard, _depth: usize) {}
}

/// Walk a statement list in program order, invoking the visitor. `depth` is
/// the loop-nesting depth (branches do not increase it).
pub fn walk<V: Visitor>(stmts: &[Stmt], visitor: &mut V) {
    walk_at(stmts, visitor, 0);
}

fn walk_at<V: Visitor>(stmts: &[Stmt], visitor: &mut V, depth: usize) {
    for stmt in stmts {
        match stmt {
            Stmt::Compute(block) => visitor.visit_compute(block, depth),
            Stmt::Comm(call) => visitor.visit_comm(call, depth),
            Stmt::Collective(coll) => visitor.visit_collective(coll, depth),
            Stmt::Loop { count, body } => {
                visitor.enter_loop(count, depth);
                walk_at(body, visitor, depth + 1);
                visitor.exit_loop(count, depth);
            }
            Stmt::If {
                guard,
                then_branch,
                else_branch,
            } => {
                visitor.enter_if(guard, depth);
                walk_at(then_branch, visitor, depth);
                walk_at(else_branch, visitor, depth);
                visitor.exit_if(guard, depth);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{CollectiveKind, Guard, Program, Target};

    #[derive(Default)]
    struct Counter {
        computes: usize,
        comms: usize,
        collectives: usize,
        loops: usize,
        ifs: usize,
        max_depth: usize,
    }

    impl Visitor for Counter {
        fn visit_compute(&mut self, _b: &ComputeBlock, depth: usize) {
            self.computes += 1;
            self.max_depth = self.max_depth.max(depth);
        }
        fn visit_comm(&mut self, _c: &CommCall, _d: usize) {
            self.comms += 1;
        }
        fn visit_collective(&mut self, _c: &Collective, _d: usize) {
            self.collectives += 1;
        }
        fn enter_loop(&mut self, _c: &Expr, _d: usize) {
            self.loops += 1;
        }
        fn enter_if(&mut self, _g: &Guard, _d: usize) {
            self.ifs += 1;
        }
    }

    fn sample() -> Program {
        Program::builder("sample")
            .compute(ComputeBlock::new("init", Expr::c(10.0)))
            .loop_(Expr::c(3.0), |b| {
                b.compute(ComputeBlock::new("body", Expr::c(5.0)))
                    .if_(
                        Guard::HasDownNeighbor,
                        |t| t.sendrecv(Target::RelativeRank(1), Expr::c(100.0), 0),
                        |e| e,
                    )
                    .collective(CollectiveKind::AllReduce, Expr::c(8.0), 1)
            })
            .build()
    }

    #[test]
    fn traversal_visits_every_node_once() {
        let p = sample();
        let mut counter = Counter::default();
        walk(&p.body, &mut counter);
        assert_eq!(counter.computes, 2);
        assert_eq!(counter.comms, 1);
        assert_eq!(counter.collectives, 1);
        assert_eq!(counter.loops, 1);
        assert_eq!(counter.ifs, 1);
        assert_eq!(counter.max_depth, 1, "the loop body sits at depth 1");
    }

    #[test]
    fn traversal_of_an_empty_program_is_a_noop() {
        let p = Program::builder("empty").build();
        let mut counter = Counter::default();
        walk(&p.body, &mut counter);
        assert_eq!(counter.computes + counter.comms + counter.loops, 0);
    }
}
