//! Automatic static analysis of the program IR.
//!
//! This mirrors the role of dPerf's ROSE-based custom translator (paper
//! §III-D, Fig. 7): traverse the AST, decompose it into basic blocks, locate
//! the communication calls, and build control/data dependence information.
//!
//! * [`traversal`] — a visitor over the statement tree (the AST walk).
//! * [`blocks`] — block decomposition and the static summary report: how many
//!   blocks, how much symbolic work, how many communication sites.
//! * [`dependence`] — data-dependence (RAW/WAR/WAW over declared array
//!   accesses) and control-dependence edges, the stand-in for ROSE's DDG/CDG.

pub mod blocks;
pub mod dependence;
pub mod traversal;

pub use blocks::{analyze, merge_adjacent_computes, AnalysisReport, BlockSummary};
pub use dependence::{build_dependence_graph, DepKind, DependenceGraph};
pub use traversal::{walk, Visitor};
