//! Trace files.
//!
//! Running the instrumented code produces "a set of trace files for each
//! execution and per participating process or node. Traces contain computation
//! time measured using hardware counters and expressed in nanoseconds,
//! followed by relevant parameters for communication calls" (§III-D.2).
//!
//! [`TraceSet`] is that set of files: one [`ProcessTrace`] per rank, each a
//! flat list of [`TraceEvent`]s. Traces serialise to JSON (human-readable and
//! diffable — the reproduction's analogue of dPerf's text trace format) and
//! convert directly into `netsim` replay scripts.

use netsim::{ProcessScript, ReplayOp};
use p2p_common::SimDuration;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// One event of a process trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// The process computed for `ns` nanoseconds inside block `block`.
    Compute {
        /// Measured/modelled duration in nanoseconds.
        ns: u64,
        /// Name of the block (instrumentation site). Interned: every event
        /// of a block shares one allocation instead of cloning a `String`
        /// per event (compute events dominate large traces).
        block: Arc<str>,
    },
    /// The process sent `bytes` bytes to rank `to` with tag `tag`.
    Send {
        /// Destination rank.
        to: usize,
        /// Payload bytes.
        bytes: u64,
        /// Message tag.
        tag: u32,
    },
    /// The process waited for a message from rank `from` with tag `tag`.
    Recv {
        /// Source rank.
        from: usize,
        /// Message tag.
        tag: u32,
    },
}

/// The trace of one process (rank).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessTrace {
    /// Rank of the process.
    pub rank: usize,
    /// Events in execution order.
    pub events: Vec<TraceEvent>,
}

impl ProcessTrace {
    /// Total recorded computation time.
    pub fn compute_time(&self) -> SimDuration {
        let ns: u64 = self
            .events
            .iter()
            .map(|e| match e {
                TraceEvent::Compute { ns, .. } => *ns,
                _ => 0,
            })
            .sum();
        SimDuration::from_nanos(ns)
    }

    /// Number of messages this rank sends.
    pub fn sends(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Send { .. }))
            .count()
    }

    /// Number of receives this rank posts.
    pub fn recvs(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Recv { .. }))
            .count()
    }

    /// Convert to a `netsim` replay script.
    pub fn to_replay_script(&self) -> ProcessScript {
        let ops = self
            .events
            .iter()
            .map(|e| match e {
                TraceEvent::Compute { ns, .. } => ReplayOp::Compute {
                    duration: SimDuration::from_nanos(*ns),
                },
                TraceEvent::Send { to, bytes, tag } => ReplayOp::Send {
                    to: *to,
                    bytes: *bytes,
                    tag: *tag,
                },
                TraceEvent::Recv { from, tag } => ReplayOp::Recv {
                    from: *from,
                    tag: *tag,
                },
            })
            .collect();
        ProcessScript {
            rank: self.rank,
            ops,
        }
    }
}

/// A complete set of traces for one execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSet {
    /// Application name.
    pub app: String,
    /// Number of processes.
    pub nprocs: usize,
    /// GCC optimisation level label the traced binary was built with.
    pub opt_level: String,
    /// One trace per rank (index = rank).
    pub traces: Vec<ProcessTrace>,
}

impl TraceSet {
    /// Total number of events across all ranks.
    pub fn event_count(&self) -> usize {
        self.traces.iter().map(|t| t.events.len()).sum()
    }

    /// Total messages sent across all ranks.
    pub fn total_messages(&self) -> usize {
        self.traces.iter().map(|t| t.sends()).sum()
    }

    /// The largest per-rank compute time (lower bound on the execution time).
    pub fn max_compute_time(&self) -> SimDuration {
        self.traces
            .iter()
            .map(|t| t.compute_time())
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Convert every trace to a replay script, ordered by rank.
    pub fn to_replay_scripts(&self) -> Vec<ProcessScript> {
        self.traces.iter().map(|t| t.to_replay_script()).collect()
    }

    /// Serialise to a pretty JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trace sets always serialise")
    }

    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<TraceSet, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Write the trace set to a file.
    pub fn write_to(&self, path: impl AsRef<Path>) -> io::Result<()> {
        fs::write(path, self.to_json())
    }

    /// Read a trace set back from a file.
    pub fn read_from(path: impl AsRef<Path>) -> io::Result<TraceSet> {
        let text = fs::read_to_string(path)?;
        TraceSet::from_json(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Basic consistency checks: ranks are dense and in order, every send has
    /// a matching receive (same pair and tag, equal multiplicity) and vice
    /// versa. Returns a list of human-readable problems (empty = consistent).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.traces.len() != self.nprocs {
            problems.push(format!(
                "declared {} processes but contains {} traces",
                self.nprocs,
                self.traces.len()
            ));
        }
        for (i, t) in self.traces.iter().enumerate() {
            if t.rank != i {
                problems.push(format!("trace {i} declares rank {}", t.rank));
            }
        }
        use std::collections::HashMap;
        let mut sends: HashMap<(usize, usize, u32), i64> = HashMap::new();
        for t in &self.traces {
            for e in &t.events {
                match e {
                    TraceEvent::Send { to, tag, .. } => {
                        *sends.entry((t.rank, *to, *tag)).or_default() += 1;
                    }
                    TraceEvent::Recv { from, tag } => {
                        *sends.entry((*from, t.rank, *tag)).or_default() -= 1;
                    }
                    TraceEvent::Compute { .. } => {}
                }
            }
        }
        for ((from, to, tag), balance) in sends {
            if balance != 0 {
                problems.push(format!(
                    "unbalanced messages {from} -> {to} tag {tag}: {balance:+}"
                ));
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceSet {
        TraceSet {
            app: "demo".into(),
            nprocs: 2,
            opt_level: "3".into(),
            traces: vec![
                ProcessTrace {
                    rank: 0,
                    events: vec![
                        TraceEvent::Compute {
                            ns: 1_000_000,
                            block: "sweep".into(),
                        },
                        TraceEvent::Send {
                            to: 1,
                            bytes: 9600,
                            tag: 1,
                        },
                        TraceEvent::Recv { from: 1, tag: 1 },
                    ],
                },
                ProcessTrace {
                    rank: 1,
                    events: vec![
                        TraceEvent::Compute {
                            ns: 2_000_000,
                            block: "sweep".into(),
                        },
                        TraceEvent::Send {
                            to: 0,
                            bytes: 9600,
                            tag: 1,
                        },
                        TraceEvent::Recv { from: 0, tag: 1 },
                    ],
                },
            ],
        }
    }

    #[test]
    fn aggregates_are_computed() {
        let ts = sample();
        assert_eq!(ts.event_count(), 6);
        assert_eq!(ts.total_messages(), 2);
        assert_eq!(ts.max_compute_time(), SimDuration::from_millis(2));
        assert_eq!(ts.traces[0].sends(), 1);
        assert_eq!(ts.traces[0].recvs(), 1);
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let ts = sample();
        let json = ts.to_json();
        let back = TraceSet::from_json(&json).unwrap();
        assert_eq!(ts, back);
    }

    #[test]
    fn file_round_trip() {
        let ts = sample();
        let dir = std::env::temp_dir().join("dperf-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("traces.json");
        ts.write_to(&path).unwrap();
        let back = TraceSet::read_from(&path).unwrap();
        assert_eq!(ts, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_scripts_mirror_the_events() {
        let ts = sample();
        let scripts = ts.to_replay_scripts();
        assert_eq!(scripts.len(), 2);
        assert_eq!(scripts[0].rank, 0);
        assert_eq!(scripts[0].ops.len(), 3);
        assert!(matches!(scripts[0].ops[0], ReplayOp::Compute { .. }));
        assert!(matches!(
            scripts[0].ops[1],
            ReplayOp::Send {
                to: 1,
                bytes: 9600,
                tag: 1
            }
        ));
        assert!(matches!(
            scripts[0].ops[2],
            ReplayOp::Recv { from: 1, tag: 1 }
        ));
    }

    #[test]
    fn validate_accepts_balanced_traces_and_flags_imbalance() {
        let ts = sample();
        assert!(ts.validate().is_empty());
        let mut broken = ts.clone();
        broken.traces[0].events.push(TraceEvent::Send {
            to: 1,
            bytes: 1,
            tag: 9,
        });
        let problems = broken.validate();
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("tag 9"));
        let mut misnumbered = ts;
        misnumbered.traces[1].rank = 5;
        assert!(!misnumbered.validate().is_empty());
    }
}
