//! Block benchmarking.
//!
//! dPerf's central simplification is *block benchmarking*: rather than
//! simulating every instruction, measure (or model) each basic block once and
//! scale by how often it executes — "the use of benchmarking by block makes it
//! possible for dPerf results to be scaled-up while maintaining accuracy"
//! (§III-D.2). A [`BlockBencher`] turns a compute block plus its parameter
//! environment into a duration:
//!
//! * [`ModeledBencher`] — deterministic: work expression → flops → time via a
//!   [`MachineModel`] and an [`OptLevel`] factor. This is the back-end the
//!   experiment harness uses so figures are exactly reproducible.
//! * [`MeasuredBencher`] — the PAPI-analogue: real kernels (Rust closures)
//!   registered per block name are executed and timed with
//!   `std::time::Instant`; unregistered blocks fall back to the model.

use crate::compiler::OptLevel;
use crate::ir::{ComputeBlock, ParamEnv};
use crate::machine::MachineModel;
use p2p_common::SimDuration;
use std::collections::HashMap;
use std::time::Instant;

/// Something that can tell how long one execution of a block takes.
pub trait BlockBencher {
    /// Duration of a single execution of `block` under `env`.
    fn block_time(&self, block: &ComputeBlock, env: &ParamEnv) -> SimDuration;
}

/// Deterministic machine-model back-end.
#[derive(Debug, Clone)]
pub struct ModeledBencher {
    /// The node model.
    pub machine: MachineModel,
    /// Compiler optimisation level (scales all block times).
    pub opt: OptLevel,
}

impl ModeledBencher {
    /// Model blocks on the given machine at the given optimisation level.
    pub fn new(machine: MachineModel, opt: OptLevel) -> Self {
        ModeledBencher { machine, opt }
    }
}

impl BlockBencher for ModeledBencher {
    fn block_time(&self, block: &ComputeBlock, env: &ParamEnv) -> SimDuration {
        let flops = block.flops.eval(env).max(0.0);
        self.machine.time_for_flops(flops) * self.opt.time_factor()
    }
}

/// A real kernel to measure: receives the evaluation environment so it can
/// size its working set like the real block would.
pub type BlockKernel = Box<dyn Fn(&ParamEnv) + Send + Sync>;

/// Measurement back-end: times registered kernels, falls back to the model.
pub struct MeasuredBencher {
    kernels: HashMap<String, BlockKernel>,
    /// How many times to run each kernel (the median is reported).
    pub repetitions: u32,
    fallback: ModeledBencher,
}

impl MeasuredBencher {
    /// Create a measured bencher with the given fallback model.
    pub fn new(fallback: ModeledBencher) -> Self {
        MeasuredBencher {
            kernels: HashMap::new(),
            repetitions: 3,
            fallback,
        }
    }

    /// Register the real kernel for a block name.
    pub fn register(&mut self, block_name: impl Into<String>, kernel: BlockKernel) {
        self.kernels.insert(block_name.into(), kernel);
    }

    /// Names of all registered kernels.
    pub fn registered(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.kernels.keys().map(|s| s.as_str()).collect();
        names.sort_unstable();
        names
    }
}

impl BlockBencher for MeasuredBencher {
    fn block_time(&self, block: &ComputeBlock, env: &ParamEnv) -> SimDuration {
        match self.kernels.get(&block.name) {
            None => self.fallback.block_time(block, env),
            Some(kernel) => {
                let reps = self.repetitions.max(1);
                let mut samples = Vec::with_capacity(reps as usize);
                for _ in 0..reps {
                    let start = Instant::now();
                    kernel(env);
                    samples.push(start.elapsed());
                }
                samples.sort_unstable();
                let median = samples[samples.len() / 2];
                SimDuration::from_nanos(median.as_nanos().min(u64::MAX as u128) as u64)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Expr;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    fn block(flops: f64) -> ComputeBlock {
        ComputeBlock::new("kernel", Expr::c(flops))
    }

    #[test]
    fn modeled_times_scale_with_work_and_opt_level() {
        let env = ParamEnv::new();
        let o3 = ModeledBencher::new(MachineModel::xeon_em64t_3ghz(), OptLevel::O3);
        let o0 = ModeledBencher::new(MachineModel::xeon_em64t_3ghz(), OptLevel::O0);
        let t_small = o3.block_time(&block(1e6), &env);
        let t_big = o3.block_time(&block(1e8), &env);
        assert!(t_big.as_secs_f64() / t_small.as_secs_f64() > 90.0);
        let t_o0 = o0.block_time(&block(1e8), &env);
        let ratio = t_o0.as_secs_f64() / t_big.as_secs_f64();
        assert!((ratio - OptLevel::O0.time_factor()).abs() < 0.05);
    }

    #[test]
    fn modeled_times_honour_the_parameter_environment() {
        let bencher = ModeledBencher::new(MachineModel::xeon_em64t_3ghz(), OptLevel::O3);
        let b = ComputeBlock::new("sweep", Expr::p("N").mul(Expr::p("my_rows")));
        let small = bencher.block_time(&b, &ParamEnv::new().with("N", 100.0).with("my_rows", 10.0));
        let large = bencher.block_time(
            &b,
            &ParamEnv::new().with("N", 100.0).with("my_rows", 1000.0),
        );
        assert!(large > small);
    }

    #[test]
    fn measured_bencher_runs_registered_kernels() {
        let fallback = ModeledBencher::new(MachineModel::xeon_em64t_3ghz(), OptLevel::O3);
        let mut bencher = MeasuredBencher::new(fallback);
        let calls = Arc::new(AtomicU32::new(0));
        let calls_inner = Arc::clone(&calls);
        bencher.register(
            "kernel",
            Box::new(move |_env| {
                calls_inner.fetch_add(1, Ordering::SeqCst);
                // A tiny but non-empty amount of real work.
                let mut x = 0.0f64;
                for i in 0..10_000 {
                    x += (i as f64).sqrt();
                }
                std::hint::black_box(x);
            }),
        );
        let t = bencher.block_time(&block(1.0), &ParamEnv::new());
        assert!(t > SimDuration::ZERO);
        assert_eq!(calls.load(Ordering::SeqCst), bencher.repetitions);
        assert_eq!(bencher.registered(), vec!["kernel"]);
    }

    #[test]
    fn measured_bencher_falls_back_to_the_model() {
        let fallback = ModeledBencher::new(MachineModel::xeon_em64t_3ghz(), OptLevel::O3);
        let bencher = MeasuredBencher::new(fallback.clone());
        let b = block(2e6);
        assert_eq!(
            bencher.block_time(&b, &ParamEnv::new()),
            fallback.block_time(&b, &ParamEnv::new())
        );
    }
}
