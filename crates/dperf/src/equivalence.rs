//! Equivalent computing power search (Table I).
//!
//! "The novelty of this paper from a prediction point of view is the
//! possibility to use dPerf for finding an equivalent computing power of a
//! homogeneous cluster in a peer-to-peer computing platform connected over a
//! xDSL network or over LAN" (§V). Given the reference performance curve
//! (execution time vs. number of cluster nodes) and candidate curves for other
//! platforms, this module finds, for each cluster size, the smallest candidate
//! configuration delivering comparable performance, and classifies it the way
//! Table I does ("slightly lower", "same as", …).

use p2p_common::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One measured/predicted point: a peer count and an execution time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfPoint {
    /// Number of peers/processes.
    pub nprocs: usize,
    /// Execution time.
    pub time: SimDuration,
}

/// A performance curve for one platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfCurve {
    /// Platform label ("Grid5000", "xDSL", "LAN", …).
    pub label: String,
    /// Points, sorted by increasing `nprocs`.
    pub points: Vec<PerfPoint>,
}

impl PerfCurve {
    /// Create a curve from `(nprocs, seconds)` pairs (sorted internally).
    pub fn from_secs(label: impl Into<String>, points: &[(usize, f64)]) -> Self {
        let mut pts: Vec<PerfPoint> = points
            .iter()
            .map(|&(n, s)| PerfPoint {
                nprocs: n,
                time: SimDuration::from_secs_f64(s),
            })
            .collect();
        pts.sort_by_key(|p| p.nprocs);
        PerfCurve {
            label: label.into(),
            points: pts,
        }
    }

    /// The point for an exact peer count, if present.
    pub fn at(&self, nprocs: usize) -> Option<PerfPoint> {
        self.points.iter().copied().find(|p| p.nprocs == nprocs)
    }

    /// The fastest (smallest-time) point of the curve.
    pub fn best(&self) -> Option<PerfPoint> {
        self.points.iter().copied().min_by_key(|p| p.time)
    }
}

/// How a candidate configuration compares with the reference, following the
/// wording of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Comparison {
    /// Candidate is faster than the reference by more than the tolerance.
    Higher,
    /// Within ±`tolerance` of the reference.
    Same,
    /// Slower than the reference, but by at most `slight_factor`.
    SlightlyLower,
    /// Slower than `slight_factor` × reference.
    MuchLower,
}

impl Comparison {
    /// The phrase Table I uses.
    pub fn phrase(self) -> &'static str {
        match self {
            Comparison::Higher => "higher than",
            Comparison::Same => "same as",
            Comparison::SlightlyLower => "slightly lower than",
            Comparison::MuchLower => "much lower than",
        }
    }

    /// True when the candidate is usable as a replacement (at least
    /// "slightly lower" performance).
    pub fn is_acceptable(self) -> bool {
        !matches!(self, Comparison::MuchLower)
    }
}

/// Classification thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tolerance {
    /// Relative half-width of the "same as" band (e.g. 0.10 = ±10 %).
    pub same_band: f64,
    /// Slowdown factor up to which a candidate is only "slightly lower".
    pub slight_factor: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance {
            same_band: 0.10,
            slight_factor: 1.6,
        }
    }
}

/// Classify a candidate time against a reference time.
pub fn classify(candidate: SimDuration, reference: SimDuration, tol: Tolerance) -> Comparison {
    let c = candidate.as_secs_f64();
    let r = reference.as_secs_f64();
    if r <= 0.0 {
        return Comparison::Same;
    }
    let ratio = c / r;
    if ratio < 1.0 - tol.same_band {
        Comparison::Higher
    } else if ratio <= 1.0 + tol.same_band {
        Comparison::Same
    } else if ratio <= tol.slight_factor {
        Comparison::SlightlyLower
    } else {
        Comparison::MuchLower
    }
}

/// One row of the equivalence table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EquivalenceRow {
    /// Candidate peer count.
    pub candidate_procs: usize,
    /// Candidate platform label.
    pub candidate_label: String,
    /// Table-I style comparison.
    pub comparison: Comparison,
    /// Reference node count.
    pub reference_procs: usize,
    /// Reference platform label.
    pub reference_label: String,
    /// Candidate execution time.
    pub candidate_time: SimDuration,
    /// Reference execution time.
    pub reference_time: SimDuration,
}

impl fmt::Display for EquivalenceRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>4} {:<8} {:<20} {:>4} {:<8}",
            self.candidate_procs,
            self.candidate_label,
            self.comparison.phrase(),
            self.reference_procs,
            self.reference_label
        )
    }
}

/// The full equivalence table.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EquivalenceTable {
    /// Rows, in the order they were derived.
    pub rows: Vec<EquivalenceRow>,
}

impl EquivalenceTable {
    /// Find, for a single reference point, the smallest candidate
    /// configuration with acceptable (non-"much lower") performance. Prefers
    /// the smallest peer count; among equal counts the classification closest
    /// to "same" wins by construction of the scan.
    pub fn equivalent_for(
        reference: &PerfCurve,
        reference_procs: usize,
        candidate: &PerfCurve,
        tol: Tolerance,
    ) -> Option<EquivalenceRow> {
        let ref_point = reference.at(reference_procs)?;
        for cand in &candidate.points {
            let cmp = classify(cand.time, ref_point.time, tol);
            if cmp.is_acceptable() {
                return Some(EquivalenceRow {
                    candidate_procs: cand.nprocs,
                    candidate_label: candidate.label.clone(),
                    comparison: cmp,
                    reference_procs,
                    reference_label: reference.label.clone(),
                    candidate_time: cand.time,
                    reference_time: ref_point.time,
                });
            }
        }
        None
    }

    /// Build the table for every reference size and every candidate curve.
    pub fn build(
        reference: &PerfCurve,
        reference_sizes: &[usize],
        candidates: &[&PerfCurve],
        tol: Tolerance,
    ) -> EquivalenceTable {
        let mut rows = Vec::new();
        for candidate in candidates {
            for &n in reference_sizes {
                if let Some(row) = Self::equivalent_for(reference, n, candidate, tol) {
                    rows.push(row);
                }
            }
        }
        EquivalenceTable { rows }
    }

    /// Render as an aligned text table with the paper's column layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Processes  topology   Performance (than)    Processes  topology\n");
        for row in &self.rows {
            out.push_str(&format!(
                "{:>9}  {:<9}  {:<20}  {:>9}  {:<9}\n",
                row.candidate_procs,
                row.candidate_label,
                row.comparison.phrase(),
                row.reference_procs,
                row.reference_label
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimDuration {
        SimDuration::from_secs_f64(s)
    }

    #[test]
    fn classification_bands() {
        let tol = Tolerance::default();
        assert_eq!(classify(secs(8.0), secs(10.0), tol), Comparison::Higher);
        assert_eq!(classify(secs(10.5), secs(10.0), tol), Comparison::Same);
        assert_eq!(classify(secs(9.5), secs(10.0), tol), Comparison::Same);
        assert_eq!(
            classify(secs(13.0), secs(10.0), tol),
            Comparison::SlightlyLower
        );
        assert_eq!(classify(secs(25.0), secs(10.0), tol), Comparison::MuchLower);
        assert!(Comparison::SlightlyLower.is_acceptable());
        assert!(!Comparison::MuchLower.is_acceptable());
    }

    #[test]
    fn curve_lookup_and_best() {
        let c = PerfCurve::from_secs("LAN", &[(8, 12.0), (2, 45.0), (4, 23.0)]);
        assert_eq!(c.points[0].nprocs, 2, "points are sorted");
        assert_eq!(c.at(4).unwrap().time, secs(23.0));
        assert!(c.at(16).is_none());
        assert_eq!(c.best().unwrap().nprocs, 8);
    }

    #[test]
    fn equivalent_picks_the_smallest_acceptable_configuration() {
        let grid = PerfCurve::from_secs("Grid5000", &[(2, 42.0), (4, 21.5), (8, 11.0)]);
        let lan = PerfCurve::from_secs(
            "LAN",
            &[(2, 48.0), (4, 25.0), (8, 15.0), (16, 12.0), (32, 11.5)],
        );
        let tol = Tolerance::default();
        let row = EquivalenceTable::equivalent_for(&grid, 2, &lan, tol).unwrap();
        assert_eq!(row.candidate_procs, 2);
        assert_eq!(row.comparison, Comparison::SlightlyLower);
        let row8 = EquivalenceTable::equivalent_for(&grid, 8, &lan, tol).unwrap();
        assert_eq!(
            row8.candidate_procs, 8,
            "15 s is within the 'slightly lower' band of the 11 s reference"
        );
        assert_eq!(row8.comparison, Comparison::SlightlyLower);
        // Tightening the slight-factor pushes the equivalent to 16 LAN peers.
        let strict = Tolerance {
            same_band: 0.10,
            slight_factor: 1.2,
        };
        let row8s = EquivalenceTable::equivalent_for(&grid, 8, &lan, strict).unwrap();
        assert_eq!(row8s.candidate_procs, 16);
    }

    #[test]
    fn hopeless_candidates_produce_no_row() {
        let grid = PerfCurve::from_secs("Grid5000", &[(8, 5.0)]);
        let xdsl = PerfCurve::from_secs("xDSL", &[(2, 100.0), (32, 60.0)]);
        assert!(EquivalenceTable::equivalent_for(&grid, 8, &xdsl, Tolerance::default()).is_none());
        // A missing reference size also yields no row.
        assert!(EquivalenceTable::equivalent_for(&grid, 2, &xdsl, Tolerance::default()).is_none());
    }

    #[test]
    fn build_and_render_the_full_table() {
        let grid = PerfCurve::from_secs("Grid5000", &[(2, 42.0), (4, 21.5)]);
        let lan = PerfCurve::from_secs("LAN", &[(2, 46.0), (4, 25.0), (8, 20.5)]);
        let xdsl = PerfCurve::from_secs("xDSL", &[(4, 55.0), (8, 58.0)]);
        let table = EquivalenceTable::build(&grid, &[2, 4], &[&xdsl, &lan], Tolerance::default());
        assert!(table.rows.len() >= 3);
        let rendered = table.render();
        assert!(rendered.contains("Grid5000"));
        assert!(rendered.contains("slightly lower than"));
        // The xDSL row for the 2-node reference must exist (4 xDSL ≲ 2 Grid5000).
        let xdsl_row = table
            .rows
            .iter()
            .find(|r| r.candidate_label == "xDSL" && r.reference_procs == 2)
            .expect("xDSL equivalent of the 2-node cluster");
        assert_eq!(xdsl_row.candidate_procs, 4);
    }
}
