//! The program intermediate representation.
//!
//! dPerf originally obtains an abstract syntax tree from the ROSE compiler and
//! uses it "to identify key elements such as statements, basic blocks and
//! calls for communication" (paper §III-D.1). The IR in this module is the
//! Rust-native stand-in for that AST: it represents a single-program,
//! multiple-data computation as a tree of statements over symbolic *work
//! expressions*, with explicit communication calls.
//!
//! * [`Expr`] — symbolic arithmetic over named parameters (`N`, `iterations`,
//!   `my_rows`, …) evaluated against a [`ParamEnv`].
//! * [`ComputeBlock`] — a basic block with a symbolic flop count and the
//!   arrays it reads/writes (for the dependence analysis).
//! * [`CommCall`] / [`Collective`] — point-to-point and collective
//!   communication calls (the P2PSAP call sites the static analysis detects).
//! * [`Stmt`] — compute, communication, counted loops and guarded branches.
//! * [`Program`] / [`ProgramBuilder`] — a named program with default
//!   parameters and a convenient builder.

mod expr;
mod program;
mod stmt;

pub use expr::{Expr, ParamEnv};
pub use program::{Program, ProgramBuilder};
pub use stmt::{
    Collective, CollectiveKind, CommCall, CommKind, ComputeBlock, Guard, RankContext, Stmt, Target,
};
