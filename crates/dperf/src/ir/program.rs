//! Programs and the builder used to describe applications.

use super::expr::{Expr, ParamEnv};
use super::stmt::{
    Collective, CollectiveKind, CommCall, CommKind, ComputeBlock, Guard, Stmt, Target,
};
use serde::{Deserialize, Serialize};

/// A complete SPMD program description: one body executed by every rank, with
/// per-rank behaviour expressed through guards, targets and rank-dependent
/// parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Application name (appears in trace files and reports).
    pub name: String,
    /// Default parameter bindings; callers overlay problem- and rank-specific
    /// bindings on top.
    pub defaults: ParamEnv,
    /// The statements every rank executes.
    pub body: Vec<Stmt>,
}

impl Program {
    /// Start building a program.
    pub fn builder(name: impl Into<String>) -> ProgramBuilder {
        ProgramBuilder {
            name: name.into(),
            defaults: ParamEnv::new(),
            root: BlockBuilder::new(),
        }
    }

    /// Total number of statements in the program tree.
    pub fn stmt_count(&self) -> usize {
        self.body.iter().map(Stmt::size).sum()
    }
}

/// Builds a list of statements; nested bodies (loops, branches) use nested
/// `BlockBuilder`s passed to closures.
#[derive(Debug, Default, Clone)]
pub struct BlockBuilder {
    stmts: Vec<Stmt>,
}

impl BlockBuilder {
    /// An empty block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a compute block.
    pub fn compute(mut self, block: ComputeBlock) -> Self {
        self.stmts.push(Stmt::Compute(block));
        self
    }

    /// Append an asynchronous send.
    pub fn send(mut self, peer: Target, bytes: Expr, tag: u32) -> Self {
        self.stmts.push(Stmt::Comm(CommCall {
            kind: CommKind::Send,
            peer,
            bytes,
            tag,
        }));
        self
    }

    /// Append a blocking receive.
    pub fn recv(mut self, peer: Target, tag: u32) -> Self {
        self.stmts.push(Stmt::Comm(CommCall {
            kind: CommKind::Recv,
            peer,
            bytes: Expr::c(0.0),
            tag,
        }));
        self
    }

    /// Append a halo exchange (send then receive with the same peer and tag).
    pub fn sendrecv(mut self, peer: Target, bytes: Expr, tag: u32) -> Self {
        self.stmts.push(Stmt::Comm(CommCall {
            kind: CommKind::SendRecv,
            peer,
            bytes,
            tag,
        }));
        self
    }

    /// Append a collective.
    pub fn collective(mut self, kind: CollectiveKind, bytes: Expr, tag: u32) -> Self {
        self.stmts
            .push(Stmt::Collective(Collective { kind, bytes, tag }));
        self
    }

    /// Append a counted loop whose body is built by `f`.
    pub fn loop_(mut self, count: Expr, f: impl FnOnce(BlockBuilder) -> BlockBuilder) -> Self {
        let body = f(BlockBuilder::new()).stmts;
        self.stmts.push(Stmt::Loop { count, body });
        self
    }

    /// Append a guarded branch whose arms are built by `then_f` / `else_f`.
    pub fn if_(
        mut self,
        guard: Guard,
        then_f: impl FnOnce(BlockBuilder) -> BlockBuilder,
        else_f: impl FnOnce(BlockBuilder) -> BlockBuilder,
    ) -> Self {
        let then_branch = then_f(BlockBuilder::new()).stmts;
        let else_branch = else_f(BlockBuilder::new()).stmts;
        self.stmts.push(Stmt::If {
            guard,
            then_branch,
            else_branch,
        });
        self
    }

    /// The accumulated statements.
    pub fn into_stmts(self) -> Vec<Stmt> {
        self.stmts
    }
}

/// Builder for a [`Program`].
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    name: String,
    defaults: ParamEnv,
    root: BlockBuilder,
}

impl ProgramBuilder {
    /// Declare a parameter with its default value.
    pub fn param(mut self, name: impl Into<String>, default: f64) -> Self {
        self.defaults.set(name, default);
        self
    }

    /// Append a compute block to the program body.
    pub fn compute(mut self, block: ComputeBlock) -> Self {
        self.root = self.root.compute(block);
        self
    }

    /// Append a send.
    pub fn send(mut self, peer: Target, bytes: Expr, tag: u32) -> Self {
        self.root = self.root.send(peer, bytes, tag);
        self
    }

    /// Append a receive.
    pub fn recv(mut self, peer: Target, tag: u32) -> Self {
        self.root = self.root.recv(peer, tag);
        self
    }

    /// Append a halo exchange.
    pub fn sendrecv(mut self, peer: Target, bytes: Expr, tag: u32) -> Self {
        self.root = self.root.sendrecv(peer, bytes, tag);
        self
    }

    /// Append a collective.
    pub fn collective(mut self, kind: CollectiveKind, bytes: Expr, tag: u32) -> Self {
        self.root = self.root.collective(kind, bytes, tag);
        self
    }

    /// Append a counted loop.
    pub fn loop_(mut self, count: Expr, f: impl FnOnce(BlockBuilder) -> BlockBuilder) -> Self {
        self.root = self.root.loop_(count, f);
        self
    }

    /// Append a guarded branch.
    pub fn if_(
        mut self,
        guard: Guard,
        then_f: impl FnOnce(BlockBuilder) -> BlockBuilder,
        else_f: impl FnOnce(BlockBuilder) -> BlockBuilder,
    ) -> Self {
        self.root = self.root.if_(guard, then_f, else_f);
        self
    }

    /// Finish building.
    pub fn build(self) -> Program {
        Program {
            name: self.name,
            defaults: self.defaults,
            body: self.root.into_stmts(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature iterative stencil used across the dperf unit tests.
    pub fn tiny_stencil() -> Program {
        Program::builder("tiny-stencil")
            .param("N", 64.0)
            .param("iters", 4.0)
            .loop_(Expr::p("iters"), |b| {
                b.compute(
                    ComputeBlock::new(
                        "sweep",
                        Expr::c(5.0).mul(Expr::p("N")).mul(Expr::p("my_rows")),
                    )
                    .reading(&["u_old"])
                    .writing(&["u_new"]),
                )
                .if_(
                    Guard::HasUpNeighbor,
                    |t| t.sendrecv(Target::RelativeRank(-1), Expr::c(8.0).mul(Expr::p("N")), 1),
                    |e| e,
                )
                .if_(
                    Guard::HasDownNeighbor,
                    |t| t.sendrecv(Target::RelativeRank(1), Expr::c(8.0).mul(Expr::p("N")), 2),
                    |e| e,
                )
                .collective(CollectiveKind::AllReduce, Expr::c(8.0), 3)
            })
            .build()
    }

    #[test]
    fn builder_produces_the_expected_shape() {
        let p = tiny_stencil();
        assert_eq!(p.name, "tiny-stencil");
        assert_eq!(p.defaults.get("N"), Some(64.0));
        assert_eq!(p.body.len(), 1, "a single top-level loop");
        match &p.body[0] {
            Stmt::Loop { count, body } => {
                assert_eq!(count, &Expr::p("iters"));
                assert_eq!(body.len(), 4, "sweep, two guarded exchanges, reduction");
            }
            other => panic!("expected a loop, got {other:?}"),
        }
        assert_eq!(p.stmt_count(), 1 + 4 + 2);
    }

    #[test]
    fn programs_serialize_round_trip() {
        let p = tiny_stencil();
        let json = serde_json::to_string(&p).unwrap();
        let back: Program = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn nested_builders_nest_correctly() {
        let p = Program::builder("nest")
            .loop_(Expr::c(2.0), |b| {
                b.loop_(Expr::c(3.0), |inner| {
                    inner.compute(ComputeBlock::new("core", Expr::c(1.0)))
                })
            })
            .build();
        assert_eq!(p.stmt_count(), 3);
        match &p.body[0] {
            Stmt::Loop { body, .. } => match &body[0] {
                Stmt::Loop { body: inner, .. } => assert_eq!(inner.len(), 1),
                other => panic!("expected inner loop, got {other:?}"),
            },
            other => panic!("expected outer loop, got {other:?}"),
        }
    }
}
