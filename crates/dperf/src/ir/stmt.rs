//! Statements: compute blocks, communication calls, loops and branches.

use super::expr::{Expr, ParamEnv};
use serde::{Deserialize, Serialize};

/// A basic block of computation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComputeBlock {
    /// Name of the block (e.g. `"relaxation_sweep"`); the measured block
    /// bencher looks registered kernels up by this name.
    pub name: String,
    /// Symbolic amount of work, in floating-point operations.
    pub flops: Expr,
    /// Named arrays/variables this block reads (for the dependence analysis).
    pub reads: Vec<String>,
    /// Named arrays/variables this block writes.
    pub writes: Vec<String>,
}

impl ComputeBlock {
    /// Build a block with no declared reads/writes.
    pub fn new(name: impl Into<String>, flops: Expr) -> Self {
        ComputeBlock {
            name: name.into(),
            flops,
            reads: Vec::new(),
            writes: Vec::new(),
        }
    }

    /// Declare the arrays this block reads.
    pub fn reading(mut self, arrays: &[&str]) -> Self {
        self.reads = arrays.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Declare the arrays this block writes.
    pub fn writing(mut self, arrays: &[&str]) -> Self {
        self.writes = arrays.iter().map(|s| s.to_string()).collect();
        self
    }
}

/// Destination / source of a point-to-point communication call, resolved per
/// rank at trace-generation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Target {
    /// `rank + offset` (e.g. `-1` for the "up" neighbour in a 1-D
    /// decomposition). Out-of-range targets make the call a no-op, which is
    /// how boundary ranks skip their missing neighbour.
    RelativeRank(i64),
    /// An absolute rank.
    AbsoluteRank(usize),
    /// The computation's coordinator (rank 0 in this reproduction).
    Coordinator,
}

impl Target {
    /// Resolve to a concrete rank, or `None` when out of range.
    pub fn resolve(self, ctx: RankContext) -> Option<usize> {
        match self {
            Target::RelativeRank(offset) => {
                let target = ctx.rank as i64 + offset;
                if target < 0 || target >= ctx.nprocs as i64 {
                    None
                } else {
                    Some(target as usize)
                }
            }
            Target::AbsoluteRank(r) => {
                if r < ctx.nprocs {
                    Some(r)
                } else {
                    None
                }
            }
            Target::Coordinator => Some(0),
        }
    }
}

/// The rank executing a statement and the total process count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankContext {
    /// This process's rank.
    pub rank: usize,
    /// Total number of processes.
    pub nprocs: usize,
}

impl RankContext {
    /// Is this rank the coordinator?
    pub fn is_coordinator(self) -> bool {
        self.rank == 0
    }
}

/// Kind of a point-to-point communication call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommKind {
    /// Asynchronous send.
    Send,
    /// Blocking receive.
    Recv,
    /// Send then wait for the symmetric message (halo exchange).
    SendRecv,
}

/// A point-to-point communication call site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommCall {
    /// Send, receive, or exchange.
    pub kind: CommKind,
    /// The other endpoint.
    pub peer: Target,
    /// Payload size in bytes (symbolic).
    pub bytes: Expr,
    /// Message tag; matching is by (source, tag).
    pub tag: u32,
}

/// Kind of a collective operation. Collectives are expanded at trace
/// generation into the point-to-point pattern P2PDC actually uses (everything
/// goes through the coordinator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CollectiveKind {
    /// Every rank sends to the coordinator.
    Gather,
    /// The coordinator sends to every rank.
    Broadcast,
    /// Gather followed by broadcast (e.g. the residual-norm convergence test);
    /// acts as a synchronisation barrier.
    AllReduce,
}

/// A collective call site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Collective {
    /// Which collective.
    pub kind: CollectiveKind,
    /// Per-message payload size in bytes (symbolic).
    pub bytes: Expr,
    /// Base message tag.
    pub tag: u32,
}

/// Branch guards, evaluated per rank.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Guard {
    /// True on the coordinator (rank 0).
    IsCoordinator,
    /// True on every rank except the coordinator.
    IsWorker,
    /// True if `rank > 0` (there is an "up" neighbour in a 1-D decomposition).
    HasUpNeighbor,
    /// True if `rank < nprocs - 1` (there is a "down" neighbour).
    HasDownNeighbor,
    /// True if the expression evaluates to a non-zero value.
    NonZero(Expr),
}

impl Guard {
    /// Evaluate the guard for a rank under an environment.
    pub fn eval(&self, ctx: RankContext, env: &ParamEnv) -> bool {
        match self {
            Guard::IsCoordinator => ctx.is_coordinator(),
            Guard::IsWorker => !ctx.is_coordinator(),
            Guard::HasUpNeighbor => ctx.rank > 0,
            Guard::HasDownNeighbor => ctx.rank + 1 < ctx.nprocs,
            Guard::NonZero(e) => e.eval(env) != 0.0,
        }
    }
}

/// A statement of the program tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// A basic block of computation.
    Compute(ComputeBlock),
    /// A point-to-point communication call.
    Comm(CommCall),
    /// A collective communication call.
    Collective(Collective),
    /// A counted loop.
    Loop {
        /// Trip count (symbolic, evaluated per rank).
        count: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// A guarded branch.
    If {
        /// The guard.
        guard: Guard,
        /// Statements executed when the guard holds.
        then_branch: Vec<Stmt>,
        /// Statements executed otherwise.
        else_branch: Vec<Stmt>,
    },
}

impl Stmt {
    /// Convenience constructor for a compute statement.
    pub fn compute(block: ComputeBlock) -> Stmt {
        Stmt::Compute(block)
    }

    /// Number of statements in this subtree (the statement itself included).
    pub fn size(&self) -> usize {
        match self {
            Stmt::Compute(_) | Stmt::Comm(_) | Stmt::Collective(_) => 1,
            Stmt::Loop { body, .. } => 1 + body.iter().map(Stmt::size).sum::<usize>(),
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                1 + then_branch.iter().map(Stmt::size).sum::<usize>()
                    + else_branch.iter().map(Stmt::size).sum::<usize>()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(rank: usize, nprocs: usize) -> RankContext {
        RankContext { rank, nprocs }
    }

    #[test]
    fn relative_targets_resolve_and_clip() {
        assert_eq!(Target::RelativeRank(-1).resolve(ctx(0, 4)), None);
        assert_eq!(Target::RelativeRank(-1).resolve(ctx(2, 4)), Some(1));
        assert_eq!(Target::RelativeRank(1).resolve(ctx(3, 4)), None);
        assert_eq!(Target::RelativeRank(1).resolve(ctx(2, 4)), Some(3));
    }

    #[test]
    fn absolute_and_coordinator_targets() {
        assert_eq!(Target::AbsoluteRank(2).resolve(ctx(0, 4)), Some(2));
        assert_eq!(Target::AbsoluteRank(9).resolve(ctx(0, 4)), None);
        assert_eq!(Target::Coordinator.resolve(ctx(3, 4)), Some(0));
    }

    #[test]
    fn guards_follow_the_rank_context() {
        let env = ParamEnv::new().with("flag", 1.0);
        assert!(Guard::IsCoordinator.eval(ctx(0, 4), &env));
        assert!(!Guard::IsCoordinator.eval(ctx(1, 4), &env));
        assert!(Guard::IsWorker.eval(ctx(3, 4), &env));
        assert!(!Guard::HasUpNeighbor.eval(ctx(0, 4), &env));
        assert!(Guard::HasUpNeighbor.eval(ctx(1, 4), &env));
        assert!(Guard::HasDownNeighbor.eval(ctx(2, 4), &env));
        assert!(!Guard::HasDownNeighbor.eval(ctx(3, 4), &env));
        assert!(Guard::NonZero(Expr::p("flag")).eval(ctx(1, 4), &env));
        assert!(!Guard::NonZero(Expr::p("absent")).eval(ctx(1, 4), &env));
    }

    #[test]
    fn compute_block_builder_records_dependences() {
        let b = ComputeBlock::new("sweep", Expr::c(100.0))
            .reading(&["u_old", "psi"])
            .writing(&["u_new"]);
        assert_eq!(b.reads, vec!["u_old", "psi"]);
        assert_eq!(b.writes, vec!["u_new"]);
    }

    #[test]
    fn stmt_size_counts_nested_statements() {
        let inner = Stmt::Compute(ComputeBlock::new("a", Expr::c(1.0)));
        let loop_stmt = Stmt::Loop {
            count: Expr::c(10.0),
            body: vec![inner.clone(), inner.clone()],
        };
        let if_stmt = Stmt::If {
            guard: Guard::IsCoordinator,
            then_branch: vec![inner.clone()],
            else_branch: vec![],
        };
        assert_eq!(loop_stmt.size(), 3);
        assert_eq!(if_stmt.size(), 2);
    }
}
