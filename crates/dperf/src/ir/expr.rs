//! Symbolic work expressions and parameter environments.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A symbolic arithmetic expression over named parameters.
///
/// Work expressions let one program description cover every problem size,
/// process count and rank: `5 * N * my_rows` evaluates differently for every
/// rank once the per-rank environment binds `my_rows`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A literal constant.
    Const(f64),
    /// A named parameter, looked up in the [`ParamEnv`] at evaluation time.
    Param(String),
    /// Sum of two expressions.
    Add(Box<Expr>, Box<Expr>),
    /// Difference of two expressions.
    Sub(Box<Expr>, Box<Expr>),
    /// Product of two expressions.
    Mul(Box<Expr>, Box<Expr>),
    /// Quotient of two expressions (evaluates to 0 if the divisor is 0).
    Div(Box<Expr>, Box<Expr>),
    /// Larger of two expressions.
    Max(Box<Expr>, Box<Expr>),
    /// Ceiling of an expression.
    Ceil(Box<Expr>),
}

// `add`/`sub`/`mul`/`div` are AST constructors, not arithmetic on `Expr`
// values; implementing the `std::ops` traits would wrongly suggest the
// latter.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// A constant.
    pub fn c(v: f64) -> Expr {
        Expr::Const(v)
    }

    /// A parameter reference.
    pub fn p(name: impl Into<String>) -> Expr {
        Expr::Param(name.into())
    }

    /// `self + rhs`.
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }

    /// `self - rhs`.
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }

    /// `self * rhs`.
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }

    /// `self / rhs`.
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::Div(Box::new(self), Box::new(rhs))
    }

    /// `max(self, rhs)`.
    pub fn max(self, rhs: Expr) -> Expr {
        Expr::Max(Box::new(self), Box::new(rhs))
    }

    /// `ceil(self)`.
    pub fn ceil(self) -> Expr {
        Expr::Ceil(Box::new(self))
    }

    /// Evaluate against an environment. Unknown parameters evaluate to 0 and
    /// are reported through [`Expr::free_params`] instead of panicking, so a
    /// static analysis can inspect partially bound programs.
    pub fn eval(&self, env: &ParamEnv) -> f64 {
        match self {
            Expr::Const(v) => *v,
            Expr::Param(name) => env.get(name).unwrap_or(0.0),
            Expr::Add(a, b) => a.eval(env) + b.eval(env),
            Expr::Sub(a, b) => a.eval(env) - b.eval(env),
            Expr::Mul(a, b) => a.eval(env) * b.eval(env),
            Expr::Div(a, b) => {
                let d = b.eval(env);
                if d == 0.0 {
                    0.0
                } else {
                    a.eval(env) / d
                }
            }
            Expr::Max(a, b) => a.eval(env).max(b.eval(env)),
            Expr::Ceil(a) => a.eval(env).ceil(),
        }
    }

    /// Evaluate and round to a non-negative integer (for loop counts, byte
    /// counts and similar).
    pub fn eval_count(&self, env: &ParamEnv) -> u64 {
        self.eval(env).max(0.0).round() as u64
    }

    /// Collect the names of all parameters appearing in the expression.
    pub fn free_params(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_params(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_params(&self, out: &mut Vec<String>) {
        match self {
            Expr::Const(_) => {}
            Expr::Param(name) => out.push(name.clone()),
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Max(a, b) => {
                a.collect_params(out);
                b.collect_params(out);
            }
            Expr::Ceil(a) => a.collect_params(out),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Param(name) => write!(f, "{name}"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::Div(a, b) => write!(f, "({a} / {b})"),
            Expr::Max(a, b) => write!(f, "max({a}, {b})"),
            Expr::Ceil(a) => write!(f, "ceil({a})"),
        }
    }
}

/// A set of parameter bindings (`N = 1200`, `iterations = 900`, …).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ParamEnv {
    values: BTreeMap<String, f64>,
}

impl ParamEnv {
    /// An empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind a parameter, returning `self` for chaining.
    pub fn with(mut self, name: impl Into<String>, value: f64) -> Self {
        self.values.insert(name.into(), value);
        self
    }

    /// Bind a parameter in place.
    pub fn set(&mut self, name: impl Into<String>, value: f64) {
        self.values.insert(name.into(), value);
    }

    /// Look a parameter up.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.values.get(name).copied()
    }

    /// Merge `other` over `self` (bindings in `other` win).
    pub fn overlaid_with(&self, other: &ParamEnv) -> ParamEnv {
        let mut merged = self.clone();
        for (k, v) in &other.values {
            merged.values.insert(k.clone(), *v);
        }
        merged
    }

    /// Iterate over the bindings in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no parameter is bound.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_evaluates() {
        let env = ParamEnv::new().with("N", 100.0).with("rows", 25.0);
        let work = Expr::c(5.0).mul(Expr::p("N")).mul(Expr::p("rows"));
        assert_eq!(work.eval(&env), 12_500.0);
        let per_proc = Expr::p("N").div(Expr::c(4.0)).add(Expr::c(1.0));
        assert_eq!(per_proc.eval(&env), 26.0);
        assert_eq!(Expr::p("N").sub(Expr::c(1.0)).eval(&env), 99.0);
        assert_eq!(Expr::p("N").max(Expr::c(200.0)).eval(&env), 200.0);
        assert_eq!(Expr::p("N").div(Expr::c(3.0)).ceil().eval(&env), 34.0);
    }

    #[test]
    fn division_by_zero_is_zero_not_a_panic() {
        let env = ParamEnv::new();
        assert_eq!(Expr::c(5.0).div(Expr::c(0.0)).eval(&env), 0.0);
    }

    #[test]
    fn unknown_params_evaluate_to_zero_and_are_listed() {
        let env = ParamEnv::new().with("N", 10.0);
        let e = Expr::p("N").mul(Expr::p("missing"));
        assert_eq!(e.eval(&env), 0.0);
        assert_eq!(
            e.free_params(),
            vec!["N".to_string(), "missing".to_string()]
        );
    }

    #[test]
    fn eval_count_rounds_and_clamps() {
        let env = ParamEnv::new().with("x", 2.6);
        assert_eq!(Expr::p("x").eval_count(&env), 3);
        assert_eq!(Expr::c(-4.0).eval_count(&env), 0);
    }

    #[test]
    fn env_overlay_prefers_the_overlay() {
        let base = ParamEnv::new().with("N", 100.0).with("iters", 10.0);
        let rank = ParamEnv::new().with("N", 50.0).with("my_rows", 13.0);
        let merged = base.overlaid_with(&rank);
        assert_eq!(merged.get("N"), Some(50.0));
        assert_eq!(merged.get("iters"), Some(10.0));
        assert_eq!(merged.get("my_rows"), Some(13.0));
        assert_eq!(merged.len(), 3);
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::c(5.0).mul(Expr::p("N")).add(Expr::p("k"));
        assert_eq!(e.to_string(), "((5 * N) + k)");
    }
}
