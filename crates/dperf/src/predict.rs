//! The prediction step: trace-based simulation.
//!
//! "The trace files obtained earlier are given at input to Simgrid, but not
//! before configuring the distributed network to be simulated. … With Simgrid
//! we calculate the necessary time for communicating over the network. To this
//! time, Simgrid adds the computation time already present in the trace file.
//! The output is the total predicted time `t_predicted` for the input
//! application." (§III-D.2)
//!
//! [`predict_traces`] is exactly that: it maps ranks to hosts of a platform,
//! derives the P2PSAP per-message costs from the network context and the
//! application scheme, and replays the traces with `netsim`.

use crate::bench_block::ModeledBencher;
use crate::compiler::OptLevel;
use crate::ir::{ParamEnv, Program};
use crate::machine::MachineModel;
use crate::trace::TraceSet;
use crate::tracegen::{generate_traces, RankEnv};
use netsim::{replay, ReplayConfig, SharingMode, Topology};
use p2p_common::{HostId, SimDuration, SimTime};
use p2psap::{AdaptationController, IterativeScheme, NetworkContext};

/// Result of a prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// The predicted total execution time (`t_predicted`).
    pub total: SimDuration,
    /// Largest per-rank CPU-busy time (compute blocks + protocol processing).
    pub max_compute: SimDuration,
    /// Largest per-rank time spent blocked on receives.
    pub max_wait: SimDuration,
    /// Messages exchanged.
    pub messages: u64,
    /// Per-rank completion times.
    pub finish_times: Vec<SimTime>,
}

impl Prediction {
    /// Fraction of the critical path spent communicating (0 when the run is
    /// entirely compute-bound).
    pub fn comm_fraction(&self) -> f64 {
        let total = self.total.as_secs_f64();
        if total <= 0.0 {
            return 0.0;
        }
        (total - self.max_compute.as_secs_f64()).max(0.0) / total
    }
}

/// Replay `traces` on `topology`, mapping rank `i` to `hosts[i]`.
///
/// The P2PSAP channel configuration (and therefore the per-message protocol
/// cost applied during replay) is chosen by the adaptation controller from
/// `scheme` and the network context of the participating hosts.
pub fn predict_traces(
    traces: &TraceSet,
    topology: &Topology,
    hosts: &[HostId],
    scheme: IterativeScheme,
    sharing: SharingMode,
) -> Prediction {
    assert_eq!(
        hosts.len(),
        traces.nprocs,
        "need one host per traced process"
    );
    let mut platform = topology.platform.clone();
    // Representative context: the first pair of distinct hosts (a computation
    // placed on a single host has no network context to speak of).
    let context = if hosts.len() >= 2 {
        NetworkContext::classify(&mut platform, hosts[0], hosts[1])
    } else {
        NetworkContext::IntraCluster
    };
    let config = AdaptationController::decide(scheme, context);
    let replay_cfg = ReplayConfig {
        sharing,
        protocol: config.protocol_costs(),
        ..ReplayConfig::default()
    };
    let scripts = traces.to_replay_scripts();
    let result = replay(platform, hosts, &scripts, &replay_cfg);
    Prediction {
        total: result.makespan,
        max_compute: result
            .compute_time
            .iter()
            .copied()
            .max()
            .unwrap_or(SimDuration::ZERO),
        max_wait: result
            .wait_time
            .iter()
            .copied()
            .max()
            .unwrap_or(SimDuration::ZERO),
        messages: result.messages_sent,
        finish_times: result.finish_times,
    }
}

/// End-to-end convenience wrapper: static analysis inputs in, prediction out.
#[derive(Clone)]
pub struct Predictor<'p> {
    /// The analysed program.
    pub program: &'p Program,
    /// Machine model of the nodes the traces are "measured" on.
    pub machine: MachineModel,
    /// Compiler optimisation level.
    pub opt: OptLevel,
    /// Iterative scheme announced to P2PSAP.
    pub scheme: IterativeScheme,
    /// Bandwidth-sharing model used during the replay.
    pub sharing: SharingMode,
}

impl<'p> Predictor<'p> {
    /// A predictor with the paper's defaults: Bordeplage machine model,
    /// synchronous scheme, bottleneck (SimGrid-analytic) sharing.
    pub fn new(program: &'p Program, opt: OptLevel) -> Self {
        Predictor {
            program,
            machine: MachineModel::xeon_em64t_3ghz(),
            opt,
            scheme: IterativeScheme::Synchronous,
            sharing: SharingMode::Bottleneck,
        }
    }

    /// Generate the trace set for `nprocs` ranks (the block-benchmarking +
    /// instrumented-run stage).
    pub fn traces(&self, env: &ParamEnv, nprocs: usize, rank_env: Option<RankEnv<'_>>) -> TraceSet {
        let bencher = ModeledBencher::new(self.machine.clone(), self.opt);
        generate_traces(
            self.program,
            env,
            nprocs,
            &bencher,
            rank_env,
            self.opt.label(),
        )
    }

    /// Full pipeline: traces + replay on `topology` over the given hosts.
    pub fn predict(
        &self,
        env: &ParamEnv,
        topology: &Topology,
        hosts: &[HostId],
        rank_env: Option<RankEnv<'_>>,
    ) -> Prediction {
        let traces = self.traces(env, hosts.len(), rank_env);
        predict_traces(&traces, topology, hosts, self.scheme, self.sharing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{CollectiveKind, ComputeBlock, Expr, Guard, Target};
    use netsim::{cluster_bordeplage, daisy_xdsl, HostSpec, PlacementPolicy};

    fn stencil(iters: f64) -> Program {
        Program::builder("stencil")
            .param("N", 2000.0)
            .param("iters", iters)
            .loop_(Expr::p("iters"), |b| {
                b.compute(ComputeBlock::new(
                    "sweep",
                    Expr::c(5.0).mul(Expr::p("N")).mul(Expr::p("my_rows")),
                ))
                .if_(
                    Guard::HasUpNeighbor,
                    |t| t.sendrecv(Target::RelativeRank(-1), Expr::c(8.0).mul(Expr::p("N")), 7),
                    |e| e,
                )
                .if_(
                    Guard::HasDownNeighbor,
                    |t| t.sendrecv(Target::RelativeRank(1), Expr::c(8.0).mul(Expr::p("N")), 7),
                    |e| e,
                )
                .collective(CollectiveKind::AllReduce, Expr::c(8.0), 9)
            })
            .build()
    }

    fn rows(rank: usize, nprocs: usize, env: &ParamEnv) -> ParamEnv {
        let n = env.get("N").unwrap_or(0.0) as usize;
        let base = n / nprocs;
        let extra = usize::from(rank < n % nprocs);
        ParamEnv::new().with("my_rows", (base + extra) as f64)
    }

    #[test]
    fn prediction_exceeds_pure_compute_time_but_not_absurdly() {
        let p = stencil(50.0);
        let predictor = Predictor::new(&p, OptLevel::O3);
        let topo = cluster_bordeplage(4, HostSpec::default());
        let traces = predictor.traces(&ParamEnv::new(), 4, Some(&rows));
        let pred = predict_traces(
            &traces,
            &topo,
            &topo.hosts,
            IterativeScheme::Synchronous,
            SharingMode::Bottleneck,
        );
        let compute_floor = traces.max_compute_time();
        assert!(pred.total >= compute_floor);
        assert!(pred.total.as_secs_f64() < compute_floor.as_secs_f64() * 3.0 + 1.0);
        assert!(pred.comm_fraction() > 0.0 && pred.comm_fraction() < 1.0);
    }

    #[test]
    fn more_peers_means_less_time_on_a_cluster() {
        let p = stencil(50.0);
        let predictor = Predictor::new(&p, OptLevel::O0);
        let topo = cluster_bordeplage(16, HostSpec::default());
        let t2 = predictor
            .predict(&ParamEnv::new(), &topo, &topo.hosts[..2], Some(&rows))
            .total;
        let t8 = predictor
            .predict(&ParamEnv::new(), &topo, &topo.hosts[..8], Some(&rows))
            .total;
        assert!(
            t8 < t2,
            "scaling must help on a fast network ({t2} -> {t8})"
        );
    }

    #[test]
    fn xdsl_predictions_are_slower_than_cluster_predictions() {
        let p = stencil(30.0);
        let predictor = Predictor::new(&p, OptLevel::O3);
        let cluster = cluster_bordeplage(4, HostSpec::default());
        let xdsl = daisy_xdsl(64, HostSpec::default(), 42);
        let env = ParamEnv::new();
        let t_cluster = predictor
            .predict(&env, &cluster, &cluster.hosts, Some(&rows))
            .total;
        let xdsl_hosts = xdsl.pick_hosts(4, PlacementPolicy::Spread);
        let t_xdsl = predictor
            .predict(&env, &xdsl, &xdsl_hosts, Some(&rows))
            .total;
        assert!(
            t_xdsl > t_cluster * 2u64,
            "xDSL ({t_xdsl}) must be far slower than the cluster ({t_cluster})"
        );
    }

    #[test]
    fn single_host_prediction_equals_compute_time() {
        let p = stencil(10.0);
        let predictor = Predictor::new(&p, OptLevel::O3);
        let topo = cluster_bordeplage(1, HostSpec::default());
        let traces = predictor.traces(&ParamEnv::new(), 1, Some(&rows));
        let pred = predict_traces(
            &traces,
            &topo,
            &topo.hosts,
            IterativeScheme::Synchronous,
            SharingMode::Bottleneck,
        );
        assert_eq!(pred.messages, 0);
        assert_eq!(pred.total, traces.max_compute_time());
        assert_eq!(pred.comm_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "one host per traced process")]
    fn mismatched_host_count_is_rejected() {
        let p = stencil(5.0);
        let predictor = Predictor::new(&p, OptLevel::O3);
        let topo = cluster_bordeplage(4, HostSpec::default());
        let traces = predictor.traces(&ParamEnv::new(), 4, Some(&rows));
        predict_traces(
            &traces,
            &topo,
            &topo.hosts[..2],
            IterativeScheme::Synchronous,
            SharingMode::Bottleneck,
        );
    }
}
