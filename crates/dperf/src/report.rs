//! Report formatting for the experiment harness.
//!
//! The benchmark binary prints every figure of the paper as a plain-text data
//! series (x = number of peers, y = seconds) and every table as aligned text.
//! Keeping the formatting here lets the benches, the examples and the
//! integration tests share one implementation.

use serde::{Deserialize, Serialize};

/// One plotted series of a figure (e.g. "optimization level 0" in Fig. 9).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// X values (number of peers).
    pub x: Vec<usize>,
    /// Y values (seconds).
    pub y_secs: Vec<f64>,
}

impl Series {
    /// Build a series from `(peers, seconds)` pairs.
    pub fn new(label: impl Into<String>, points: &[(usize, f64)]) -> Self {
        Series {
            label: label.into(),
            x: points.iter().map(|&(n, _)| n).collect(),
            y_secs: points.iter().map(|&(_, s)| s).collect(),
        }
    }

    /// The y value at a given x, if present.
    pub fn at(&self, x: usize) -> Option<f64> {
        self.x.iter().position(|&v| v == x).map(|i| self.y_secs[i])
    }

    /// Is the series monotonically non-increasing in x (a "scales well" check)?
    pub fn is_non_increasing(&self) -> bool {
        self.y_secs.windows(2).all(|w| w[1] <= w[0] * 1.0001)
    }
}

/// A figure: a title plus one or more series over the same x axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure {
    /// Figure title (e.g. "Fig. 9 — Stage-1 reference execution time").
    pub title: String,
    /// X axis label.
    pub x_label: String,
    /// Y axis label.
    pub y_label: String,
    /// The plotted series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Create an empty figure with the paper's usual axes.
    pub fn new(title: impl Into<String>) -> Self {
        Figure {
            title: title.into(),
            x_label: "Number of peers".to_string(),
            y_label: "Time [s]".to_string(),
            series: Vec::new(),
        }
    }

    /// Add a series.
    pub fn push(&mut self, series: Series) {
        self.series.push(series);
    }

    /// Render as an aligned text table: one row per x value, one column per
    /// series.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.title));
        if self.series.is_empty() {
            out.push_str("(no data)\n");
            return out;
        }
        // Header.
        out.push_str(&format!("{:>14}", self.x_label));
        for s in &self.series {
            out.push_str(&format!("  {:>24}", s.label));
        }
        out.push('\n');
        // Union of x values, sorted.
        let mut xs: Vec<usize> = self
            .series
            .iter()
            .flat_map(|s| s.x.iter().copied())
            .collect();
        xs.sort_unstable();
        xs.dedup();
        for x in xs {
            out.push_str(&format!("{x:>14}"));
            for s in &self.series {
                match s.at(x) {
                    Some(y) => out.push_str(&format!("  {y:>24.3}")),
                    None => out.push_str(&format!("  {:>24}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Serialise to JSON (for downstream plotting tools).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("figures always serialise")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_lookup_and_monotonicity() {
        let s = Series::new("ref", &[(2, 42.0), (4, 21.0), (8, 11.0)]);
        assert_eq!(s.at(4), Some(21.0));
        assert_eq!(s.at(16), None);
        assert!(s.is_non_increasing());
        let rising = Series::new("xdsl", &[(2, 50.0), (4, 52.0)]);
        assert!(!rising.is_non_increasing());
    }

    #[test]
    fn figure_render_aligns_all_series() {
        let mut fig = Figure::new("Fig. 9 — reference time");
        fig.push(Series::new("optimization level 0", &[(2, 42.2), (4, 21.4)]));
        fig.push(Series::new("optimization level 3", &[(2, 13.7), (4, 7.1)]));
        let text = fig.render();
        assert!(text.contains("Fig. 9"));
        assert!(text.contains("optimization level 0"));
        assert!(text.lines().count() >= 4);
        // Each data row has the x value and two y columns.
        let row: Vec<&str> = text.lines().nth(2).unwrap().split_whitespace().collect();
        assert_eq!(row.len(), 3);
    }

    #[test]
    fn figure_render_handles_missing_points_and_empty_figures() {
        let mut fig = Figure::new("sparse");
        fig.push(Series::new("a", &[(2, 1.0)]));
        fig.push(Series::new("b", &[(4, 2.0)]));
        let text = fig.render();
        assert!(text.contains('-'), "missing points are dashes");
        let empty = Figure::new("empty");
        assert!(empty.render().contains("no data"));
    }

    #[test]
    fn figure_json_round_trips() {
        let mut fig = Figure::new("json");
        fig.push(Series::new("a", &[(2, 1.5)]));
        let parsed: Figure = serde_json::from_str(&fig.to_json()).unwrap();
        assert_eq!(parsed, fig);
    }
}
