//! Instrumentation of the program IR.
//!
//! In the original tool the AST "is modified so that lines of code will be
//! injected into the source code for instrumentation purposes … calls to the
//! PAPI library for obtaining accurate measurement of time duration"
//! (§III-D.2), after which the AST is unparsed back to source. Here the same
//! step attaches a numbered probe to every compute block and communication
//! call, and [`InstrumentedProgram::unparse`] renders the transformed
//! "source" as text so tests and humans can inspect what was injected.

use crate::analysis::traversal::{walk, Visitor};
use crate::ir::{Collective, CommCall, CommKind, ComputeBlock, Guard, Program, Stmt};
use serde::{Deserialize, Serialize};

/// What a probe instruments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProbeKind {
    /// Timer around a compute block.
    BlockTimer,
    /// Record of a communication call's parameters.
    CommRecord,
}

/// One injected probe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Probe {
    /// Probe number (dense, starting at 0, in program order).
    pub id: u32,
    /// What it instruments.
    pub kind: ProbeKind,
    /// Label of the instrumented site (block name or `comm(tag=…)`).
    pub site: String,
}

/// A program plus its injected probes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstrumentedProgram {
    /// The (unmodified) program; probes are kept alongside rather than woven
    /// into the tree so the original is still available.
    pub program: Program,
    /// All probes, in program order.
    pub probes: Vec<Probe>,
}

impl InstrumentedProgram {
    /// Instrument every compute block and communication call of `program`.
    pub fn instrument(program: &Program) -> InstrumentedProgram {
        struct Collector {
            probes: Vec<Probe>,
        }
        impl Visitor for Collector {
            fn visit_compute(&mut self, block: &ComputeBlock, _depth: usize) {
                self.probes.push(Probe {
                    id: self.probes.len() as u32,
                    kind: ProbeKind::BlockTimer,
                    site: block.name.clone(),
                });
            }
            fn visit_comm(&mut self, call: &CommCall, _depth: usize) {
                self.probes.push(Probe {
                    id: self.probes.len() as u32,
                    kind: ProbeKind::CommRecord,
                    site: format!("comm(tag={})", call.tag),
                });
            }
            fn visit_collective(&mut self, coll: &Collective, _depth: usize) {
                self.probes.push(Probe {
                    id: self.probes.len() as u32,
                    kind: ProbeKind::CommRecord,
                    site: format!("collective(tag={})", coll.tag),
                });
            }
        }
        let mut collector = Collector { probes: vec![] };
        walk(&program.body, &mut collector);
        InstrumentedProgram {
            program: program.clone(),
            probes: collector.probes,
        }
    }

    /// Number of block-timer probes.
    pub fn block_probe_count(&self) -> usize {
        self.probes
            .iter()
            .filter(|p| p.kind == ProbeKind::BlockTimer)
            .count()
    }

    /// Render the instrumented program as pseudo-source, the analogue of the
    /// unparsing step. Every probe shows up as a `probe_start`/`probe_stop`
    /// or `probe_comm` line.
    pub fn unparse(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("// instrumented: {}\n", self.program.name));
        let mut next_probe = 0u32;
        unparse_stmts(&self.program.body, 0, &mut next_probe, &mut out);
        out
    }
}

fn indent(depth: usize) -> String {
    "  ".repeat(depth)
}

fn unparse_stmts(stmts: &[Stmt], depth: usize, next_probe: &mut u32, out: &mut String) {
    for stmt in stmts {
        match stmt {
            Stmt::Compute(block) => {
                let id = *next_probe;
                *next_probe += 1;
                out.push_str(&format!("{}probe_start({id});\n", indent(depth)));
                out.push_str(&format!(
                    "{}{}();            // {} flops\n",
                    indent(depth),
                    block.name,
                    block.flops
                ));
                out.push_str(&format!("{}probe_stop({id});\n", indent(depth)));
            }
            Stmt::Comm(call) => {
                let id = *next_probe;
                *next_probe += 1;
                let verb = match call.kind {
                    CommKind::Send => "sap_send",
                    CommKind::Recv => "sap_recv",
                    CommKind::SendRecv => "sap_sendrecv",
                };
                out.push_str(&format!(
                    "{}probe_comm({id}); {verb}(peer={:?}, bytes={}, tag={});\n",
                    indent(depth),
                    call.peer,
                    call.bytes,
                    call.tag
                ));
            }
            Stmt::Collective(coll) => {
                let id = *next_probe;
                *next_probe += 1;
                out.push_str(&format!(
                    "{}probe_comm({id}); sap_{:?}(bytes={}, tag={});\n",
                    indent(depth),
                    coll.kind,
                    coll.bytes,
                    coll.tag
                ));
            }
            Stmt::Loop { count, body } => {
                out.push_str(&format!(
                    "{}for (i = 0; i < {count}; i++) {{\n",
                    indent(depth)
                ));
                unparse_stmts(body, depth + 1, next_probe, out);
                out.push_str(&format!("{}}}\n", indent(depth)));
            }
            Stmt::If {
                guard,
                then_branch,
                else_branch,
            } => {
                out.push_str(&format!("{}if ({}) {{\n", indent(depth), guard_text(guard)));
                unparse_stmts(then_branch, depth + 1, next_probe, out);
                if !else_branch.is_empty() {
                    out.push_str(&format!("{}}} else {{\n", indent(depth)));
                    unparse_stmts(else_branch, depth + 1, next_probe, out);
                }
                out.push_str(&format!("{}}}\n", indent(depth)));
            }
        }
    }
}

fn guard_text(guard: &Guard) -> String {
    match guard {
        Guard::IsCoordinator => "rank == 0".to_string(),
        Guard::IsWorker => "rank != 0".to_string(),
        Guard::HasUpNeighbor => "rank > 0".to_string(),
        Guard::HasDownNeighbor => "rank < nprocs - 1".to_string(),
        Guard::NonZero(e) => format!("{e} != 0"),
    }
}

/// Convenience free function mirroring the dPerf pipeline step name.
pub fn instrument(program: &Program) -> InstrumentedProgram {
    InstrumentedProgram::instrument(program)
}

#[allow(unused_imports)]
use crate::ir::ParamEnv; // referenced by doc examples

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{CollectiveKind, Expr, Target};

    fn sample() -> Program {
        Program::builder("probe-me")
            .compute(ComputeBlock::new("init", Expr::c(10.0)))
            .loop_(Expr::p("iters"), |b| {
                b.compute(ComputeBlock::new("sweep", Expr::p("N")))
                    .sendrecv(Target::RelativeRank(1), Expr::c(800.0), 4)
                    .collective(CollectiveKind::AllReduce, Expr::c(8.0), 5)
            })
            .build()
    }

    #[test]
    fn every_block_and_comm_site_gets_a_probe() {
        let ins = instrument(&sample());
        assert_eq!(ins.probes.len(), 4);
        assert_eq!(ins.block_probe_count(), 2);
        assert_eq!(ins.probes[0].site, "init");
        assert_eq!(ins.probes[0].id, 0);
        assert_eq!(ins.probes[3].kind, ProbeKind::CommRecord);
        // Probe ids are dense and ordered.
        let ids: Vec<u32> = ins.probes.iter().map(|p| p.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn unparse_mentions_probes_and_structure() {
        let ins = instrument(&sample());
        let src = ins.unparse();
        assert!(src.contains("probe_start(0)"));
        assert!(src.contains("probe_stop(0)"));
        assert!(src.contains("for (i = 0; i < iters; i++)"));
        assert!(src.contains("sap_sendrecv"));
        assert!(src.contains("AllReduce"));
        // One start and one stop per block probe.
        assert_eq!(src.matches("probe_start").count(), 2);
        assert_eq!(src.matches("probe_stop").count(), 2);
        assert_eq!(src.matches("probe_comm").count(), 2);
    }

    #[test]
    fn instrumentation_does_not_change_the_program() {
        let p = sample();
        let ins = instrument(&p);
        assert_eq!(ins.program, p);
    }
}
