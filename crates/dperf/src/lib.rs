//! # dperf — distributed performance prediction
//!
//! This crate reproduces **dPerf**, the performance-prediction environment of
//! the paper. dPerf is a *hybrid* predictor (profile-based + simulation-based,
//! §II-B): it statically analyses the input program, decomposes it into
//! blocks, benchmarks the blocks, instruments the code, runs it to obtain one
//! trace file per process, and finally replays the traces on a simulated
//! network platform to obtain the predicted execution time `t_predicted`.
//!
//! The original tool analyses C/C++/Fortran sources through the ROSE compiler
//! and measures blocks through PAPI hardware counters. Neither is available
//! (or desirable) in a pure-Rust reproduction, so:
//!
//! * programs are described in a small explicit IR ([`ir`]) carrying exactly
//!   the information ROSE's AST/DDG/CDG traversals extract — block structure,
//!   loop nests, symbolic work expressions and communication calls;
//! * block benchmarking ([`bench_block`]) has a *modeled* back-end (a machine
//!   model in flop/s, deterministic and used by the experiment harness) and a
//!   *measured* back-end (real `std::time::Instant` timing of registered Rust
//!   kernels, the analogue of the PAPI path);
//! * the GCC optimisation levels 0/1/2/3/s of the evaluation are a per-block
//!   cost model ([`compiler`]).
//!
//! The prediction pipeline ([`predict`]) then mirrors the paper exactly:
//! traces ([`trace`]) are generated per rank ([`tracegen`]) and replayed with
//! `netsim` on any platform (Grid'5000 cluster, xDSL Daisy, LAN), and the
//! equivalence search ([`equivalence`]) answers the paper's headline question:
//! *how many peers over xDSL or LAN match the computing power of the
//! cluster?* (Table I).

#![warn(missing_docs)]

pub mod analysis;
pub mod bench_block;
pub mod compiler;
pub mod equivalence;
pub mod instrument;
pub mod ir;
pub mod machine;
pub mod predict;
pub mod report;
pub mod trace;
pub mod tracegen;

pub use bench_block::{BlockBencher, MeasuredBencher, ModeledBencher};
pub use compiler::OptLevel;
pub use equivalence::{Comparison, EquivalenceRow, EquivalenceTable, PerfCurve, PerfPoint};
pub use instrument::{InstrumentedProgram, Probe};
pub use ir::{
    Collective, CollectiveKind, CommCall, CommKind, ComputeBlock, Expr, Guard, ParamEnv, Program,
    ProgramBuilder, Stmt, Target,
};
pub use machine::MachineModel;
pub use predict::{predict_traces, Prediction};
pub use trace::{ProcessTrace, TraceEvent, TraceSet};
pub use tracegen::{generate_traces, RankEnv};
