//! Trace generation — "running the instrumented code".
//!
//! The original dPerf compiles the instrumented source and runs it once per
//! process to collect trace files. In the reproduction the equivalent step is
//! a per-rank symbolic execution of the IR: loop counts and guards are
//! resolved for each rank, every compute block is timed by the configured
//! [`BlockBencher`] (modelled or really measured), and every communication
//! call is recorded with its resolved peer, size and tag.
//!
//! Collectives are expanded into the point-to-point pattern P2PDC uses at run
//! time: everything funnels through the coordinator (rank 0), which is exactly
//! why the reduction acts as a synchronisation point and why its cost grows
//! with the number of peers — the effect that bends the xDSL curve of Fig. 11.
//!
//! ### Tag conventions
//!
//! Message matching in the replay is by `(source rank, tag)`. A `SendRecv`
//! exchange uses the *same* tag on both sides, so the two ranks of a halo
//! exchange must name the same tag for the pattern to match (the obstacle
//! application uses a single halo tag).

use crate::bench_block::BlockBencher;
use crate::ir::{CollectiveKind, CommKind, ParamEnv, Program, RankContext, Stmt};
use crate::trace::{ProcessTrace, TraceEvent, TraceSet};
use std::collections::HashMap;
use std::sync::Arc;

/// Interns compute-block names so every event of a block shares one
/// allocation (an `Arc<str>` refcount bump per event instead of a `String`
/// clone). One interner serves all ranks of a generation run: block names
/// come from the program, which is shared.
#[derive(Default)]
struct BlockNames<'p> {
    map: HashMap<&'p str, Arc<str>>,
}

impl<'p> BlockNames<'p> {
    fn intern(&mut self, name: &'p str) -> Arc<str> {
        Arc::clone(self.map.entry(name).or_insert_with(|| Arc::from(name)))
    }
}

/// Optional per-rank parameter hook: given `(rank, nprocs, global env)` return
/// extra bindings (e.g. `my_rows` for a 1-D block decomposition).
pub type RankEnv<'a> = &'a dyn Fn(usize, usize, &ParamEnv) -> ParamEnv;

/// Generate the trace set of `program` for `nprocs` ranks.
///
/// `base_env` overlays the program defaults; `rank_env` (if given) overlays
/// rank-specific bindings on top of that. The bencher supplies per-block
/// durations; its optimisation level is recorded in the returned set through
/// `opt_label`.
pub fn generate_traces(
    program: &Program,
    base_env: &ParamEnv,
    nprocs: usize,
    bencher: &dyn BlockBencher,
    rank_env: Option<RankEnv<'_>>,
    opt_label: &str,
) -> TraceSet {
    assert!(nprocs > 0, "need at least one process");
    let global = program.defaults.overlaid_with(base_env);
    let mut traces = Vec::with_capacity(nprocs);
    let mut names = BlockNames::default();
    for rank in 0..nprocs {
        let ctx = RankContext { rank, nprocs };
        let mut env = global
            .clone()
            .with("rank", rank as f64)
            .with("nprocs", nprocs as f64);
        if let Some(f) = rank_env {
            env = env.overlaid_with(&f(rank, nprocs, &global));
        }
        // One cheap counting pass (loop trip counts and guards resolved the
        // same way the emitting pass resolves them) sizes the event vector
        // exactly, so the emitting pass never reallocates.
        let expected = count_events(&program.body, ctx, &env);
        let mut events = Vec::with_capacity(expected);
        emit_stmts(&program.body, ctx, &env, bencher, &mut names, &mut events);
        debug_assert_eq!(
            events.len(),
            expected,
            "count_events must size the event vector exactly"
        );
        traces.push(ProcessTrace { rank, events });
    }
    TraceSet {
        app: program.name.clone(),
        nprocs,
        opt_level: opt_label.to_string(),
        traces,
    }
}

/// Count the events `emit_stmts` will produce for the same inputs, without
/// benchmarking any block. Used to pre-size the event vectors.
fn count_events(stmts: &[Stmt], ctx: RankContext, env: &ParamEnv) -> usize {
    let mut total = 0usize;
    for stmt in stmts {
        match stmt {
            Stmt::Compute(_) => total += 1,
            Stmt::Comm(call) => {
                let Some(peer) = call.peer.resolve(ctx) else {
                    continue;
                };
                if peer == ctx.rank {
                    continue;
                }
                total += match call.kind {
                    CommKind::Send | CommKind::Recv => 1,
                    CommKind::SendRecv => 2,
                };
            }
            Stmt::Collective(coll) => total += collective_event_count(coll.kind, ctx),
            Stmt::Loop { count, body } => {
                let trips = count.eval_count(env) as usize;
                total += trips * count_events(body, ctx, env);
            }
            Stmt::If {
                guard,
                then_branch,
                else_branch,
            } => {
                total += if guard.eval(ctx, env) {
                    count_events(then_branch, ctx, env)
                } else {
                    count_events(else_branch, ctx, env)
                };
            }
        }
    }
    total
}

/// Number of point-to-point events a collective expands to on this rank.
fn collective_event_count(kind: CollectiveKind, ctx: RankContext) -> usize {
    if ctx.nprocs == 1 {
        return 0;
    }
    match kind {
        CollectiveKind::Gather | CollectiveKind::Broadcast => {
            if ctx.is_coordinator() {
                ctx.nprocs - 1
            } else {
                1
            }
        }
        CollectiveKind::AllReduce => {
            collective_event_count(CollectiveKind::Gather, ctx)
                + collective_event_count(CollectiveKind::Broadcast, ctx)
        }
    }
}

fn emit_stmts<'p>(
    stmts: &'p [Stmt],
    ctx: RankContext,
    env: &ParamEnv,
    bencher: &dyn BlockBencher,
    names: &mut BlockNames<'p>,
    out: &mut Vec<TraceEvent>,
) {
    for stmt in stmts {
        match stmt {
            Stmt::Compute(block) => {
                let t = bencher.block_time(block, env);
                out.push(TraceEvent::Compute {
                    ns: t.as_nanos(),
                    block: names.intern(&block.name),
                });
            }
            Stmt::Comm(call) => {
                let Some(peer) = call.peer.resolve(ctx) else {
                    continue; // boundary rank without that neighbour
                };
                if peer == ctx.rank {
                    continue; // self-messages are meaningless
                }
                let bytes = call.bytes.eval_count(env);
                match call.kind {
                    CommKind::Send => out.push(TraceEvent::Send {
                        to: peer,
                        bytes,
                        tag: call.tag,
                    }),
                    CommKind::Recv => out.push(TraceEvent::Recv {
                        from: peer,
                        tag: call.tag,
                    }),
                    CommKind::SendRecv => {
                        out.push(TraceEvent::Send {
                            to: peer,
                            bytes,
                            tag: call.tag,
                        });
                        out.push(TraceEvent::Recv {
                            from: peer,
                            tag: call.tag,
                        });
                    }
                }
            }
            Stmt::Collective(coll) => {
                let bytes = coll.bytes.eval_count(env);
                expand_collective(coll.kind, bytes, coll.tag, ctx, out);
            }
            Stmt::Loop { count, body } => {
                let trips = count.eval_count(env);
                for _ in 0..trips {
                    emit_stmts(body, ctx, env, bencher, names, out);
                }
            }
            Stmt::If {
                guard,
                then_branch,
                else_branch,
            } => {
                if guard.eval(ctx, env) {
                    emit_stmts(then_branch, ctx, env, bencher, names, out);
                } else {
                    emit_stmts(else_branch, ctx, env, bencher, names, out);
                }
            }
        }
    }
}

fn expand_collective(
    kind: CollectiveKind,
    bytes: u64,
    tag: u32,
    ctx: RankContext,
    out: &mut Vec<TraceEvent>,
) {
    if ctx.nprocs == 1 {
        return; // a lone rank has nobody to talk to
    }
    let coordinator = 0usize;
    match kind {
        CollectiveKind::Gather => {
            if ctx.is_coordinator() {
                for r in 1..ctx.nprocs {
                    out.push(TraceEvent::Recv { from: r, tag });
                }
            } else {
                out.push(TraceEvent::Send {
                    to: coordinator,
                    bytes,
                    tag,
                });
            }
        }
        CollectiveKind::Broadcast => {
            if ctx.is_coordinator() {
                for r in 1..ctx.nprocs {
                    out.push(TraceEvent::Send { to: r, bytes, tag });
                }
            } else {
                out.push(TraceEvent::Recv {
                    from: coordinator,
                    tag,
                });
            }
        }
        CollectiveKind::AllReduce => {
            expand_collective(CollectiveKind::Gather, bytes, tag, ctx, out);
            expand_collective(CollectiveKind::Broadcast, bytes, tag, ctx, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_block::ModeledBencher;
    use crate::compiler::OptLevel;
    use crate::ir::{CollectiveKind, ComputeBlock, Expr, Guard, Target};
    use crate::machine::MachineModel;

    fn bencher(opt: OptLevel) -> ModeledBencher {
        ModeledBencher::new(MachineModel::xeon_em64t_3ghz(), opt)
    }

    /// A halo-exchange stencil with a per-iteration reduction, the same shape
    /// as the obstacle program.
    fn stencil() -> Program {
        Program::builder("stencil")
            .param("N", 100.0)
            .param("iters", 3.0)
            .loop_(Expr::p("iters"), |b| {
                b.compute(ComputeBlock::new(
                    "sweep",
                    Expr::c(5.0).mul(Expr::p("N")).mul(Expr::p("my_rows")),
                ))
                .if_(
                    Guard::HasUpNeighbor,
                    |t| t.sendrecv(Target::RelativeRank(-1), Expr::c(8.0).mul(Expr::p("N")), 7),
                    |e| e,
                )
                .if_(
                    Guard::HasDownNeighbor,
                    |t| t.sendrecv(Target::RelativeRank(1), Expr::c(8.0).mul(Expr::p("N")), 7),
                    |e| e,
                )
                .collective(CollectiveKind::AllReduce, Expr::c(8.0), 9)
            })
            .build()
    }

    fn rows(rank: usize, nprocs: usize, env: &ParamEnv) -> ParamEnv {
        let n = env.get("N").unwrap_or(0.0) as usize;
        let base = n / nprocs;
        let extra = usize::from(rank < n % nprocs);
        ParamEnv::new().with("my_rows", (base + extra) as f64)
    }

    #[test]
    fn traces_are_balanced_and_validate() {
        let p = stencil();
        let ts = generate_traces(
            &p,
            &ParamEnv::new(),
            4,
            &bencher(OptLevel::O3),
            Some(&rows),
            "3",
        );
        assert_eq!(ts.nprocs, 4);
        assert_eq!(ts.traces.len(), 4);
        assert!(ts.validate().is_empty(), "{:?}", ts.validate());
        // 3 iterations, interior ranks exchange with 2 neighbours each.
        assert_eq!(ts.traces[1].sends(), 3 * (2 + 1)); // 2 halos + 1 gather contribution
        assert_eq!(ts.traces[0].sends(), 3 * (1 + 3)); // 1 halo + broadcast to 3
    }

    #[test]
    fn boundary_ranks_skip_their_missing_neighbour() {
        let p = stencil();
        let ts = generate_traces(
            &p,
            &ParamEnv::new(),
            4,
            &bencher(OptLevel::O3),
            Some(&rows),
            "3",
        );
        // Rank 0 has no up neighbour, rank 3 no down neighbour: count the
        // halo-exchange sends (tag 7) only, ignoring the reduction traffic.
        let halo_sends = |rank: usize| {
            ts.traces[rank]
                .events
                .iter()
                .filter(|e| matches!(e, TraceEvent::Send { tag: 7, .. }))
                .count()
        };
        assert_eq!(
            halo_sends(0),
            3,
            "boundary rank exchanges with one neighbour"
        );
        assert_eq!(
            halo_sends(1),
            6,
            "interior rank exchanges with two neighbours"
        );
        assert_eq!(halo_sends(3), 3);
        let last = &ts.traces[3];
        let sends_to: Vec<usize> = last
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Send { to, .. } => Some(*to),
                _ => None,
            })
            .collect();
        assert!(
            sends_to.iter().all(|&t| t == 2 || t == 0),
            "rank 3 talks only to 2 and the coordinator"
        );
    }

    #[test]
    fn opt_level_scales_compute_but_not_messages() {
        let p = stencil();
        let fast = generate_traces(
            &p,
            &ParamEnv::new(),
            2,
            &bencher(OptLevel::O3),
            Some(&rows),
            "3",
        );
        let slow = generate_traces(
            &p,
            &ParamEnv::new(),
            2,
            &bencher(OptLevel::O0),
            Some(&rows),
            "0",
        );
        assert_eq!(fast.total_messages(), slow.total_messages());
        let ratio = slow.max_compute_time().as_secs_f64() / fast.max_compute_time().as_secs_f64();
        assert!(
            (ratio - OptLevel::O0.time_factor()).abs() < 0.05,
            "ratio {ratio}"
        );
        assert_eq!(slow.opt_level, "0");
    }

    #[test]
    fn work_is_split_across_ranks() {
        let p = stencil();
        let one = generate_traces(
            &p,
            &ParamEnv::new(),
            1,
            &bencher(OptLevel::O3),
            Some(&rows),
            "3",
        );
        let four = generate_traces(
            &p,
            &ParamEnv::new(),
            4,
            &bencher(OptLevel::O3),
            Some(&rows),
            "3",
        );
        let t1 = one.max_compute_time().as_secs_f64();
        let t4 = four.max_compute_time().as_secs_f64();
        assert!(
            t4 < t1 / 3.0,
            "4-way split must cut per-rank compute time, {t1} vs {t4}"
        );
    }

    #[test]
    fn block_names_are_interned_across_events_and_ranks() {
        use crate::trace::TraceEvent;
        let p = stencil();
        let ts = generate_traces(
            &p,
            &ParamEnv::new(),
            4,
            &bencher(OptLevel::O3),
            Some(&rows),
            "3",
        );
        let blocks: Vec<&std::sync::Arc<str>> = ts
            .traces
            .iter()
            .flat_map(|t| t.events.iter())
            .filter_map(|e| match e {
                TraceEvent::Compute { block, .. } => Some(block),
                _ => None,
            })
            .collect();
        assert!(
            blocks.len() > 4,
            "the stencil has compute events on every rank"
        );
        let first = blocks[0];
        assert!(
            blocks.iter().all(|b| std::sync::Arc::ptr_eq(b, first)),
            "every event of the same block must share one allocation"
        );
    }

    #[test]
    fn single_rank_has_no_communication() {
        let p = stencil();
        let ts = generate_traces(
            &p,
            &ParamEnv::new(),
            1,
            &bencher(OptLevel::O3),
            Some(&rows),
            "3",
        );
        assert_eq!(ts.total_messages(), 0);
        assert!(ts.validate().is_empty());
    }

    #[test]
    fn replaying_generated_traces_yields_a_finite_time() {
        use netsim::{cluster_bordeplage, replay, HostSpec, ReplayConfig};
        let p = stencil();
        let ts = generate_traces(
            &p,
            &ParamEnv::new(),
            4,
            &bencher(OptLevel::O3),
            Some(&rows),
            "3",
        );
        let topo = cluster_bordeplage(4, HostSpec::default());
        let scripts = ts.to_replay_scripts();
        let res = replay(
            topo.platform,
            &topo.hosts,
            &scripts,
            &ReplayConfig::default(),
        );
        assert!(res.makespan >= ts.max_compute_time());
        assert_eq!(res.messages_sent as usize, ts.total_messages());
    }
}
