//! Machine models.
//!
//! The modeled block bencher converts a block's symbolic flop count into a
//! duration through a [`MachineModel`]: an *effective* flop rate for the
//! application's kernels plus a fixed per-block overhead (loop management,
//! timer reads — the small constant PAPI-based measurements always include).
//!
//! The effective rate is deliberately not the CPU's peak rate: the obstacle
//! kernel is memory-bound, so a 3 GHz Xeon EM64T sustains on the order of one
//! useful flop per cycle-third on this code when compiled at `-O3`. The value
//! below is calibrated so the Stage-1 reference times land in the range shown
//! in Fig. 9/10; the *shape* of every figure is insensitive to it.

use p2p_common::SimDuration;
use serde::{Deserialize, Serialize};

/// An execution-speed model for one node type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineModel {
    /// Human-readable name.
    pub name: String,
    /// Effective flop rate of the application kernels at `-O3`, flop/s.
    pub flops_per_sec: f64,
    /// Fixed overhead charged per executed block (probe + call overhead).
    pub block_overhead: SimDuration,
}

impl MachineModel {
    /// The Bordeplage node of the paper's evaluation: Intel Xeon EM64T 3 GHz,
    /// 1 MB L2, 2 GB memory (§IV-A.3).
    pub fn xeon_em64t_3ghz() -> Self {
        MachineModel {
            name: "Intel Xeon EM64T 3GHz (Bordeplage)".to_string(),
            flops_per_sec: 1.0e9,
            block_overhead: SimDuration::from_nanos(200),
        }
    }

    /// A machine `factor`× faster than this one (used by heterogeneity tests).
    pub fn scaled(&self, factor: f64) -> MachineModel {
        assert!(factor > 0.0, "speed factor must be positive");
        MachineModel {
            name: format!("{} x{:.2}", self.name, factor),
            flops_per_sec: self.flops_per_sec * factor,
            block_overhead: self.block_overhead,
        }
    }

    /// Time to execute `flops` floating-point operations on this machine
    /// (without any compiler-level slowdown factor).
    pub fn time_for_flops(&self, flops: f64) -> SimDuration {
        if flops <= 0.0 {
            return self.block_overhead;
        }
        SimDuration::from_secs_f64(flops / self.flops_per_sec) + self.block_overhead
    }
}

impl Default for MachineModel {
    fn default() -> Self {
        MachineModel::xeon_em64t_3ghz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xeon_executes_a_gigaflop_in_about_a_second() {
        let m = MachineModel::xeon_em64t_3ghz();
        let t = m.time_for_flops(1e9);
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn zero_work_still_costs_the_block_overhead() {
        let m = MachineModel::xeon_em64t_3ghz();
        assert_eq!(m.time_for_flops(0.0), m.block_overhead);
        assert_eq!(m.time_for_flops(-5.0), m.block_overhead);
    }

    #[test]
    fn scaling_speeds_the_machine_up() {
        let m = MachineModel::xeon_em64t_3ghz();
        let fast = m.scaled(2.0);
        assert!(fast.time_for_flops(1e9) < m.time_for_flops(1e9));
        assert!(fast.name.contains("x2.00"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_scale_factor_is_rejected() {
        MachineModel::xeon_em64t_3ghz().scaled(0.0);
    }
}
