//! GCC optimisation-level model.
//!
//! The paper compiles the obstacle code "in turn, using GCC optimization
//! levels 0, 1, 2, 3 and s" (§III-D.2) and reports a separate reference curve
//! per level (Fig. 9). The optimisation level only changes how long a compute
//! block takes, so here it is a per-block time multiplier relative to `-O3`.
//!
//! The default factors were obtained by timing a straightforward (index-by-
//! index, bounds-checked, no-fusion) Rust implementation of the projected
//! Richardson kernel against an iterator-based optimised one on an x86-64
//! machine and interpolating the intermediate levels the way GCC's own levels
//! typically spread for memory-bound stencil code (`-O0` roughly 3× slower
//! than `-O3`, `-O1` within ~25 %, `-O2` within a few percent, `-Os` between
//! `-O1` and `-O2`). [`OptLevel::measure_factor`] re-derives the `-O0`/`-O3`
//! endpoints empirically at run time for anyone who wants to recalibrate.

use serde::{Deserialize, Serialize};

/// A GCC optimisation level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OptLevel {
    /// `-O0`
    O0,
    /// `-O1`
    O1,
    /// `-O2`
    O2,
    /// `-O3`
    O3,
    /// `-Os`
    Os,
}

impl OptLevel {
    /// All levels, in the order the paper reports them.
    pub fn all() -> [OptLevel; 5] {
        [
            OptLevel::O0,
            OptLevel::O1,
            OptLevel::O2,
            OptLevel::O3,
            OptLevel::Os,
        ]
    }

    /// Compute-time multiplier relative to `-O3`.
    pub fn time_factor(self) -> f64 {
        match self {
            OptLevel::O0 => 3.1,
            OptLevel::O1 => 1.25,
            OptLevel::O2 => 1.05,
            OptLevel::O3 => 1.0,
            OptLevel::Os => 1.15,
        }
    }

    /// Label as the paper prints it ("optimization level 0", … "level s").
    pub fn label(self) -> &'static str {
        match self {
            OptLevel::O0 => "0",
            OptLevel::O1 => "1",
            OptLevel::O2 => "2",
            OptLevel::O3 => "3",
            OptLevel::Os => "s",
        }
    }

    /// Parse from the single-character label.
    pub fn from_label(s: &str) -> Option<OptLevel> {
        match s {
            "0" => Some(OptLevel::O0),
            "1" => Some(OptLevel::O1),
            "2" => Some(OptLevel::O2),
            "3" => Some(OptLevel::O3),
            "s" | "S" => Some(OptLevel::Os),
            _ => None,
        }
    }

    /// Empirically measure the naive-vs-optimised kernel ratio on the current
    /// machine: the returned value is an estimate of `-O0`'s `time_factor`.
    /// Runs a small projected-Richardson-like stencil twice (a deliberately
    /// naive variant and a tight variant) and returns the time ratio; callers
    /// that want measured levels can feed this into their own tables. This is
    /// a calibration helper, not part of the deterministic experiment path.
    pub fn measure_factor(grid: usize, sweeps: usize) -> f64 {
        use std::time::Instant;
        let n = grid.max(8);
        let mut u = vec![0.5f64; n * n];
        let psi = vec![0.1f64; n * n];

        // Naive variant: per-element indexing with redundant recomputation,
        // the moral equivalent of unoptimised scalar code.
        let naive_start = Instant::now();
        let mut acc_naive = 0.0f64;
        for _ in 0..sweeps {
            for i in 1..n - 1 {
                for j in 1..n - 1 {
                    let idx = |a: usize, b: usize| a * n + b;
                    let lap =
                        u[idx(i - 1, j)] + u[idx(i + 1, j)] + u[idx(i, j - 1)] + u[idx(i, j + 1)]
                            - 4.0 * u[idx(i, j)];
                    let cand = u[idx(i, j)] + 0.2 * lap;
                    let proj = if cand < psi[idx(i, j)] {
                        psi[idx(i, j)]
                    } else {
                        cand
                    };
                    u[idx(i, j)] = proj;
                    acc_naive += proj;
                }
            }
        }
        let naive = naive_start.elapsed();

        // Tight variant: row slices, no redundant index arithmetic.
        let mut v = vec![0.5f64; n * n];
        let tight_start = Instant::now();
        let mut acc_tight = 0.0f64;
        for _ in 0..sweeps {
            for i in 1..n - 1 {
                let (above, rest) = v.split_at_mut(i * n);
                let (row, below) = rest.split_at_mut(n);
                let above = &above[(i - 1) * n..];
                for j in 1..n - 1 {
                    let lap = above[j] + below[j] + row[j - 1] + row[j + 1] - 4.0 * row[j];
                    let cand = row[j] + 0.2 * lap;
                    let p = psi[i * n + j];
                    let proj = if cand < p { p } else { cand };
                    row[j] = proj;
                    acc_tight += proj;
                }
            }
        }
        let tight = tight_start.elapsed();
        // Keep the accumulators alive so the loops cannot be optimised away.
        std::hint::black_box((acc_naive, acc_tight));
        if tight.as_secs_f64() <= 0.0 {
            return 1.0;
        }
        (naive.as_secs_f64() / tight.as_secs_f64()).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_order_as_expected() {
        assert!(OptLevel::O0.time_factor() > OptLevel::O1.time_factor());
        assert!(OptLevel::O1.time_factor() > OptLevel::O2.time_factor());
        assert!(OptLevel::O2.time_factor() >= OptLevel::O3.time_factor());
        assert_eq!(OptLevel::O3.time_factor(), 1.0);
        let os = OptLevel::Os.time_factor();
        assert!(os > OptLevel::O2.time_factor() && os < OptLevel::O1.time_factor());
    }

    #[test]
    fn labels_round_trip() {
        for level in OptLevel::all() {
            assert_eq!(OptLevel::from_label(level.label()), Some(level));
        }
        assert_eq!(OptLevel::from_label("z"), None);
        assert_eq!(OptLevel::from_label("S"), Some(OptLevel::Os));
    }

    #[test]
    fn all_lists_five_distinct_levels() {
        let all = OptLevel::all();
        let set: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), 5);
    }

    #[test]
    fn measured_factor_is_at_least_one() {
        // Tiny sizes: this is a smoke test of the calibration helper, not a
        // performance assertion (CI machines are noisy).
        let f = OptLevel::measure_factor(32, 2);
        assert!(f >= 1.0);
        assert!(f.is_finite());
    }
}
