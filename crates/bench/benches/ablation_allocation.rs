//! Ablation A — hierarchical vs. flat task allocation (§III-C).
//!
//! The paper argues that the hierarchical mechanism "is faster because the
//! submitter does not have to connect in succession to all peers". This bench
//! quantifies it: critical-path message counts of both mechanisms for growing
//! peer populations, plus the wall cost of building the allocation graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2p_common::{IpAddr, PeerId, PeerResources};
use p2pdc::allocation::{build_allocation, flat_cost, hierarchical_cost, CMAX};
use p2pdc::proximity::GroupCandidate;

fn candidates(n: usize) -> Vec<GroupCandidate> {
    (0..n)
        .map(|i| GroupCandidate {
            id: PeerId::new(i as u64 + 2),
            ip: IpAddr::from_octets(10, (i / 64) as u8, (i / 8 % 256) as u8, (i % 250) as u8 + 1),
            resources: PeerResources::xeon_em64t(),
        })
        .collect()
}

fn bench_allocation(c: &mut Criterion) {
    println!("\n# Ablation A — allocation critical path (sequential sends)");
    println!(
        "{:>8}  {:>14}  {:>10}  {:>8}",
        "peers", "hierarchical", "flat", "speedup"
    );
    for &n in &[32usize, 64, 128, 256, 512] {
        let graph = build_allocation(PeerId::new(1), &candidates(n), CMAX);
        let hier = hierarchical_cost(&graph);
        let flat = flat_cost(n);
        println!(
            "{:>8}  {:>14}  {:>10}  {:>7.2}x",
            n,
            hier.critical_sends,
            flat.critical_sends,
            flat.critical_sends as f64 / hier.critical_sends as f64
        );
    }
    println!();

    let mut group = c.benchmark_group("ablation_allocation_build");
    group.sample_size(20);
    for &n in &[64usize, 512] {
        let peers = candidates(n);
        group.bench_with_input(
            BenchmarkId::new("build_allocation", n),
            &peers,
            |b, peers| b.iter(|| build_allocation(PeerId::new(1), peers, CMAX)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_allocation);
criterion_main!(benches);
