//! Fig. 10 — Stage-1 reference time compared to the dPerf prediction on the
//! identical cluster platform (GCC optimisation level 3).
//!
//! The bench measures the cost of the two pipelines (reference execution vs.
//! trace generation + replay) and prints the regenerated comparison, including
//! the per-point relative error dPerf achieves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dperf::OptLevel;
use p2p_perf::experiments::fig10_prediction_accuracy;
use p2p_perf::{PlatformKind, Scenario};
use p2pdc_bench::{bench_app, bench_sizes, tiny_app};

fn bench_fig10(c: &mut Criterion) {
    let fig = fig10_prediction_accuracy(&bench_app(), &bench_sizes(), OptLevel::O3);
    println!("\n{}", fig.render());
    // Report the prediction error explicitly, since that is Fig. 10's claim.
    let reference = &fig.series[0];
    let prediction = &fig.series[1];
    for &n in &bench_sizes() {
        if let (Some(r), Some(p)) = (reference.at(n), prediction.at(n)) {
            println!(
                "  peers={n:>2}  reference={r:.3}s  predicted={p:.3}s  error={:.1}%",
                (p - r).abs() / r * 100.0
            );
        }
    }
    println!();

    let mut group = c.benchmark_group("fig10_pipelines");
    group.sample_size(10);
    {
        let &n = &4usize;
        group.bench_with_input(BenchmarkId::new("reference", n), &n, |b, &n| {
            b.iter(|| {
                Scenario::new(PlatformKind::Grid5000, n)
                    .with_app(tiny_app())
                    .run_reference()
            })
        });
        group.bench_with_input(BenchmarkId::new("dperf_prediction", n), &n, |b, &n| {
            b.iter(|| {
                Scenario::new(PlatformKind::Grid5000, n)
                    .with_app(tiny_app())
                    .predict()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
