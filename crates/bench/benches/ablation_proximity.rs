//! Ablation B — IP-prefix proximity grouping vs. random grouping (§III-A.2).
//!
//! Compares the mean intra-group IP proximity (longest common prefix, bits)
//! and the simulated intra-group communication latency on the xDSL platform
//! for the paper's proximity-based grouping against a random assignment.

use criterion::{criterion_group, criterion_main, Criterion};
use netsim::{daisy_xdsl, HostSpec};
use p2p_common::{DetRng, HostId, PeerId, PeerResources, SimDuration};
use p2pdc::proximity::{group_by_proximity, mean_group_proximity, GroupCandidate};

fn xdsl_candidates(n: usize) -> (netsim::Topology, Vec<GroupCandidate>) {
    let topo = daisy_xdsl(1024, HostSpec::default(), 7);
    let cands = (0..n)
        .map(|i| {
            let host = topo.hosts[i * (1024 / n)];
            GroupCandidate {
                id: PeerId::new(host.raw() as u64),
                ip: topo.platform.host(host).ip.unwrap(),
                resources: PeerResources::xeon_em64t(),
            }
        })
        .collect();
    (topo, cands)
}

/// Mean route latency between members of each group, averaged over groups.
/// (Peer ids in this bench encode the host index directly.)
fn mean_intra_group_latency(
    topo: &mut netsim::Topology,
    groups: &[Vec<GroupCandidate>],
) -> SimDuration {
    let mut total = SimDuration::ZERO;
    let mut pairs = 0u64;
    for group in groups {
        for i in 0..group.len() {
            for j in (i + 1)..group.len().min(i + 4) {
                let a = HostId::new(group[i].id.raw() as u32);
                let b = HostId::new(group[j].id.raw() as u32);
                total += topo.platform.route(a, b).latency;
                pairs += 1;
            }
        }
    }
    if pairs == 0 {
        SimDuration::ZERO
    } else {
        total / pairs
    }
}

fn bench_proximity(c: &mut Criterion) {
    let (mut topo, candidates) = xdsl_candidates(128);

    // Proximity-based grouping.
    let proximity_groups = group_by_proximity(&candidates, 32);
    // Random grouping with the same group sizes.
    let mut shuffled = candidates.clone();
    DetRng::new(1).shuffle(&mut shuffled);
    let random_groups: Vec<Vec<GroupCandidate>> = shuffled.chunks(32).map(|c| c.to_vec()).collect();

    let prox_bits: f64 = proximity_groups
        .iter()
        .map(|g| mean_group_proximity(g))
        .sum::<f64>()
        / proximity_groups.len() as f64;
    let rand_bits: f64 = random_groups
        .iter()
        .map(|g| mean_group_proximity(g))
        .sum::<f64>()
        / random_groups.len() as f64;
    let prox_lat = mean_intra_group_latency(&mut topo, &proximity_groups);
    let rand_lat = mean_intra_group_latency(&mut topo, &random_groups);
    println!("\n# Ablation B — proximity vs random grouping (128 xDSL peers, Cmax = 32)");
    println!("  mean intra-group common prefix:  proximity {prox_bits:.1} bits   random {rand_bits:.1} bits");
    println!("  mean intra-group route latency:  proximity {prox_lat}   random {rand_lat}\n");

    let mut group = c.benchmark_group("ablation_proximity_grouping");
    group.sample_size(30);
    group.bench_function("group_128_peers", |b| {
        b.iter(|| group_by_proximity(&candidates, 32))
    });
    group.finish();
}

criterion_group!(benches, bench_proximity);
criterion_main!(benches);
