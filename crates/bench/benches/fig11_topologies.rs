//! Fig. 11 — reference time compared to the dPerf predictions for the
//! Grid'5000 cluster, the xDSL Daisy desktop grid and the campus LAN
//! (GCC optimisation level 0).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dperf::OptLevel;
use p2p_perf::experiments::fig11_topology_comparison;
use p2p_perf::{PlatformKind, Scenario};
use p2pdc_bench::{bench_app, bench_sizes, tiny_app};

fn bench_fig11(c: &mut Criterion) {
    let fig = fig11_topology_comparison(&bench_app(), &bench_sizes(), OptLevel::O0);
    println!("\n{}", fig.render());

    let mut group = c.benchmark_group("fig11_prediction_per_platform");
    group.sample_size(10);
    for platform in [
        PlatformKind::Grid5000,
        PlatformKind::Xdsl,
        PlatformKind::Lan,
    ] {
        group.bench_with_input(
            BenchmarkId::new("predict", platform.label()),
            &platform,
            |b, &platform| {
                b.iter(|| {
                    Scenario::new(platform, 4)
                        .with_app(tiny_app())
                        .with_opt(OptLevel::O0)
                        .predict()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
