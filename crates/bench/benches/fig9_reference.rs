//! Fig. 9 — Stage-1 reference execution time of the obstacle problem on the
//! Bordeplage cluster, for every GCC optimisation level and 2–32 peers.
//!
//! The bench measures the cost of producing one reference point (a full P2PDC
//! simulated execution) and prints the regenerated figure at the reduced
//! workload scale. Run `cargo run -p p2pdc-bench --bin experiments fig9` for
//! the paper-scale series.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dperf::OptLevel;
use p2p_perf::experiments::fig9_reference_times;
use p2p_perf::{PlatformKind, Scenario};
use p2pdc_bench::{bench_app, bench_sizes, tiny_app};

fn bench_fig9(c: &mut Criterion) {
    // Print the regenerated figure once, at the reduced workload scale.
    let fig = fig9_reference_times(&bench_app(), &bench_sizes());
    println!("\n{}", fig.render());

    let mut group = c.benchmark_group("fig9_reference_run");
    group.sample_size(10);
    for opt in [OptLevel::O0, OptLevel::O3] {
        for &n in &[2usize, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("opt{}", opt.label()), n),
                &n,
                |b, &n| {
                    b.iter(|| {
                        Scenario::new(PlatformKind::Grid5000, n)
                            .with_app(tiny_app())
                            .with_opt(opt)
                            .run_reference()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
