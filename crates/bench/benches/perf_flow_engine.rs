//! Max–min flow-engine throughput: dirty-component engine vs bucket-queue
//! engine vs scan engine vs the seed baseline.
//!
//! Measures complete simulation runs of N concurrent flows (every flow
//! started at t = 0, run until the event queue drains) on two topologies:
//!
//! * a 64-host star ("dumbbell" access pattern: many flows funnel into a few
//!   destinations, so every arrival/departure rebalances a shared link), and
//! * the paper's xDSL Daisy DSLAM topology (deep routes, shared uplinks).
//!
//! Five engines are compared:
//!
//! * `baseline` — the seed engine (`netsim::baseline`): HashMap flow table,
//!   from-scratch rebalances, global version counter — O(F) reschedules per
//!   flow event. Skipped above 1000 flows (it is quadratic in flow events
//!   and takes minutes there).
//! * `scan` — the PR 1 incremental engine, retained behind
//!   [`RebalanceEngine::ScanPerEvent`]: slab flow table, persistent link
//!   incidence, per-flow versions, but one rebalance per event with a
//!   linear bottleneck scan over the touched links.
//! * `bucketed` — the PR 2 engine ([`RebalanceEngine::BucketedBatched`]):
//!   same data structures, but bottlenecks pop from the monotone bucket
//!   queue and all rebalances of one simulated instant are coalesced into a
//!   single batched pass.
//! * `dirty` — the PR 3 engine ([`RebalanceEngine::DirtyComponent`]):
//!   batching plus a flush limited to the connected component(s) of links
//!   actually touched since the last flush. [`RebalanceEngine::ParallelShard`]
//!   rides on it and additionally shards multi-component flushes across
//!   worker threads (the `flow_engine_parallel` group below).
//! * `warm` — the current default ([`RebalanceEngine::WarmStart`]): the
//!   dirty-component flush, but each component's fill resumes from its
//!   persisted bottleneck record instead of replaying from round zero —
//!   flows that froze strictly below the first affected saturation level
//!   are never walked at all. `warm_dslam_churn/10000` against
//!   `dirty_dslam_churn/10000` is the engine's acceptance comparison: one
//!   giant coupled component under 10k-flow churn, exactly the shape where
//!   a cold component-limited flush degenerates to a full recompute.
//!
//! The heavy-churn scenario (`*_dslam_churn/10000`) is the PR 2 acceptance
//! workload: 10 000 concurrent flows over a 256-host DSLAM platform, where
//! the linear link scan and the per-event rebalance cadence of the PR 1
//! engine dominate. The DSLAM fabric couples every flow through the metro
//! ring, so it is a near-single-component worst case for `dirty` — the
//! number to watch there is that it does not regress against `bucketed`.
//!
//! The multi-component scenario (`flow_engine_multi`, 10 000 flows over a
//! 16-tree [`dslam_forest`]) is the dirty-component acceptance workload:
//! most flows are long-lived background traffic spread over 15 disjoint
//! trees, churn is concentrated in the remaining tree, and every completion
//! anywhere forces the full engines to walk the whole active set while
//! `dirty` walks one tree's component.
//!
//! The parallel-shard scenario (`flow_engine_parallel`, 10 000 flows over a
//! 16-tree [`dslam_forest_mirrored`]) is the [`RebalanceEngine::ParallelShard`]
//! acceptance workload: identical trees carry identical flow patterns, so
//! arrivals and departures land in lock-step across all 16 trees and every
//! batched flush spans 16 dirty components at once — the shardable shape.
//! The same dirty-engine run is measured as the single-threaded reference,
//! and the parallel engine is swept over worker budgets (1, 2, 4, 8). On a
//! multi-core machine the fill parallelises to ~min(threads, trees)× minus
//! the serial gather/merge; on a single-core machine the sweep measures the
//! fork–join overhead instead (the numbers to compare are `parallel_*_t1`,
//! which must match `dirty`, and the overhead of `t2`+ under time-slicing).
//! The single-component worst case rides in the churn group as
//! `parallel8_dslam_churn`: the metro ring couples everything, sharding
//! never engages, and the number to watch is parity with `dirty`.
//!
//! Recorded reference numbers live in `BENCH_flow_engine.json` at the
//! repository root (regenerate with `CRITERION_SHIM_JSON=... cargo bench
//! --bench perf_flow_engine`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netsim::baseline::BaselineNetwork;
use netsim::{
    daisy_xdsl, dslam_forest, dslam_forest_mirrored, HostSpec, LinkSpec, NetEvent, NetWorldEvent,
    Network, Platform, PlatformBuilder, RebalanceEngine, Scheduler, SharingMode, Topology,
};
use p2p_common::{Bandwidth, DataSize, HostId, SimDuration};

#[derive(Debug, Clone, Copy)]
enum Ev {
    Net(NetEvent),
}
impl From<NetEvent> for Ev {
    fn from(e: NetEvent) -> Self {
        Ev::Net(e)
    }
}
impl NetWorldEvent for Ev {
    fn as_net_event(&self) -> Option<NetEvent> {
        let Ev::Net(e) = self;
        Some(*e)
    }
}

/// A star of `n` hosts around one switch — the dumbbell access pattern.
fn star(n: usize) -> Platform {
    let mut b = PlatformBuilder::new();
    let sw = b.add_router("sw");
    let spec = LinkSpec::new(Bandwidth::from_mbps(100.0), SimDuration::from_micros(100));
    for i in 0..n {
        let h = b.add_host(
            format!("h{i}"),
            format!("10.{}.{}.{}", i / 62500, (i / 250) % 250, i % 250 + 1)
                .parse()
                .unwrap(),
            HostSpec::default(),
        );
        b.add_host_link(format!("l{i}"), h, sw, spec);
    }
    b.build()
}

fn dslam(hosts: usize) -> Topology {
    daisy_xdsl(hosts.clamp(8, 1024), HostSpec::default(), 42)
}

/// The workload: `flows` transfers between pseudo-random host pairs, all
/// started at t = 0 (worst case for rebalance churn: every arrival and every
/// completion triggers a rebalance while all other flows are in flight).
fn flow_list(hosts: usize, flows: usize) -> Vec<(HostId, HostId, DataSize)> {
    (0..flows)
        .map(|i| {
            let src = (i * 7 + 1) % hosts;
            let dst = (i * 13 + hosts / 2) % hosts;
            let dst = if dst == src { (dst + 1) % hosts } else { dst };
            (
                HostId::new(src as u32),
                HostId::new(dst as u32),
                DataSize::from_bytes(200_000 + (i as u64 * 37_411) % 800_000),
            )
        })
        .collect()
}

/// Run the workload through the incremental engine; returns delivered count.
fn run_incremental(
    platform: Platform,
    engine: RebalanceEngine,
    flows: &[(HostId, HostId, DataSize)],
) -> u64 {
    let mut net = Network::with_engine(platform, SharingMode::MaxMinFair, engine);
    let mut sched: Scheduler<Ev> = Scheduler::new();
    for (i, &(src, dst, size)) in flows.iter().enumerate() {
        net.start_flow(&mut sched, src, dst, size, i as u64);
    }
    let mut delivered = 0u64;
    while let Some((_, Ev::Net(ne))) = sched.pop() {
        delivered += net.on_event(&mut sched, ne).len() as u64;
    }
    assert_eq!(delivered, flows.len() as u64);
    delivered
}

/// Run the workload through the incremental engine until `stop` deliveries,
/// leaving the remaining flows in flight — sustained churn against a static
/// background; returns delivered count.
fn run_incremental_until(
    platform: Platform,
    engine: RebalanceEngine,
    flows: &[(HostId, HostId, DataSize)],
    stop: u64,
) -> u64 {
    let mut net = Network::with_engine(platform, SharingMode::MaxMinFair, engine);
    let mut sched: Scheduler<Ev> = Scheduler::new();
    for (i, &(src, dst, size)) in flows.iter().enumerate() {
        net.start_flow(&mut sched, src, dst, size, i as u64);
    }
    let mut delivered = 0u64;
    while delivered < stop {
        let Some((_, Ev::Net(ne))) = sched.pop() else {
            panic!("drained before {stop} deliveries");
        };
        delivered += net.on_event(&mut sched, ne).len() as u64;
    }
    assert_eq!(delivered, stop);
    delivered
}

/// Run the workload through the parallel-shard engine with an explicit
/// worker budget (the work threshold stays at the engine default); returns
/// delivered count.
fn run_parallel(platform: Platform, threads: usize, flows: &[(HostId, HostId, DataSize)]) -> u64 {
    let mut net = Network::with_engine(
        platform,
        SharingMode::MaxMinFair,
        RebalanceEngine::ParallelShard,
    );
    net.set_config(net.config().workers(threads));
    let mut sched: Scheduler<Ev> = Scheduler::new();
    for (i, &(src, dst, size)) in flows.iter().enumerate() {
        net.start_flow(&mut sched, src, dst, size, i as u64);
    }
    let mut delivered = 0u64;
    while let Some((_, Ev::Net(ne))) = sched.pop() {
        delivered += net.on_event(&mut sched, ne).len() as u64;
    }
    assert_eq!(delivered, flows.len() as u64);
    delivered
}

/// Run the workload through the retained seed engine; returns delivered count.
fn run_baseline(platform: Platform, flows: &[(HostId, HostId, DataSize)]) -> u64 {
    let mut net = BaselineNetwork::new(platform, SharingMode::MaxMinFair);
    let mut sched: Scheduler<Ev> = Scheduler::new();
    for (i, &(src, dst, size)) in flows.iter().enumerate() {
        net.start_flow(&mut sched, src, dst, size, i as u64);
    }
    let mut delivered = 0u64;
    while let Some((_, Ev::Net(ne))) = sched.pop() {
        delivered += net.on_event(&mut sched, ne).len() as u64;
    }
    assert_eq!(delivered, flows.len() as u64);
    delivered
}

fn bench_flow_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_engine");
    group.sample_size(10);
    for &n_flows in &[10usize, 100, 1000] {
        let hosts = 64;
        let flows = flow_list(hosts, n_flows);
        // Dumbbell / star.
        let star_platform = star(hosts);
        for (label, engine) in ENGINES {
            group.bench_with_input(
                BenchmarkId::new(format!("{label}_star"), n_flows),
                &flows,
                |b, flows| b.iter(|| run_incremental(star_platform.clone(), engine, flows)),
            );
        }
        group.bench_with_input(
            BenchmarkId::new("baseline_star", n_flows),
            &flows,
            |b, flows| b.iter(|| run_baseline(star_platform.clone(), flows)),
        );
        // xDSL DSLAM topology (routes through DSLAM + metro + ring links).
        let topo = dslam(hosts);
        let dslam_flows: Vec<_> = flows
            .iter()
            .map(|&(s, d, size)| (topo.hosts[s.index()], topo.hosts[d.index()], size))
            .collect();
        for (label, engine) in ENGINES {
            group.bench_with_input(
                BenchmarkId::new(format!("{label}_dslam"), n_flows),
                &dslam_flows,
                |b, flows| b.iter(|| run_incremental(topo.platform.clone(), engine, flows)),
            );
        }
        group.bench_with_input(
            BenchmarkId::new("baseline_dslam", n_flows),
            &dslam_flows,
            |b, flows| b.iter(|| run_baseline(topo.platform.clone(), flows)),
        );
    }
    group.finish();

    // Heavy churn: 10k concurrent flows over a 256-host DSLAM platform. The
    // seed baseline is omitted — it is O(F) reschedules per flow event and
    // needs minutes per run at this scale; `scan` is the PR 1 engine. The
    // metro ring couples (nearly) every flow, so this is the dirty engine's
    // worst case: one giant component, where "don't regress" is the bar.
    let mut churn = c.benchmark_group("flow_engine_churn");
    churn.sample_size(5);
    let hosts = 256;
    let n_flows = 10_000;
    let topo = dslam(hosts);
    let churn_flows: Vec<_> = flow_list(hosts, n_flows)
        .iter()
        .map(|&(s, d, size)| (topo.hosts[s.index()], topo.hosts[d.index()], size))
        .collect();
    for (label, engine) in ENGINES {
        churn.bench_with_input(
            BenchmarkId::new(format!("{label}_dslam_churn"), n_flows),
            &churn_flows,
            |b, flows| b.iter(|| run_incremental(topo.platform.clone(), engine, flows)),
        );
    }
    // The parallel engine's single-component worst case: the metro ring
    // couples everything, so sharding never engages and the eight-worker
    // budget must ride the dirty-engine path at parity (the ≤1.05× bar).
    churn.bench_with_input(
        BenchmarkId::new("parallel8_dslam_churn", n_flows),
        &churn_flows,
        |b, flows| b.iter(|| run_parallel(topo.platform.clone(), 8, flows)),
    );
    // The warm-start acceptance scenario: the same single coupled component,
    // but skewed — 9600 static heavy flows pin the low saturation levels
    // while 400 small flows churn at the high ones, measured until the
    // churn cohort drains. Every departure's resume level sits above the
    // whole static population, so the warm engine replays a few hundred
    // flows per flush where a cold component-limited flush replays all
    // 10 000 (the dense takeover makes it a full recompute). This is the
    // ≥3× bar from the warm-start issue; the uniform `*_dslam_churn`
    // workload above also measures background completions, which resume
    // low by construction and cap the uniform ratio near 2.5×.
    let skew_flows = skewed_workload(&topo);
    for (label, engine) in [
        ("warm", RebalanceEngine::WarmStart),
        ("dirty", RebalanceEngine::DirtyComponent),
    ] {
        churn.bench_with_input(
            BenchmarkId::new(format!("{label}_dslam_skew"), n_flows),
            &skew_flows,
            |b, flows| b.iter(|| run_incremental_until(topo.platform.clone(), engine, flows, 400)),
        );
    }
    churn.finish();

    // Multi-component heavy churn: 10k flows over a 16-tree DSLAM forest —
    // the dirty-component acceptance scenario. 9600 long background flows
    // spread over trees 1..15 stay in flight for most of the run; 400 small
    // churning flows concentrate in tree 0. Every arrival/departure forces
    // the full engines to reset and re-walk the whole active set, while the
    // dirty engine touches only the component (tree) that changed.
    let mut multi = c.benchmark_group("flow_engine_multi");
    multi.sample_size(5);
    let forest = dslam_forest(16, 64, HostSpec::default(), 42);
    let multi_flows = forest_churn_workload(&forest, 9600, 400);
    assert_eq!(multi_flows.len(), n_flows);
    for (label, engine) in ENGINES {
        multi.bench_with_input(
            BenchmarkId::new(format!("{label}_forest_churn"), multi_flows.len()),
            &multi_flows,
            |b, flows| b.iter(|| run_incremental(forest.platform.clone(), engine, flows)),
        );
    }
    multi.finish();

    // Parallel shards: 10k flows mirrored across a 16-tree replica forest —
    // identical trees, identical per-tree flow pattern, so every arrival
    // and departure happens in all 16 trees at the same instant and every
    // flush spans 16 dirty components. The dirty engine is the
    // single-threaded reference; the parallel engine sweeps its worker
    // budget.
    let mut par = c.benchmark_group("flow_engine_parallel");
    par.sample_size(5);
    let mirror = dslam_forest_mirrored(16, 64, HostSpec::default(), 42);
    let par_flows = mirrored_workload(&mirror, n_flows);
    assert_eq!(par_flows.len(), n_flows);
    par.bench_with_input(
        BenchmarkId::new("dirty_mirror_churn", n_flows),
        &par_flows,
        |b, flows| {
            b.iter(|| {
                run_incremental(
                    mirror.platform.clone(),
                    RebalanceEngine::DirtyComponent,
                    flows,
                )
            })
        },
    );
    for threads in [1usize, 2, 4, 8] {
        par.bench_with_input(
            BenchmarkId::new(format!("parallel_mirror_churn_t{threads}"), n_flows),
            &par_flows,
            |b, flows| b.iter(|| run_parallel(mirror.platform.clone(), threads, flows)),
        );
    }
    par.finish();
}

/// The mirrored-churn workload: the same index-derived intra-tree flow
/// pattern replicated into every tree of the replica forest, sizes
/// staggered so completions cascade. Every simulated instant that sees an
/// event in one tree sees the same event in all of them.
fn mirrored_workload(forest: &Topology, total: usize) -> Vec<(HostId, HostId, DataSize)> {
    let trees = forest.components.len();
    let per_tree = total / trees;
    let mut flows = Vec::with_capacity(trees * per_tree);
    for t in 0..trees {
        let tree = forest.component_hosts(t);
        for i in 0..per_tree {
            let src = (i * 7 + 1) % tree.len();
            let dst = (i * 13 + tree.len() / 2) % tree.len();
            let dst = if dst == src {
                (dst + 1) % tree.len()
            } else {
                dst
            };
            flows.push((
                tree[src],
                tree[dst],
                DataSize::from_bytes(200_000 + (i as u64 * 37_411) % 800_000),
            ));
        }
    }
    flows
}

/// The incremental engines under comparison, newest first.
const ENGINES: [(&str, RebalanceEngine); 4] = [
    ("warm", RebalanceEngine::WarmStart),
    ("dirty", RebalanceEngine::DirtyComponent),
    ("bucketed", RebalanceEngine::BucketedBatched),
    ("scan", RebalanceEngine::ScanPerEvent),
];

/// The skewed single-component workload: 9600 effectively-permanent heavy
/// flows among the first 128 hosts (their access and DSLAM uplinks saturate
/// at the low fill levels and stay saturated), plus 400 small churning
/// flows among the second 128 hosts, whose lightly-loaded uplinks saturate
/// at the high levels. The metro ring still couples everything into one
/// component. Measured with `run_incremental_until(.., 400)`: the churn
/// cohort drains, the background never does.
fn skewed_workload(topo: &Topology) -> Vec<(HostId, HostId, DataSize)> {
    let pick = |base: usize, span: usize, i: usize, m: (usize, usize)| {
        let src = base + (i * m.0 + 1) % span;
        let dst = base + (i * m.1 + span / 2) % span;
        let dst = if dst == src {
            base + (dst - base + 1) % span
        } else {
            dst
        };
        (topo.hosts[src], topo.hosts[dst])
    };
    let mut flows = Vec::with_capacity(10_000);
    for i in 0..9600 {
        let (s, d) = pick(0, 128, i, (7, 13));
        flows.push((s, d, DataSize::from_bytes(1_000_000_000_000)));
    }
    for i in 0..400 {
        let (s, d) = pick(128, 128, i, (5, 11));
        flows.push((
            s,
            d,
            DataSize::from_bytes(200_000 + (i as u64 * 37_411) % 400_000),
        ));
    }
    flows
}

/// The multi-component workload: `background` large flows spread round-robin
/// over trees 1.., `churn` small flows inside tree 0, all intra-tree (the
/// forest is disconnected). Background flows are ~40× larger, so they are
/// still draining while the churn tree's arrivals and departures force flush
/// after flush.
fn forest_churn_workload(
    forest: &Topology,
    background: usize,
    churn: usize,
) -> Vec<(HostId, HostId, DataSize)> {
    let trees = forest.components.len();
    let mut flows = Vec::with_capacity(background + churn);
    for i in 0..background {
        let tree = forest.component_hosts(1 + i % (trees - 1));
        let src = (i * 7 + 1) % tree.len();
        let dst = (i * 13 + tree.len() / 2) % tree.len();
        let dst = if dst == src {
            (dst + 1) % tree.len()
        } else {
            dst
        };
        flows.push((
            tree[src],
            tree[dst],
            DataSize::from_bytes(8_000_000 + (i as u64 * 97_003) % 8_000_000),
        ));
    }
    let tree = forest.component_hosts(0);
    for i in 0..churn {
        let src = (i * 5 + 1) % tree.len();
        let dst = (i * 11 + tree.len() / 2) % tree.len();
        let dst = if dst == src {
            (dst + 1) % tree.len()
        } else {
            dst
        };
        flows.push((
            tree[src],
            tree[dst],
            DataSize::from_bytes(200_000 + (i as u64 * 37_411) % 400_000),
        ));
    }
    flows
}

criterion_group!(benches, bench_flow_engine);
criterion_main!(benches);
