//! Table I — equivalent computing power of the cluster in a peer-to-peer
//! desktop grid over xDSL or LAN.

use criterion::{criterion_group, criterion_main, Criterion};
use dperf::OptLevel;
use p2p_perf::experiments::equivalence_table;
use p2pdc_bench::{bench_app, tiny_app};

fn bench_table1(c: &mut Criterion) {
    let table = equivalence_table(&bench_app(), &[2, 4, 8], &[2, 4, 8, 16, 32], OptLevel::O0);
    println!(
        "\n# Table I — equivalent computing power (reduced workload)\n{}",
        table.render()
    );

    let mut group = c.benchmark_group("table1_equivalence_search");
    group.sample_size(10);
    group.bench_function("build_table", |b| {
        b.iter(|| equivalence_table(&tiny_app(), &[2, 4], &[2, 4, 8], OptLevel::O0))
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
