//! Robustness scenario benchmark — correlated churn on the DSLAM forest.
//!
//! Times complete runs of the fault-model harness (overlay + heartbeats as
//! real flows + scripted mass failure + relay re-routing) at three scales,
//! and prints a summary table of what each run observed: detection latency,
//! session outcomes and heartbeat traffic. The scenarios are recorded in
//! `BENCH_robustness.json` and gated by `bench_gate` in CI, so a >3×
//! slowdown of the fault path fails the build.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2p_common::SimTime;
use p2pdc_bench::robustness::{run_robustness, RobustnessConfig};

/// (label, trees, nodes per tree) — kill tree 1 of each.
const SCALES: &[(&str, usize, usize)] = &[("small", 3, 8), ("paper", 4, 16), ("wide", 8, 16)];

fn config(trees: usize, nodes_per_tree: usize) -> RobustnessConfig {
    RobustnessConfig {
        trees,
        nodes_per_tree,
        horizon: SimTime::from_secs(120),
        ..RobustnessConfig::default()
    }
}

fn bench_robustness(c: &mut Criterion) {
    println!("\n# Robustness — correlated churn, heartbeat detection, re-routing");
    println!(
        "{:>8}  {:>7}  {:>11}  {:>9}  {:>8}  {:>8}  {:>10}",
        "scale", "victims", "detect_lat", "rerouted", "failed", "wedged", "hb_flows"
    );
    for &(label, trees, nodes) in SCALES {
        let report = run_robustness(&config(trees, nodes));
        assert!(report.invariant_violations.is_empty());
        assert_eq!(report.wedged_sessions, 0);
        println!(
            "{:>8}  {:>7}  {:>11}  {:>9}  {:>8}  {:>8}  {:>10}",
            label,
            report.mass_victims + report.crash_victims,
            format!("{}", report.mass_detection_latency),
            report.rerouted_sessions,
            report.failed_sessions,
            report.wedged_sessions,
            report.heartbeat_flows
        );
    }
    println!();

    let mut group = c.benchmark_group("robustness");
    group.sample_size(10);
    for &(label, trees, nodes) in SCALES {
        let cfg = config(trees, nodes);
        group.bench_with_input(BenchmarkId::new("churn", label), &cfg, |b, cfg| {
            b.iter(|| run_robustness(cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_robustness);
criterion_main!(benches);
