//! Extension — synchronous vs. asynchronous iterative schemes over slow links.
//!
//! The paper's future work points at asynchronous schemes for heterogeneous
//! P2P platforms; P2PSAP exists precisely to reconfigure channels when the
//! scheme changes. This bench runs the P2PDC reference executor with both
//! schemes on the xDSL platform: the asynchronous scheme pays ~30 % more
//! iterations but never blocks on the high-latency last miles.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dperf::OptLevel;
use p2p_perf::{PlatformKind, Scenario};
use p2pdc_bench::{bench_app, tiny_app};
use p2psap::IterativeScheme;

fn bench_async(c: &mut Criterion) {
    println!("\n# Extension — synchronous vs asynchronous scheme (xDSL, reduced workload)");
    println!(
        "{:>8}  {:>16}  {:>16}  {:>8}",
        "peers", "synchronous [s]", "asynchronous [s]", "speedup"
    );
    for &n in &[4usize, 8, 16] {
        let base = Scenario::new(PlatformKind::Xdsl, n)
            .with_app(bench_app())
            .with_opt(OptLevel::O0);
        let sync = base
            .clone()
            .with_scheme(IterativeScheme::Synchronous)
            .run_reference();
        let asyn = base
            .with_scheme(IterativeScheme::Asynchronous)
            .run_reference();
        let s = sync.execution_time.as_secs_f64();
        let a = asyn.execution_time.as_secs_f64();
        println!("{n:>8}  {s:>16.3}  {a:>16.3}  {:>7.2}x", s / a);
    }
    println!();

    let mut group = c.benchmark_group("ext_async_schemes");
    group.sample_size(10);
    for scheme in [IterativeScheme::Synchronous, IterativeScheme::Asynchronous] {
        group.bench_with_input(
            BenchmarkId::new("xdsl8", scheme.label()),
            &scheme,
            |b, &scheme| {
                b.iter(|| {
                    Scenario::new(PlatformKind::Xdsl, 8)
                        .with_app(tiny_app())
                        .with_scheme(scheme)
                        .run_reference()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_async);
criterion_main!(benches);
