//! Ablation C — bottleneck (SimGrid-analytic) vs. max–min fair bandwidth
//! sharing in the network model.
//!
//! The paper's trace replay uses SimGrid's analytic model; this ablation shows
//! where that simplification matters: when many halo flows cross the shared
//! LAN backbone simultaneously, the fair-sharing model predicts longer times.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dperf::OptLevel;
use netsim::SharingMode;
use p2p_perf::{PlatformKind, Scenario};
use p2pdc_bench::{bench_app, tiny_app};

fn bench_flow_model(c: &mut Criterion) {
    println!(
        "\n# Ablation C — network sharing model (LAN, optimization level 0, reduced workload)"
    );
    println!(
        "{:>8}  {:>16}  {:>16}  {:>8}",
        "peers", "bottleneck [s]", "max-min fair [s]", "ratio"
    );
    for &n in &[4usize, 8, 16] {
        let base = Scenario::new(PlatformKind::Lan, n)
            .with_app(bench_app())
            .with_opt(OptLevel::O0);
        let analytic = base.clone().with_sharing(SharingMode::Bottleneck).predict();
        let fair = base.with_sharing(SharingMode::MaxMinFair).predict();
        let a = analytic.total.as_secs_f64();
        let f = fair.total.as_secs_f64();
        println!("{n:>8}  {a:>16.3}  {f:>16.3}  {:>8.3}", f / a);
    }
    println!();

    let mut group = c.benchmark_group("ablation_flow_model");
    group.sample_size(10);
    for mode in [SharingMode::Bottleneck, SharingMode::MaxMinFair] {
        let label = match mode {
            SharingMode::Bottleneck => "bottleneck",
            SharingMode::MaxMinFair => "maxmin",
        };
        group.bench_with_input(
            BenchmarkId::new("predict_lan8", label),
            &mode,
            |b, &mode| {
                b.iter(|| {
                    Scenario::new(PlatformKind::Lan, 8)
                        .with_app(tiny_app())
                        .with_sharing(mode)
                        .predict()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_flow_model);
criterion_main!(benches);
