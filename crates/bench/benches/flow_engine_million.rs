//! Million-flow scale: 1M concurrent flows with churn on the ISP hierarchy.
//!
//! The paper's evaluation tops out at ~1024-node xDSL platforms; the ROADMAP
//! north star is "millions of users". Above 10k flows the bottleneck moves
//! from the fill (solved by the engine PRs) to the *event core*: heap
//! footprint, bytes per flow, and the cost of keeping a million pending
//! completion events ordered. This bench pins that regime:
//!
//! * topology: [`isp_hierarchy`] at its default fan-outs — 4 backbones × 8
//!   metros × 16 DSLAMs × 40 subscribers = 20 480 hosts behind 5–10 Mbps
//!   last miles;
//! * workload: 1 000 000 flows between fixed subscriber pairs (8 disjoint
//!   pairs per DSLAM, ~244 flows each), all started at t = 0, then run to
//!   drain with a churn cohort: the first 50 000 completions each start a
//!   replacement flow on their pair. Equal-size flows on a pair complete in
//!   the same simulated instant, so the drain is completion-heavy — the
//!   calendar-queue scheduler's target shape;
//! * engine: the default [`RebalanceEngine::WarmStart`].
//!
//! Besides wall clock, the bench records telemetry through the criterion
//! shim's metric lines (`{"id":…,"metric":…,"value":…}`):
//!
//! * `peak_rss_bytes` — kernel high-water mark (`VmHWM`) over the run;
//! * `bytes_per_flow` — the engine's own accounting
//!   ([`Network::memory_footprint`] plus [`Scheduler::footprint_bytes`])
//!   divided by the live population, sampled at full population;
//! * `events_per_sec` — scheduler events delivered per wall-clock second
//!   over the whole start + drain.
//!
//! `bench_gate` fails CI when `peak_rss_bytes` or `bytes_per_flow` exceed
//! 1.5× their recorded baselines — memory regressions gate the same way
//! speed regressions do. Recorded numbers live in `BENCH_flow_engine.json`
//! (regenerate with `CRITERION_SHIM_JSON=… cargo bench --bench
//! flow_engine_million`); they come from a 1-core VM, so treat events/sec
//! as a floor, not a ceiling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netsim::{
    isp_hierarchy, HostSpec, IspHierarchyParams, NetEvent, NetWorldEvent, Network, RebalanceEngine,
    Scheduler, SharingMode, Topology,
};
use p2p_common::{DataSize, HostId};
use p2pdc_bench::telemetry;
use std::cell::Cell;
use std::time::Instant;

/// Concurrent flows at t = 0.
const TOTAL_FLOWS: usize = 1_000_000;
/// Completions that each start a replacement flow on their pair.
const CHURN: u64 = 50_000;
/// Disjoint subscriber pairs per DSLAM (16 of the 40 hosts).
const PAIRS_PER_DSLAM: usize = 8;

#[derive(Debug, Clone, Copy)]
enum Ev {
    Net(NetEvent),
}
impl From<NetEvent> for Ev {
    fn from(e: NetEvent) -> Self {
        Ev::Net(e)
    }
}
impl NetWorldEvent for Ev {
    fn as_net_event(&self) -> Option<NetEvent> {
        let Ev::Net(e) = self;
        Some(*e)
    }
}

/// The fixed subscriber pairs: `PAIRS_PER_DSLAM` disjoint (src, dst) host
/// pairs inside every DSLAM. Keeping the pair count small (4096) bounds the
/// route-cache and Dijkstra cost; keeping pairs disjoint keeps each pair's
/// last-mile links — and therefore its fill component — independent, so the
/// load on the *event core* (a million pending completions) dominates.
fn dslam_pairs(topo: &Topology, params: IspHierarchyParams) -> Vec<(HostId, HostId)> {
    let per_dslam = params.hosts_per_dslam;
    assert!(per_dslam >= 2 * PAIRS_PER_DSLAM, "need 16 hosts per DSLAM");
    let dslams = topo.hosts.len() / per_dslam;
    let mut pairs = Vec::with_capacity(dslams * PAIRS_PER_DSLAM);
    for d in 0..dslams {
        let base = d * per_dslam;
        for j in 0..PAIRS_PER_DSLAM {
            pairs.push((topo.hosts[base + 2 * j], topo.hosts[base + 2 * j + 1]));
        }
    }
    pairs
}

#[derive(Debug, Clone, Copy, Default)]
struct MillionStats {
    bytes_per_flow: f64,
    events_per_sec: f64,
    live_at_peak: usize,
}

/// One full run: start `TOTAL_FLOWS`, drain with the churn cohort, return
/// the telemetry sampled along the way.
fn run_million(topo: &Topology, pairs: &[(HostId, HostId)]) -> MillionStats {
    let started = Instant::now();
    let mut net = Network::with_engine(
        topo.platform.clone(),
        SharingMode::MaxMinFair,
        RebalanceEngine::WarmStart,
    );
    let mut sched: Scheduler<Ev> = Scheduler::new();
    for f in 0..TOTAL_FLOWS {
        let p = f % pairs.len();
        let (src, dst) = pairs[p];
        // Equal sizes within a pair (one completion cohort per pair),
        // staggered across the 8 pairs of a DSLAM.
        let size = DataSize::from_bytes(100_000 * (1 + (p % PAIRS_PER_DSLAM) as u64));
        net.start_flow(&mut sched, src, dst, size, f as u64);
    }
    let mut stats = MillionStats::default();
    let mut delivered = 0u64;
    let mut churned = 0u64;
    let mut measured = false;
    while let Some((_, Ev::Net(ne))) = sched.pop() {
        let done = net.on_event(&mut sched, ne);
        if !measured && !done.is_empty() {
            // First completion: every flow has activated, the population is
            // at its peak — sample the per-flow footprint here.
            let fp = net.memory_footprint();
            stats.bytes_per_flow = fp.bytes_per_flow(sched.footprint_bytes());
            stats.live_at_peak = fp.live_flows;
            measured = true;
        }
        for d in done {
            delivered += 1;
            if churned < CHURN && d.token < TOTAL_FLOWS as u64 {
                let p = (d.token as usize) % pairs.len();
                let (src, dst) = pairs[p];
                net.start_flow(
                    &mut sched,
                    src,
                    dst,
                    DataSize::from_bytes(50_000),
                    TOTAL_FLOWS as u64 + churned,
                );
                churned += 1;
            }
        }
    }
    assert_eq!(delivered, TOTAL_FLOWS as u64 + churned);
    assert_eq!(churned, CHURN);
    stats.events_per_sec = sched.delivered() as f64 / started.elapsed().as_secs_f64();
    stats
}

fn bench_flow_engine_million(c: &mut Criterion) {
    let params = IspHierarchyParams::default();
    let mut topo = isp_hierarchy(params, HostSpec::default(), 42);
    let pairs = dslam_pairs(&topo, params);
    // Warm the route cache once: 4096 Dijkstras over the 21k-node graph are
    // topology cost, not engine cost, and every per-iteration platform clone
    // inherits the warmed cache.
    for &(src, dst) in &pairs {
        topo.platform.route(src, dst);
    }

    // Reset the kernel's peak-RSS water mark so the recorded peak reflects
    // the simulation, not the topology build. If the container forbids the
    // reset, the whole-process peak is reported instead (conservative).
    let _ = telemetry::reset_peak_rss();

    let stats = Cell::new(MillionStats::default());
    let mut group = c.benchmark_group("flow_engine_million");
    group.sample_size(1);
    group.bench_with_input(
        BenchmarkId::new("warm_hierarchy", TOTAL_FLOWS),
        &pairs,
        |b, pairs| b.iter(|| stats.set(run_million(&topo, pairs))),
    );
    group.finish();

    let id = format!("flow_engine_million/warm_hierarchy/{TOTAL_FLOWS}");
    let s = stats.get();
    assert!(
        s.live_at_peak > TOTAL_FLOWS * 9 / 10,
        "peak population lost"
    );
    c.record_metric(&id, "bytes_per_flow", s.bytes_per_flow);
    c.record_metric(&id, "events_per_sec", s.events_per_sec);
    if let Some(peak) = telemetry::peak_rss_bytes() {
        c.record_metric(&id, "peak_rss_bytes", peak as f64);
    }
}

criterion_group!(benches, bench_flow_engine_million);
criterion_main!(benches);
