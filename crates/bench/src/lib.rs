//! Shared helpers of the benchmark harness.
//!
//! The Criterion benches regenerate each figure/table at a reduced workload
//! scale (so `cargo bench` completes in minutes), while the `experiments`
//! binary runs the paper-scale workload and prints the full data series. Both
//! go through the same `p2p_perf::experiments` functions, so the numbers
//! reported by EXPERIMENTS.md can be reproduced either way.

#![warn(missing_docs)]

pub mod robustness;
pub mod telemetry;

use obstacle::ObstacleApp;

/// The peer counts used by the paper (2..32 by powers of two).
pub fn paper_sizes() -> Vec<usize> {
    vec![2, 4, 8, 16, 32]
}

/// A reduced set of peer counts for quick Criterion runs.
pub fn bench_sizes() -> Vec<usize> {
    vec![2, 4, 8]
}

/// The paper-scale obstacle workload (1200² grid, 900 sweeps).
pub fn paper_app() -> ObstacleApp {
    ObstacleApp::paper_scale()
}

/// A scaled-down obstacle workload with the same communication pattern, used
/// by the Criterion benches (about 1/150 of the paper-scale work).
pub fn bench_app() -> ObstacleApp {
    ObstacleApp {
        n: 600,
        sweeps: 120,
        flops_per_point: 21.0,
    }
}

/// An even smaller workload for the per-iteration ablation benches.
pub fn tiny_app() -> ObstacleApp {
    ObstacleApp {
        n: 240,
        sweeps: 40,
        flops_per_point: 21.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_ordered_by_size() {
        assert!(tiny_app().total_flops() < bench_app().total_flops());
        assert!(bench_app().total_flops() < paper_app().total_flops());
        assert_eq!(paper_sizes(), vec![2, 4, 8, 16, 32]);
        assert!(bench_sizes().iter().all(|s| paper_sizes().contains(s)));
    }
}
