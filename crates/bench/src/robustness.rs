//! The robustness scenario: heavy correlated churn on a `dslam_forest`.
//!
//! This is the harness behind the `robustness_churn` bench, the root
//! `tests/robustness_churn.rs` suite and the CI `robustness` job. One run
//! simulates, on a disconnected DSLAM forest:
//!
//! 1. a P2PDC overlay with one tracker per tree and one peer per host,
//!    exchanging **heartbeats as real netsim flows** (peer → tracker, inside
//!    each tree), so failure detection latency includes genuine transfer
//!    time;
//! 2. a scripted [`FaultPlan`]: one correlated **mass failure** that
//!    crash-stops every peer of one tree at once (DSLAM power loss), plus a
//!    sprinkle of individual peer crashes in the surviving trees;
//! 3. P2PSAP sessions rooted at each tree's first host; when a heartbeat
//!    timeout declares a session's remote dead, the session **re-routes
//!    through a surviving relay** with a bounded retry/backoff budget — or
//!    fails deterministically, never wedging.
//!
//! The run is fully deterministic: identical [`RobustnessConfig`]s produce
//! identical [`RobustnessReport`]s on every thread count (the flow engine's
//! parallel shard invariant) — the CI matrix enforces this across
//! `NETSIM_WORKERS` ∈ {1, 2, 8} and debug/release.

use netsim::{
    dslam_forest, run_world, EngineConfig, HostSpec, NetEvent, NetStats, NetWorldEvent, Network,
    RebalanceEngine, Scheduler, SharingMode, Topology, World,
};
use p2p_common::{
    DataSize, HostId, IpAddr, PeerId, PeerResources, SimDuration, SimTime, TrackerId,
};
use p2pdc::{FaultEvent, FaultPlan, HeartbeatConfig, HeartbeatManager, Overlay, OverlayConfig};
use p2psap::{IterativeScheme, RerouteOutcome, RetryPolicy, Socket};
use std::collections::BTreeMap;

/// Everything one robustness run depends on. Two equal configs produce
/// byte-identical [`RobustnessReport`]s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustnessConfig {
    /// Trees of the DSLAM forest (= disconnected platform components).
    pub trees: usize,
    /// End hosts per tree.
    pub nodes_per_tree: usize,
    /// Seed of the randomised last-mile bandwidths.
    pub seed: u64,
    /// Heartbeat timing (beat period, miss threshold, beat size).
    pub heartbeat: HeartbeatConfig,
    /// Session reroute retry/backoff budget.
    pub retry: RetryPolicy,
    /// Which tree the correlated mass failure kills.
    pub kill_component: usize,
    /// When the mass failure strikes.
    pub kill_at: SimTime,
    /// Individual peer crashes injected into the *surviving* trees (these
    /// are what exercises relay re-routing: a whole-tree kill leaves no
    /// surviving local endpoint to re-route).
    pub extra_peer_crashes: usize,
    /// When the first individual crash strikes (subsequent ones follow every
    /// 10 s).
    pub crash_start: SimTime,
    /// Simulated horizon: heartbeat rounds stop after this instant.
    pub horizon: SimTime,
    /// Bandwidth-sharing model for the heartbeat flows.
    pub sharing: SharingMode,
    /// Flow-engine generation plus threading knobs (worker budget,
    /// parallel threshold, split granularity).
    pub config: EngineConfig,
}

impl Default for RobustnessConfig {
    fn default() -> Self {
        RobustnessConfig {
            trees: 4,
            nodes_per_tree: 16,
            seed: 5,
            heartbeat: HeartbeatConfig::default(),
            retry: RetryPolicy::default(),
            kill_component: 1,
            kill_at: SimTime::from_secs(20),
            extra_peer_crashes: 3,
            crash_start: SimTime::from_secs(60),
            horizon: SimTime::from_secs(180),
            sharing: SharingMode::MaxMinFair,
            config: EngineConfig::new(RebalanceEngine::WarmStart),
        }
    }
}

/// What one robustness run observed. Deterministic given the config.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessReport {
    /// Peers killed by the correlated mass failure.
    pub mass_victims: usize,
    /// How many of them a heartbeat timeout detected by the horizon.
    pub mass_detected: usize,
    /// Mass-failure instant → last victim detected.
    pub mass_detection_latency: SimDuration,
    /// Individual crash victims in surviving trees.
    pub crash_victims: usize,
    /// Sessions that re-routed through a surviving relay.
    pub rerouted_sessions: usize,
    /// Sessions that exhausted their retry budget and failed.
    pub failed_sessions: usize,
    /// Detected-dead remotes whose session is still `Direct` — must be zero
    /// ("no wedged sessions").
    pub wedged_sessions: usize,
    /// All peers declared dead by heartbeat timeout (mass + individual).
    pub peers_detected: usize,
    /// Trackers declared dead by missed line beats.
    pub trackers_detected: usize,
    /// Heartbeat flows injected into the network.
    pub heartbeat_flows: u64,
    /// Heartbeat flows fully delivered.
    pub heartbeat_deliveries: u64,
    /// Overlay invariant violations after the run — must be empty.
    pub invariant_violations: Vec<String>,
    /// Live (non-crashed) peers left in the overlay.
    pub live_peers: usize,
    /// Total peers still in the overlay's maps (live + undetected dead).
    pub overlay_peers: usize,
    /// Total overlay protocol messages (joins, repairs, detections).
    pub overlay_messages: u64,
    /// Hosts whose peer is still live, per tree (feeds the post-churn
    /// prediction-accuracy check).
    pub survivor_hosts: Vec<Vec<HostId>>,
    /// Flow-engine statistics of the heartbeat traffic.
    pub net_stats: NetStats,
    /// Time of the last processed event.
    pub finished_at: SimTime,
}

/// The event alphabet of the robustness world.
enum Ev {
    /// Flow-engine bookkeeping.
    Net(NetEvent),
    /// One heartbeat round: inject beats, run detection, process failures.
    Beat,
    /// Deliver the faults scheduled at this instant.
    Fault,
}

impl From<NetEvent> for Ev {
    fn from(e: NetEvent) -> Self {
        Ev::Net(e)
    }
}

impl NetWorldEvent for Ev {
    fn as_net_event(&self) -> Option<NetEvent> {
        match self {
            Ev::Net(e) => Some(*e),
            _ => None,
        }
    }
}

struct RobustWorld {
    cfg: RobustnessConfig,
    net: Network,
    overlay: Overlay,
    hb: HeartbeatManager,
    plan: FaultPlan,
    /// One socket per tree, rooted at the tree's first host.
    sockets: Vec<Socket>,
    /// Tree index of every host.
    component_of: BTreeMap<HostId, usize>,
    /// Host → its peer, and back.
    peer_of_host: BTreeMap<HostId, PeerId>,
    host_of_peer: BTreeMap<PeerId, HostId>,
    /// Host each tracker is co-located on (heartbeat flow destination).
    tracker_host: BTreeMap<TrackerId, HostId>,
    /// Peers killed by the mass failure, with detection bookkeeping.
    mass_victims: Vec<PeerId>,
    mass_detected: usize,
    mass_last_detection: SimTime,
    crash_victims: usize,
    rerouted: usize,
    failed: usize,
    wedged: usize,
    peers_detected: usize,
    trackers_detected: usize,
    beat_deliveries: u64,
}

impl RobustWorld {
    /// Sync the overlay's logical clock to the scheduler clock.
    fn sync_clock(&mut self, now: SimTime) {
        let dt = now.duration_since(self.overlay.now());
        if !dt.is_zero() {
            self.overlay.advance_time(dt);
        }
    }

    /// Hosts of tree `c` whose peer is currently live, in host order.
    fn live_hosts_of(&self, c: usize) -> Vec<HostId> {
        self.component_of
            .iter()
            .filter(|&(h, &hc)| {
                hc == c
                    && self
                        .peer_of_host
                        .get(h)
                        .map(|&p| {
                            self.overlay.peer(p).is_some() && !self.overlay.is_peer_crashed(p)
                        })
                        .unwrap_or(false)
            })
            .map(|(&h, _)| h)
            .collect()
    }

    /// A heartbeat timeout declared `peer` dead: if a surviving socket holds
    /// a session towards its host, re-route (or fail) that session now.
    fn react_to_dead_peer(&mut self, peer: PeerId) {
        self.peers_detected += 1;
        if let Some(pos) = self.mass_victims.iter().position(|&v| v == peer) {
            // Count each mass victim once.
            self.mass_victims.swap_remove(pos);
            self.mass_victims.push(peer); // keep the id, mark via counter
            self.mass_detected += 1;
            self.mass_last_detection = self.overlay.now();
            // The whole tree died with it — nobody local survives to
            // re-route; sessions of that tree died with their endpoints.
            return;
        }
        let Some(&host) = self.host_of_peer.get(&peer) else {
            return;
        };
        let c = self.component_of[&host];
        let survivors = self.live_hosts_of(c);
        let socket = &mut self.sockets[c];
        let root = socket.local();
        let candidates: Vec<HostId> = survivors
            .into_iter()
            .filter(|&h| h != root && h != host)
            .collect();
        match socket.handle_remote_failure(self.net.platform_mut(), host, &candidates) {
            Some((RerouteOutcome::Rerouted { .. }, _)) => self.rerouted += 1,
            Some((RerouteOutcome::Failed, _)) => self.failed += 1,
            Some((RerouteOutcome::Retrying { .. }, _)) => {
                unreachable!("reroute_until_resolved only returns terminal outcomes")
            }
            None => {}
        }
    }
}

impl World for RobustWorld {
    type Event = Ev;

    fn handle(&mut self, sched: &mut Scheduler<Ev>, event: Ev) {
        let now = sched.now();
        match event {
            Ev::Net(ne) => {
                for d in self.net.on_event(sched, ne) {
                    self.beat_deliveries += 1;
                    self.hb.record_peer_beat(PeerId::new(d.token), now);
                }
            }
            Ev::Fault => {
                self.sync_clock(now);
                let impact = self.plan.deliver_due(&mut self.overlay, now);
                if now == self.cfg.kill_at {
                    self.mass_victims = impact.crashed_peers.clone();
                    // A correlated kill rewrites a whole component's traffic
                    // at once: drop the warm engine's fill records rather
                    // than warm-start across it. Purely conservative — the
                    // records are keyed and churn-bounded, so the engines
                    // agree bit for bit either way (proven by
                    // `tests/warm_faults.rs`) — but a cold fill is the
                    // faster path for a change this shape anyway.
                    self.net.invalidate_fill_records();
                } else {
                    self.crash_victims += impact.crashed_peers.len();
                }
            }
            Ev::Beat => {
                self.sync_clock(now);
                // Live peers beat their tracker through the real network.
                for beat in self.hb.due_peer_beats(&self.overlay) {
                    let Some(&dst) = self.tracker_host.get(&beat.tracker) else {
                        continue;
                    };
                    // Trees are disconnected: a beat can only ride a flow
                    // inside its own tree (re-homing keeps peers in-tree by
                    // IP proximity, but guard rather than panic on a route
                    // miss).
                    if self.component_of.get(&beat.src) != self.component_of.get(&dst) {
                        continue;
                    }
                    self.net.start_flow(
                        sched,
                        beat.src,
                        dst,
                        DataSize::from_bytes(beat.bytes),
                        beat.peer.raw(),
                    );
                }
                // Tracker line beats are management-plane (the line spans
                // disconnected trees, so they can't be netsim flows).
                self.hb.note_tracker_beats(&self.overlay, now);
                let detections = self.hb.detect(&mut self.overlay, now);
                self.trackers_detected += detections.trackers.len();
                for peer in detections.peers {
                    self.react_to_dead_peer(peer);
                }
                if now.saturating_add(self.cfg.heartbeat.beat_period) <= self.cfg.horizon {
                    sched.schedule_in(self.cfg.heartbeat.beat_period, Ev::Beat);
                }
            }
        }
    }
}

/// Build the forest, overlay, heartbeats, fault plan and sessions, run the
/// scenario to its horizon, and report what happened.
pub fn run_robustness(cfg: &RobustnessConfig) -> RobustnessReport {
    assert!(
        cfg.trees >= 2,
        "need a surviving tree next to the killed one"
    );
    assert!(
        cfg.kill_component < cfg.trees,
        "kill_component out of range"
    );
    let topo: Topology = dslam_forest(cfg.trees, cfg.nodes_per_tree, HostSpec::default(), cfg.seed);

    // One tracker per tree, on a reserved IP close (by IP distance) to the
    // tree's own 10.t.x.y block, co-located with the tree's first host.
    let tracker_ips: Vec<IpAddr> = (0..cfg.trees)
        .map(|t| IpAddr::from_octets(10, t as u8, 0, 250))
        .collect();
    let mut overlay = Overlay::bootstrap(OverlayConfig::default(), &tracker_ips);
    let mut tracker_host = BTreeMap::new();
    for (t, ip) in tracker_ips.iter().enumerate() {
        let id = overlay
            .trackers()
            .find(|tr| tr.ip == *ip)
            .expect("bootstrap created this tracker")
            .id;
        tracker_host.insert(id, topo.hosts[topo.components[t].start]);
    }

    // The plan captures the component → host map before the platform moves
    // into the network.
    let mut plan = FaultPlan::for_topology(&topo);

    let mut net = Network::with_config(topo.platform, cfg.sharing, cfg.config);

    // One peer per host, carrying its platform binding.
    let mut component_of = BTreeMap::new();
    let mut peer_of_host = BTreeMap::new();
    let mut host_of_peer = BTreeMap::new();
    for (c, range) in topo.components.iter().enumerate() {
        for &host in &topo.hosts[range.clone()] {
            let ip = net.platform().host(host).ip.expect("hosts have IPs");
            let (peer, _) = overlay.peer_join(ip, Some(host), PeerResources::xeon_em64t());
            component_of.insert(host, c);
            peer_of_host.insert(host, peer);
            host_of_peer.insert(peer, host);
        }
    }
    debug_assert!(overlay.check_invariants().is_empty());

    // Sessions: each tree's first host talks to every other host of its tree.
    let mut sockets = Vec::with_capacity(cfg.trees);
    for range in &topo.components {
        let hosts = &topo.hosts[range.clone()];
        let mut socket =
            Socket::new(hosts[0], IterativeScheme::Synchronous).with_retry_policy(cfg.retry);
        for &h in &hosts[1..] {
            socket.session(net.platform_mut(), h);
        }
        sockets.push(socket);
    }

    // The fault plan: the correlated kill plus staggered individual crashes
    // in surviving trees (never a tree's first host — that is the session
    // root whose death would void the re-routing exercise).
    plan.schedule(
        cfg.kill_at,
        FaultEvent::MassFailure {
            component: cfg.kill_component,
        },
    );
    let mut fault_times = vec![cfg.kill_at];
    let surviving: Vec<usize> = (0..cfg.trees)
        .filter(|&c| c != cfg.kill_component)
        .collect();
    for k in 0..cfg.extra_peer_crashes {
        let c = surviving[k % surviving.len()];
        let range = &topo.components[c];
        let back = 1 + k / surviving.len();
        if range.start + back >= range.end {
            break; // tree too small for another victim
        }
        let host = topo.hosts[range.end - back];
        let at = cfg
            .crash_start
            .saturating_add(SimDuration::from_secs(10 * k as u64));
        plan.schedule(at, FaultEvent::PeerCrash(peer_of_host[&host]));
        fault_times.push(at);
    }

    let mut hb = HeartbeatManager::new(cfg.heartbeat);
    hb.observe(&overlay, overlay.now());

    let mut world = RobustWorld {
        cfg: *cfg,
        net,
        overlay,
        hb,
        plan,
        sockets,
        component_of,
        peer_of_host,
        host_of_peer,
        tracker_host,
        mass_victims: Vec::new(),
        mass_detected: 0,
        mass_last_detection: SimTime::ZERO,
        crash_victims: 0,
        rerouted: 0,
        failed: 0,
        wedged: 0,
        peers_detected: 0,
        trackers_detected: 0,
        beat_deliveries: 0,
    };
    let mut sched: Scheduler<Ev> = Scheduler::new();
    sched.schedule_in(cfg.heartbeat.beat_period, Ev::Beat);
    for at in fault_times {
        sched.schedule_at(at, Ev::Fault);
    }
    let finished_at = run_world(&mut world, &mut sched, None);

    // A session is wedged if its remote was declared dead but it neither
    // re-routed nor failed: every individually-crashed victim that was
    // detected must have produced a terminal reroute outcome. (Mass victims
    // take their whole tree — and the local session endpoint — with them, so
    // they have no session left to wedge.)
    let mut wedged = 0;
    let resolved = world.rerouted + world.failed;
    let individual_detected = world.peers_detected - world.mass_detected;
    if individual_detected > resolved {
        wedged = individual_detected - resolved;
    }
    world.wedged = wedged;

    let survivor_hosts: Vec<Vec<HostId>> = (0..cfg.trees).map(|c| world.live_hosts_of(c)).collect();
    let mass_detection_latency = if world.mass_detected > 0 {
        world.mass_last_detection.duration_since(cfg.kill_at)
    } else {
        SimDuration::ZERO
    };

    RobustnessReport {
        mass_victims: world.mass_victims.len(),
        mass_detected: world.mass_detected,
        mass_detection_latency,
        crash_victims: world.crash_victims,
        rerouted_sessions: world.rerouted,
        failed_sessions: world.failed,
        wedged_sessions: world.wedged,
        peers_detected: world.peers_detected,
        trackers_detected: world.trackers_detected,
        heartbeat_flows: world.hb.beats_sent,
        heartbeat_deliveries: world.beat_deliveries,
        invariant_violations: world.overlay.check_invariants(),
        live_peers: world.overlay.live_peer_count(),
        overlay_peers: world.overlay.peer_count(),
        overlay_messages: world.overlay.total_messages,
        survivor_hosts,
        net_stats: world.net.stats().clone(),
        finished_at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> RobustnessConfig {
        RobustnessConfig {
            trees: 3,
            nodes_per_tree: 8,
            horizon: SimTime::from_secs(120),
            ..RobustnessConfig::default()
        }
    }

    #[test]
    fn mass_failure_is_detected_within_the_heartbeat_window() {
        let cfg = quick();
        let report = run_robustness(&cfg);
        assert_eq!(report.mass_victims, cfg.nodes_per_tree);
        assert_eq!(report.mass_detected, report.mass_victims);
        // Worst case: the crash lands just after a beat round, the timeout
        // elapses, and one more beat round runs detection.
        let window = cfg.heartbeat.timeout() + cfg.heartbeat.beat_period.saturating_mul(2);
        assert!(
            report.mass_detection_latency <= window,
            "latency {} exceeds the detection window {}",
            report.mass_detection_latency,
            window
        );
        assert!(report.mass_detection_latency >= cfg.heartbeat.timeout());
    }

    #[test]
    fn no_session_wedges_and_invariants_hold() {
        let report = run_robustness(&quick());
        assert_eq!(report.wedged_sessions, 0);
        assert_eq!(report.crash_victims, 3);
        assert_eq!(
            report.rerouted_sessions + report.failed_sessions,
            report.crash_victims,
            "every broken session must resolve"
        );
        assert!(report.rerouted_sessions > 0, "relays exist in 8-host trees");
        assert!(
            report.invariant_violations.is_empty(),
            "{:?}",
            report.invariant_violations
        );
    }

    #[test]
    fn identical_configs_reproduce_identical_reports() {
        let a = run_robustness(&quick());
        let b = run_robustness(&quick());
        assert_eq!(a, b);
        // Worker-budget pinning never changes the simulated outcome.
        let base = quick();
        let pinned = RobustnessConfig {
            config: base.config.workers(7).parallel_threshold(0),
            ..base
        };
        let c = run_robustness(&pinned);
        assert_eq!(a, c);
    }

    #[test]
    fn heartbeats_flow_and_survivors_remain() {
        let cfg = quick();
        let report = run_robustness(&cfg);
        assert!(report.heartbeat_flows > 0);
        assert!(report.heartbeat_deliveries > 0);
        assert_eq!(report.net_stats.flows_started, report.heartbeat_flows);
        // The killed tree has no live peers; surviving trees keep all but
        // the individual crash victims.
        assert!(report.survivor_hosts[cfg.kill_component].is_empty());
        let total_live: usize = report.survivor_hosts.iter().map(Vec::len).sum();
        assert_eq!(
            total_live,
            (cfg.trees - 1) * cfg.nodes_per_tree - cfg.extra_peer_crashes
        );
        assert_eq!(report.live_peers, total_live);
    }
}
