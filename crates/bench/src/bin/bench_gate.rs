//! CI bench-regression gate.
//!
//! Compares the criterion shim's `--test`-mode minimal JSON (one line per
//! benchmark: `{"id":…,"ns":…}`, written via `CRITERION_SHIM_TEST_JSON`)
//! against the recorded baselines in `BENCH_flow_engine.json` and fails —
//! exit code 1 — when any scenario ran more than `tolerance` times slower
//! than its recorded mean, or when a recorded scenario did not run at all
//! (bench bit-rot: a renamed or dropped benchmark means the baseline file
//! needs regenerating).
//!
//! The tolerance is deliberately wide (default 3×): the test-mode number is
//! a single cold run with no warm-up, CI runners are slower and noisier
//! than the recording machine, and the gate exists to catch *catastrophic*
//! slowdowns and rot — not to re-measure. Scenarios present in the test run
//! but absent from the baseline (freshly added benches) are reported but do
//! not fail the gate; they start gating once the baseline is regenerated.
//!
//! **Memory gating.** Baseline records may carry a `metrics` object (e.g.
//! `{"peak_rss_bytes":…,"bytes_per_flow":…,"events_per_sec":…}`), matched
//! against the shim's metric lines (`{"id":…,"metric":…,"value":…}`). The
//! *memory* metrics — `peak_rss_bytes` and `bytes_per_flow` — fail the gate
//! at a fixed 1.5× over their recorded value: unlike wall clock they are
//! near-deterministic for a fixed workload, so the band is tight. A recorded
//! metric that did not run counts as a missing scenario, exactly like a
//! missing timing. Other metrics (throughput) are reported but do not gate —
//! they scale with the runner, not the code.
//!
//! ```text
//! usage: bench_gate <baseline.json> <test-run.jsonl> [tolerance]
//! ```

use serde::Value;
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Memory metrics are near-deterministic for a fixed workload, so they gate
/// at a fixed tight band instead of the (CLI-tunable) wall-clock tolerance.
const MEM_TOLERANCE: f64 = 1.5;

/// The metrics that gate. Everything else (e.g. `events_per_sec`) is
/// reported for the record but scales with the runner, not the code.
fn is_memory_metric(name: &str) -> bool {
    matches!(name, "peak_rss_bytes" | "bytes_per_flow")
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("bench_gate: {msg}");
    eprintln!("usage: bench_gate <baseline.json> <test-run.jsonl> [tolerance]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 || args.len() > 4 {
        return fail("expected a baseline file and a test-run file");
    }
    let tolerance: f64 = match args.get(3).map(|t| t.parse()) {
        None => 3.0,
        Some(Ok(t)) if t > 1.0 => t,
        Some(_) => return fail("tolerance must be a number above 1.0"),
    };

    // Baseline: the checked-in measurement file; `results` is a list of
    // `{id, samples, mean_ns, min_ns, max_ns}` records.
    let baseline_text = match std::fs::read_to_string(&args[1]) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read baseline {}: {e}", args[1])),
    };
    let baseline: Value = match serde_json::from_str(&baseline_text) {
        Ok(v) => v,
        Err(e) => return fail(&format!("baseline {} is not JSON: {e}", args[1])),
    };
    let mut recorded: BTreeMap<String, f64> = BTreeMap::new();
    // Recorded telemetry, keyed by "<id>@<metric>".
    let mut recorded_metrics: BTreeMap<String, f64> = BTreeMap::new();
    let Some(results) = baseline.get("results").and_then(Value::as_array) else {
        return fail(&format!("baseline {} has no `results` array", args[1]));
    };
    for r in results {
        let (Some(id), Some(mean)) = (
            r.get("id").and_then(Value::as_str),
            r.get("mean_ns").and_then(Value::as_f64),
        ) else {
            return fail("baseline record without `id` + `mean_ns`");
        };
        recorded.insert(id.to_string(), mean);
        if let Some(metrics) = r.get("metrics").and_then(Value::as_object) {
            for (name, v) in metrics {
                let Some(v) = v.as_f64() else {
                    return fail(&format!("baseline metric {id}@{name} is not a number"));
                };
                recorded_metrics.insert(format!("{id}@{name}"), v);
            }
        }
    }

    // Test run: one minimal JSON object per line.
    let run_text = match std::fs::read_to_string(&args[2]) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read test run {}: {e}", args[2])),
    };
    let mut observed: BTreeMap<String, f64> = BTreeMap::new();
    let mut observed_metrics: BTreeMap<String, f64> = BTreeMap::new();
    for line in run_text.lines().filter(|l| !l.trim().is_empty()) {
        let v: Value = match serde_json::from_str(line) {
            Ok(v) => v,
            Err(e) => return fail(&format!("test-run line is not JSON ({e}): {line}")),
        };
        let Some(id) = v.get("id").and_then(Value::as_str) else {
            return fail(&format!("test-run line without `id`: {line}"));
        };
        // Two line schemas share the sink: timings ({"id","ns"}) and
        // telemetry ({"id","metric","value"}).
        if let Some(metric) = v.get("metric").and_then(Value::as_str) {
            let Some(value) = v.get("value").and_then(Value::as_f64) else {
                return fail(&format!("metric line without numeric `value`: {line}"));
            };
            observed_metrics.insert(format!("{id}@{metric}"), value);
        } else if let Some(ns) = v.get("ns").and_then(Value::as_f64) {
            observed.insert(id.to_string(), ns);
        } else {
            return fail(&format!("test-run line without `ns` or `metric`: {line}"));
        }
    }
    if observed.is_empty() {
        return fail(&format!(
            "test run {} is empty — was CRITERION_SHIM_TEST_JSON set?",
            args[2]
        ));
    }

    let mut violations = 0usize;
    let mut missing = 0usize;
    for (id, &mean) in &recorded {
        match observed.get(id) {
            None => {
                println!("MISSING  {id:<55} recorded but did not run (regenerate the baseline?)");
                missing += 1;
            }
            Some(&ns) if mean > 0.0 && ns > mean * tolerance => {
                println!(
                    "FAIL     {id:<55} {:>12.0} ns vs recorded mean {:>12.0} ns ({:.2}x > {tolerance}x)",
                    ns,
                    mean,
                    ns / mean
                );
                violations += 1;
            }
            Some(&ns) => {
                println!(
                    "ok       {id:<55} {:>12.0} ns vs recorded mean {:>12.0} ns ({:.2}x)",
                    ns,
                    mean,
                    if mean > 0.0 { ns / mean } else { 0.0 }
                );
            }
        }
    }
    for (key, &mean) in &recorded_metrics {
        let (_, name) = key.split_once('@').expect("key built with '@'");
        match observed_metrics.get(key) {
            None => {
                println!("MISSING  {key:<55} recorded but did not run (regenerate the baseline?)");
                missing += 1;
            }
            Some(&v) if is_memory_metric(name) && mean > 0.0 && v > mean * MEM_TOLERANCE => {
                println!(
                    "FAIL     {key:<55} {v:>12.0} vs recorded {mean:>12.0} ({:.2}x > {MEM_TOLERANCE}x)",
                    v / mean
                );
                violations += 1;
            }
            Some(&v) => {
                let band = if is_memory_metric(name) {
                    format!("gated at {MEM_TOLERANCE}x")
                } else {
                    "informational".to_string()
                };
                println!(
                    "ok       {key:<55} {v:>12.0} vs recorded {mean:>12.0} ({:.2}x, {band})",
                    if mean > 0.0 { v / mean } else { 0.0 }
                );
            }
        }
    }
    // Parallel-speedup gate: on a multi-core runner the persistent pool
    // must actually pay off — the best pooled run of the mirrored-forest
    // sweep has to beat the one-worker run by ≥1.3×. On a single visible
    // core the pool spawns no extra workers (the caller is the only one),
    // so the pooled runs exercise the shard/split machinery serially and
    // the ratio measures dispatch overhead and per-shard fill locality,
    // not parallelism — the gate skips with the reason on record and
    // prints the ratio as informational.
    const PARALLEL_SPEEDUP: f64 = 1.3;
    let t1_id = "flow_engine_parallel/parallel_mirror_churn_t1/10000";
    let multi_ids = [
        "flow_engine_parallel/parallel_mirror_churn_t2/10000",
        "flow_engine_parallel/parallel_mirror_churn_t4/10000",
        "flow_engine_parallel/parallel_mirror_churn_t8/10000",
    ];
    if let Some(&t1) = observed.get(t1_id) {
        let best = multi_ids
            .iter()
            .filter_map(|id| observed.get(*id))
            .fold(f64::INFINITY, |a, &b| a.min(b));
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if !best.is_finite() {
            println!("skip     parallel-speedup gate: multi-worker sweep ids did not run");
        } else if cores <= 1 {
            println!(
                "skip     parallel-speedup gate: 1 core visible — the pool spawns no \
                 extra workers, so the ratio measures serial dispatch overhead \
                 and shard locality, not parallelism \
                 (best pooled/serial = {:.2}x, informational)",
                best / t1
            );
        } else if t1 / best >= PARALLEL_SPEEDUP {
            println!(
                "ok       parallel-speedup gate: {:.2}x pooled speedup on {cores} cores \
                 (bar {PARALLEL_SPEEDUP}x)",
                t1 / best
            );
        } else {
            println!(
                "FAIL     parallel-speedup gate: best pooled run is only {:.2}x over the \
                 one-worker run on {cores} cores (bar {PARALLEL_SPEEDUP}x)",
                t1 / best
            );
            violations += 1;
        }
    }

    for id in observed.keys() {
        if !recorded.contains_key(id) {
            println!("new      {id:<55} not in the baseline yet (gates after regeneration)");
        }
    }
    for key in observed_metrics.keys() {
        if !recorded_metrics.contains_key(key) {
            println!("new      {key:<55} not in the baseline yet (gates after regeneration)");
        }
    }

    println!(
        "bench_gate: {} scenario(s) + {} metric(s) checked, {violations} over tolerance, {missing} missing",
        recorded.len(),
        recorded_metrics.len(),
    );
    if violations > 0 || missing > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
