//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! experiments [fig9|fig10|fig11|table1|all] [--small]
//! ```
//!
//! Without `--small` the paper-scale obstacle workload is used (1200² grid,
//! 900 sweeps), which takes a few minutes for the full set; `--small` runs the
//! reduced workload the Criterion benches use (same shapes, much faster).

use dperf::OptLevel;
use p2p_perf::experiments::{
    equivalence_table, fig10_prediction_accuracy, fig11_topology_comparison, fig9_reference_times,
    PAPER_PEER_COUNTS,
};
use p2pdc_bench::{bench_app, paper_app};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let small = args.iter().any(|a| a == "--small");
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    let app = if small { bench_app() } else { paper_app() };
    let sizes: Vec<usize> = PAPER_PEER_COUNTS.to_vec();

    let run_fig9 = || {
        let fig = fig9_reference_times(&app, &sizes);
        println!("{}", fig.render());
    };
    let run_fig10 = || {
        let fig = fig10_prediction_accuracy(&app, &sizes, OptLevel::O3);
        println!("{}", fig.render());
    };
    let run_fig11 = || {
        let fig = fig11_topology_comparison(&app, &sizes, OptLevel::O0);
        println!("{}", fig.render());
    };
    let run_table1 = || {
        let table = equivalence_table(&app, &[2, 4, 8], &sizes, OptLevel::O0);
        println!("# Table I — equivalent computing power (optimization level 0)");
        println!("{}", table.render());
    };

    match which.as_str() {
        "fig9" => run_fig9(),
        "fig10" => run_fig10(),
        "fig11" => run_fig11(),
        "table1" => run_table1(),
        "all" => {
            run_fig9();
            run_fig10();
            run_fig11();
            run_table1();
        }
        other => {
            eprintln!("unknown experiment {other:?}; expected fig9|fig10|fig11|table1|all");
            std::process::exit(2);
        }
    }
}
