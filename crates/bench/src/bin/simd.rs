//! `simd` — the simulation daemon: a flow-completion prediction service.
//!
//! A thin JSONL front end over [`netsim::StreamSession`], shaped like a
//! `flowd` component: it loads a checkpoint (or builds a fresh topology),
//! consumes arrival events from stdin one JSON object per line, and emits
//! predicted completion times on stdout as they fall out of the simulation.
//! Point a unix socket at it with `socat` (or pipe a tailed trace file) and
//! it becomes a long-running predictor that can be stopped and restarted —
//! via its own `checkpoint` command — without perturbing a single timestamp.
//!
//! ```text
//! usage: simd [--checkpoint FILE | --topology cluster|lan|daisy --hosts N]
//!             [--sharing maxmin|bottleneck] [--engine NAME] [--workers N]
//!             [--parallel-threshold N] [--split-min N] [--seed N]
//!
//! stdin commands (one JSON object per line):
//!   {"cmd":"arrive","src":0,"dst":5,"bytes":125000,"token":7[,"at_ns":N]}
//!       inject a flow arrival (at_ns defaults to the current clock)
//!   {"cmd":"advance","to_ns":N}   run the clock forward, emitting deliveries
//!   {"cmd":"quiesce"}             drain every queued event
//!   {"cmd":"checkpoint","path":"sim.ckpt"}   pause the session to disk
//!   {"cmd":"stats"}               report clock / queue / in-flight counters
//!   {"cmd":"quit"}                exit (EOF works too)
//!
//! stdout responses (one JSON object per line):
//!   {"event":"delivery","token":7,"src":0,"dst":5,"bytes":125064,
//!    "completed_at_ns":N}         a predicted completion time
//!   {"ok":true,...}               command acknowledgements
//!   {"error":"..."}               malformed or rejected commands
//! ```
//!
//! Times are exchanged in integer nanoseconds — the simulator's native tick —
//! so the protocol round-trips timestamps exactly.

use netsim::{
    cluster_bordeplage, daisy_xdsl, lan, EngineConfig, HostSpec, RebalanceEngine, SharingMode,
    StreamSession,
};
use p2p_common::{DataSize, HostId, SimTime};
use serde::Value;
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    checkpoint: Option<PathBuf>,
    topology: String,
    hosts: usize,
    sharing: SharingMode,
    config: EngineConfig,
    seed: u64,
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("simd: {msg}");
    eprintln!(
        "usage: simd [--checkpoint FILE | --topology cluster|lan|daisy --hosts N] \
         [--sharing maxmin|bottleneck] [--engine NAME] [--workers N] \
         [--parallel-threshold N] [--split-min N] [--seed N]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        checkpoint: None,
        topology: "cluster".to_owned(),
        hosts: 16,
        sharing: SharingMode::MaxMinFair,
        config: EngineConfig::default(),
        seed: 42,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--checkpoint" => opts.checkpoint = Some(PathBuf::from(value("--checkpoint")?)),
            "--topology" => opts.topology = value("--topology")?,
            "--hosts" => {
                opts.hosts = value("--hosts")?
                    .parse()
                    .map_err(|_| "--hosts needs an integer".to_owned())?
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed needs an integer".to_owned())?
            }
            "--sharing" => {
                opts.sharing = match value("--sharing")?.as_str() {
                    "maxmin" => SharingMode::MaxMinFair,
                    "bottleneck" => SharingMode::Bottleneck,
                    other => return Err(format!("unknown sharing mode {other:?}")),
                }
            }
            "--engine" => {
                opts.config = opts.config.engine(match value("--engine")?.as_str() {
                    "scan" => RebalanceEngine::ScanPerEvent,
                    "bucketed" => RebalanceEngine::BucketedBatched,
                    "dirty" => RebalanceEngine::DirtyComponent,
                    "parallel" => RebalanceEngine::ParallelShard,
                    "warm" => RebalanceEngine::WarmStart,
                    other => return Err(format!("unknown engine {other:?}")),
                })
            }
            "--workers" => {
                opts.config = opts.config.workers(
                    value("--workers")?
                        .parse()
                        .map_err(|_| "--workers needs an integer (0 = auto)".to_owned())?,
                )
            }
            "--parallel-threshold" => {
                opts.config = opts.config.parallel_threshold(
                    value("--parallel-threshold")?
                        .parse()
                        .map_err(|_| "--parallel-threshold needs an integer".to_owned())?,
                )
            }
            "--split-min" => {
                opts.config = opts.config.split_min_flows(
                    value("--split-min")?
                        .parse()
                        .map_err(|_| "--split-min needs an integer (0 = auto)".to_owned())?,
                )
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(opts)
}

fn build_session(opts: &Options) -> Result<StreamSession, String> {
    if let Some(path) = &opts.checkpoint {
        return StreamSession::load(path).map_err(|e| e.to_string());
    }
    let host = HostSpec::default();
    let topo = match opts.topology.as_str() {
        "cluster" => cluster_bordeplage(opts.hosts, host),
        "lan" => lan(opts.hosts, host),
        "daisy" => daisy_xdsl(opts.hosts, host, opts.seed),
        other => return Err(format!("unknown topology {other:?}")),
    };
    opts.config.validate()?;
    Ok(StreamSession::with_config(
        topo.platform,
        opts.sharing,
        opts.config,
    ))
}

/// Look up a field in a parsed command object.
fn get<'a>(fields: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

fn get_u64(fields: &[(String, Value)], name: &str) -> Result<u64, String> {
    get(fields, name)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("`{name}` must be a non-negative integer"))
}

fn emit(out: &mut impl Write, line: &str) {
    // A broken pipe means the consumer went away; exit quietly like cat.
    if writeln!(out, "{line}").is_err() {
        std::process::exit(0);
    }
}

fn emit_deliveries(out: &mut impl Write, batch: &[netsim::DeliveryRecord]) {
    for d in batch {
        emit(
            out,
            &format!(
                "{{\"event\":\"delivery\",\"token\":{},\"src\":{},\"dst\":{},\"bytes\":{},\
                 \"completed_at_ns\":{}}}",
                d.token,
                d.src.raw(),
                d.dst.raw(),
                d.size.bytes(),
                d.completed_at.as_nanos()
            ),
        );
    }
}

/// Execute one command line; `Ok(false)` means quit.
fn step(session: &mut StreamSession, line: &str, out: &mut impl Write) -> Result<bool, String> {
    let v: Value = serde_json::from_str(line).map_err(|e| format!("bad JSON: {e}"))?;
    let fields = v.as_object().ok_or("command must be a JSON object")?;
    let cmd = get(fields, "cmd")
        .and_then(Value::as_str)
        .ok_or("missing `cmd`")?;
    match cmd {
        "arrive" => {
            let src = HostId::new(get_u64(fields, "src")? as u32);
            let dst = HostId::new(get_u64(fields, "dst")? as u32);
            let bytes = get_u64(fields, "bytes")?;
            let token = get_u64(fields, "token")?;
            let at = match get(fields, "at_ns") {
                Some(v) => SimTime::from_nanos(v.as_u64().ok_or("`at_ns` must be an integer")?),
                None => session.now(),
            };
            session
                .inject(at, src, dst, DataSize::from_bytes(bytes), token)
                .map_err(|e| e.to_string())?;
            emit(
                out,
                &format!("{{\"ok\":true,\"queued\":{}}}", session.pending()),
            );
        }
        "advance" => {
            let to = SimTime::from_nanos(get_u64(fields, "to_ns")?);
            let batch = session.advance_to(to);
            emit_deliveries(out, &batch);
            emit(
                out,
                &format!(
                    "{{\"ok\":true,\"now_ns\":{},\"delivered\":{}}}",
                    session.now().as_nanos(),
                    batch.len()
                ),
            );
        }
        "quiesce" => {
            let batch = session.quiesce();
            emit_deliveries(out, &batch);
            emit(
                out,
                &format!(
                    "{{\"ok\":true,\"now_ns\":{},\"delivered\":{}}}",
                    session.now().as_nanos(),
                    batch.len()
                ),
            );
        }
        "checkpoint" => {
            let path = get(fields, "path")
                .and_then(Value::as_str)
                .ok_or("missing `path`")?;
            session
                .save(std::path::Path::new(path))
                .map_err(|e| e.to_string())?;
            emit(out, &format!("{{\"ok\":true,\"path\":{path:?}}}"));
        }
        "stats" => {
            emit(
                out,
                &format!(
                    "{{\"ok\":true,\"now_ns\":{},\"pending\":{},\"in_flight\":{},\
                     \"delivered\":{}}}",
                    session.now().as_nanos(),
                    session.pending(),
                    session.flows_in_flight(),
                    session.deliveries().len()
                ),
            );
        }
        "quit" => {
            emit(out, "{\"ok\":true,\"bye\":true}");
            return Ok(false);
        }
        other => return Err(format!("unknown command {other:?}")),
    }
    Ok(true)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => return usage(&e),
    };
    let mut session = match build_session(&opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("simd: {e}");
            return ExitCode::from(1);
        }
    };
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    emit(
        &mut out,
        &format!(
            "{{\"ok\":true,\"ready\":true,\"now_ns\":{},\"hosts\":{},\"pending\":{}}}",
            session.now().as_nanos(),
            session.network().platform().host_count(),
            session.pending()
        ),
    );
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        match step(&mut session, line.trim(), &mut out) {
            Ok(true) => {}
            Ok(false) => break,
            Err(e) => emit(&mut out, &format!("{{\"error\":{:?}}}", e.to_string())),
        }
    }
    ExitCode::SUCCESS
}
