//! Process-level memory telemetry for the memory-gated benches.
//!
//! The million-flow bench records its peak resident set alongside the
//! engine's own bytes/flow accounting, so `bench_gate` can fail CI on memory
//! regressions the same way it fails on wall-clock regressions. The numbers
//! come from the kernel — `VmHWM` in `/proc/self/status` — because that is
//! the one observer that sees every allocation (arenas, slabs, allocator
//! slack) without instrumenting the allocator.
//!
//! On non-Linux targets (no procfs) the probes return `None`/`false` and the
//! bench simply skips the RSS metric; the bytes/flow metric, computed by the
//! engine itself, is portable and always recorded.

/// Reset the kernel's peak-RSS water mark (`VmHWM`) for this process by
/// writing `5` to `/proc/self/clear_refs`, so a subsequent
/// [`peak_rss_bytes`] reading reflects only allocations made after this
/// call. Returns `false` when the kernel refuses (procfs absent, or the
/// container forbids the write) — callers then report the conservative
/// whole-process peak instead.
pub fn reset_peak_rss() -> bool {
    #[cfg(target_os = "linux")]
    {
        std::fs::write("/proc/self/clear_refs", "5").is_ok()
    }
    #[cfg(not(target_os = "linux"))]
    {
        false
    }
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` where procfs is unavailable.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
        let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
        Some(kib * 1024)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_is_readable_and_plausible() {
        let peak = peak_rss_bytes().expect("procfs available on Linux");
        // A running test binary holds at least a megabyte and (on any
        // machine this repo targets) under a terabyte.
        assert!(peak > 1 << 20, "peak {peak} implausibly small");
        assert!(peak < 1 << 40, "peak {peak} implausibly large");
    }

    #[test]
    fn peak_rss_tracks_new_allocations() {
        // Whether or not the reset is permitted, touching a fresh 64 MiB
        // buffer must push the water mark to at least that size.
        let _ = reset_peak_rss();
        let buf = vec![1u8; 64 << 20];
        let peak = peak_rss_bytes().expect("procfs available on Linux");
        assert!(peak >= (buf.len() as u64), "peak {peak} below live buffer");
        assert_eq!(buf[buf.len() - 1], 1);
    }
}
