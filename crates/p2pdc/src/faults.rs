//! Churn injection.
//!
//! The paper's motivation for the decentralized topology manager is
//! robustness: trackers and peers come and go. This module generates
//! reproducible churn schedules (exponential inter-arrival and session times)
//! and applies them to an [`Overlay`] so the tests
//! and the robustness bench can verify that the line stays consistent and
//! that computations can still collect peers while the overlay is being
//! shaken.

use crate::overlay::Overlay;
use p2p_common::{DetRng, IpAddr, PeerId, PeerResources, SimDuration, TrackerId};

/// One churn event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChurnEvent {
    /// A new peer joins (with the given IP).
    PeerJoin(IpAddr),
    /// An existing peer disappears silently.
    PeerLeave(PeerId),
    /// A new tracker joins.
    TrackerJoin(IpAddr),
    /// An existing tracker crashes.
    TrackerCrash(TrackerId),
}

/// Generates and applies churn.
#[derive(Debug)]
pub struct ChurnInjector {
    rng: DetRng,
    /// Probability that a generated event concerns a tracker rather than a
    /// peer.
    pub tracker_fraction: f64,
    /// Probability that an event is a departure rather than an arrival.
    pub departure_fraction: f64,
    /// Mean time between events.
    pub mean_interarrival: SimDuration,
}

impl ChurnInjector {
    /// A churn source with the given seed and default mix (10 % tracker
    /// events, 50 % departures, one event per 10 simulated seconds).
    pub fn new(seed: u64) -> Self {
        ChurnInjector {
            rng: DetRng::new(seed).fork(0xC0FFEE),
            tracker_fraction: 0.1,
            departure_fraction: 0.5,
            mean_interarrival: SimDuration::from_secs(10),
        }
    }

    /// Draw the next event against the current overlay population. Returns
    /// the event and the time gap before it happens.
    pub fn next_event(&mut self, overlay: &Overlay) -> (ChurnEvent, SimDuration) {
        let gap = SimDuration::from_secs_f64(
            self.rng
                .gen_exponential(self.mean_interarrival.as_secs_f64()),
        );
        let tracker_event = self.rng.gen_bool(self.tracker_fraction);
        let departure = self.rng.gen_bool(self.departure_fraction);
        let event = if tracker_event {
            if departure && overlay.tracker_count() > 1 {
                let victims: Vec<TrackerId> = overlay.trackers().map(|t| t.id).collect();
                ChurnEvent::TrackerCrash(*self.rng.choose(&victims).expect("non-empty"))
            } else {
                ChurnEvent::TrackerJoin(self.random_ip())
            }
        } else if departure && overlay.peer_count() > 0 {
            let victims: Vec<PeerId> = overlay.peers().map(|p| p.id).collect();
            ChurnEvent::PeerLeave(*self.rng.choose(&victims).expect("non-empty"))
        } else {
            ChurnEvent::PeerJoin(self.random_ip())
        };
        (event, gap)
    }

    fn random_ip(&mut self) -> IpAddr {
        IpAddr::from_octets(
            10,
            self.rng.gen_range(0..8u8),
            self.rng.gen_range(0..255u8),
            self.rng.gen_range(1..255u8),
        )
    }

    /// Apply one event to the overlay.
    pub fn apply(&mut self, overlay: &mut Overlay, event: ChurnEvent) {
        match event {
            ChurnEvent::PeerJoin(ip) => {
                overlay.peer_join(ip, None, PeerResources::xeon_em64t());
            }
            ChurnEvent::PeerLeave(id) => overlay.peer_disconnect(id),
            ChurnEvent::TrackerJoin(ip) => {
                overlay.tracker_join(ip);
            }
            ChurnEvent::TrackerCrash(id) => {
                overlay.tracker_crash(id);
            }
        }
    }

    /// Generate and apply `count` events, advancing the overlay clock between
    /// them. Returns the applied events.
    pub fn run(&mut self, overlay: &mut Overlay, count: usize) -> Vec<ChurnEvent> {
        let mut applied = Vec::with_capacity(count);
        for _ in 0..count {
            let (event, gap) = self.next_event(overlay);
            overlay.advance_time(gap);
            self.apply(overlay, event);
            applied.push(event);
        }
        applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlay::OverlayConfig;

    fn seeded_overlay() -> Overlay {
        let ips: Vec<IpAddr> = (0..4u8).map(|i| IpAddr::from_octets(10, i, 0, 1)).collect();
        let mut overlay = Overlay::bootstrap(OverlayConfig::default(), &ips);
        for i in 0..24u8 {
            overlay.peer_join(
                IpAddr::from_octets(10, i % 4, 1, i + 1),
                None,
                PeerResources::xeon_em64t(),
            );
        }
        overlay
    }

    #[test]
    fn churn_preserves_overlay_invariants() {
        let mut overlay = seeded_overlay();
        let mut churn = ChurnInjector::new(7);
        churn.run(&mut overlay, 200);
        let problems = overlay.check_invariants();
        assert!(
            problems.is_empty(),
            "invariants violated after churn: {problems:?}"
        );
        assert!(overlay.tracker_count() >= 1);
    }

    #[test]
    fn churn_is_reproducible_per_seed() {
        let mut a = seeded_overlay();
        let mut b = seeded_overlay();
        let ea = ChurnInjector::new(99).run(&mut a, 50);
        let eb = ChurnInjector::new(99).run(&mut b, 50);
        assert_eq!(ea, eb);
        assert_eq!(a.tracker_count(), b.tracker_count());
        assert_eq!(a.peer_count(), b.peer_count());
        let ec = ChurnInjector::new(100).run(&mut seeded_overlay(), 50);
        assert_ne!(ea, ec);
    }

    #[test]
    fn collection_still_works_under_churn() {
        use p2p_common::{ResourceRequirements, TaskId};
        let mut overlay = seeded_overlay();
        let mut churn = ChurnInjector::new(3);
        churn.run(&mut overlay, 100);
        // Make sure at least a handful of peers survived, then collect.
        while overlay.peer_count() < 6 {
            let next = overlay.peer_count() as u8 + 1;
            churn.apply(
                &mut overlay,
                ChurnEvent::PeerJoin(IpAddr::from_octets(10, 1, 7, next)),
            );
        }
        let submitter = overlay.peers().next().unwrap().id;
        let (collected, _) =
            overlay.collect_peers(submitter, 4, &ResourceRequirements::none(), TaskId::new(1));
        assert_eq!(collected.len(), 4);
        assert!(overlay.check_invariants().is_empty());
    }

    #[test]
    fn the_last_tracker_is_never_crashed() {
        let mut overlay = Overlay::bootstrap(
            OverlayConfig::default(),
            &[IpAddr::from_octets(10, 0, 0, 1)],
        );
        let mut churn = ChurnInjector::new(1);
        churn.tracker_fraction = 1.0;
        churn.departure_fraction = 1.0;
        churn.run(&mut overlay, 20);
        assert!(
            overlay.tracker_count() >= 1,
            "the overlay must keep a core tracker"
        );
    }
}
