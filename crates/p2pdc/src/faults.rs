//! Fault model: churn injection, crash-stop faults and correlated failures.
//!
//! The paper's motivation for the decentralized topology manager is
//! robustness: trackers and peers come and go. This module provides two
//! complementary fault sources, both reproducible from a seed:
//!
//! * [`ChurnInjector`] — background Poisson churn (exponential inter-arrival
//!   times) of individual joins and *graceful* departures, applied directly
//!   to an [`Overlay`] so tests can verify that the line stays consistent and
//!   that computations can still collect peers while the overlay is shaken.
//! * [`FaultPlan`] — a scripted schedule of **crash-stop** faults: individual
//!   peer/tracker crashes and *correlated* mass failures (a flash crowd
//!   leaving, a DSLAM power loss) that kill every peer of one platform
//!   component ([`Topology::components`]) at the same instant. Crash-stopped
//!   nodes go silent instead of leaving cleanly; the rest of the overlay only
//!   learns of the failure when a heartbeat timeout fires (see
//!   [`HeartbeatManager`](crate::overlay::HeartbeatManager)), so detection
//!   latency is simulated, not assumed.

use crate::overlay::Overlay;
use netsim::Topology;
use p2p_common::{DetRng, HostId, IpAddr, PeerId, PeerResources, SimDuration, SimTime, TrackerId};
use serde::{Deserialize, Serialize};

/// One churn event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChurnEvent {
    /// A new peer joins (with the given IP).
    PeerJoin(IpAddr),
    /// An existing peer disappears silently.
    PeerLeave(PeerId),
    /// A new tracker joins.
    TrackerJoin(IpAddr),
    /// An existing tracker crashes.
    TrackerCrash(TrackerId),
}

/// Generates and applies churn.
#[derive(Debug)]
pub struct ChurnInjector {
    rng: DetRng,
    /// Probability that a generated event concerns a tracker rather than a
    /// peer.
    pub tracker_fraction: f64,
    /// Probability that an event is a departure rather than an arrival.
    pub departure_fraction: f64,
    /// Mean time between events.
    pub mean_interarrival: SimDuration,
}

impl ChurnInjector {
    /// A churn source with the given seed and default mix (10 % tracker
    /// events, 50 % departures, one event per 10 simulated seconds).
    pub fn new(seed: u64) -> Self {
        ChurnInjector {
            rng: DetRng::new(seed).fork(0xC0FFEE),
            tracker_fraction: 0.1,
            departure_fraction: 0.5,
            mean_interarrival: SimDuration::from_secs(10),
        }
    }

    /// Draw the next event against the current overlay population. Returns
    /// the event and the time gap before it happens.
    ///
    /// Victims are drawn by index against the *live* population — crash-stopped
    /// nodes awaiting heartbeat detection are never picked, so a concurrent
    /// [`FaultPlan`] can not make the injector emit a departure for an
    /// already-dead id. The pick is alloc-free: one `gen_range` draw over the
    /// live count, then an ordered walk to that index. `DetRng::choose`
    /// draws the same single `gen_range(0..len)` internally, so with no
    /// crashed nodes (the only case the old code ever saw) the RNG stream and
    /// the chosen victims are bit-identical to the previous `Vec`-collecting
    /// implementation.
    pub fn next_event(&mut self, overlay: &Overlay) -> (ChurnEvent, SimDuration) {
        let gap = SimDuration::from_secs_f64(
            self.rng
                .gen_exponential(self.mean_interarrival.as_secs_f64()),
        );
        let tracker_event = self.rng.gen_bool(self.tracker_fraction);
        let departure = self.rng.gen_bool(self.departure_fraction);
        let event = if tracker_event {
            if departure && overlay.live_tracker_count() > 1 {
                let i = self.rng.gen_range(0..overlay.live_tracker_count());
                let victim = overlay.live_trackers().nth(i).expect("index < count");
                ChurnEvent::TrackerCrash(victim.id)
            } else {
                ChurnEvent::TrackerJoin(self.random_ip())
            }
        } else if departure && overlay.live_peer_count() > 0 {
            let i = self.rng.gen_range(0..overlay.live_peer_count());
            let victim = overlay.live_peers().nth(i).expect("index < count");
            ChurnEvent::PeerLeave(victim.id)
        } else {
            ChurnEvent::PeerJoin(self.random_ip())
        };
        (event, gap)
    }

    fn random_ip(&mut self) -> IpAddr {
        IpAddr::from_octets(
            10,
            self.rng.gen_range(0..8u8),
            self.rng.gen_range(0..255u8),
            self.rng.gen_range(1..255u8),
        )
    }

    /// Apply one event to the overlay.
    pub fn apply(&mut self, overlay: &mut Overlay, event: ChurnEvent) {
        match event {
            ChurnEvent::PeerJoin(ip) => {
                overlay.peer_join(ip, None, PeerResources::xeon_em64t());
            }
            ChurnEvent::PeerLeave(id) => overlay.peer_disconnect(id),
            ChurnEvent::TrackerJoin(ip) => {
                overlay.tracker_join(ip);
            }
            ChurnEvent::TrackerCrash(id) => {
                overlay.tracker_crash(id);
            }
        }
    }

    /// Generate and apply `count` events, advancing the overlay clock between
    /// them. Returns the applied events.
    pub fn run(&mut self, overlay: &mut Overlay, count: usize) -> Vec<ChurnEvent> {
        let mut applied = Vec::with_capacity(count);
        for _ in 0..count {
            let (event, gap) = self.next_event(overlay);
            overlay.advance_time(gap);
            self.apply(overlay, event);
            applied.push(event);
        }
        applied
    }
}

// ---------------------------------------------------------------------------
// Scripted crash-stop faults
// ---------------------------------------------------------------------------

/// One crash-stop fault.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// An individual peer crash-stops (goes silent without leaving).
    PeerCrash(PeerId),
    /// An individual tracker crash-stops; the line is *not* repaired until a
    /// neighbour detects the missed heartbeats.
    TrackerCrash(TrackerId),
    /// Correlated mass failure: every live peer bound to a host of platform
    /// component `component` crash-stops at the same instant — the
    /// flash-crowd / DSLAM-power-loss case of [`Topology::components`].
    MassFailure {
        /// Index into the plan's captured component list.
        component: usize,
    },
}

/// A fault with its scheduled injection time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimedFault {
    /// Simulated time at which the fault strikes.
    pub at: SimTime,
    /// The fault itself.
    pub event: FaultEvent,
}

/// What actually happened when a fault was applied.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultImpact {
    /// Peers that crash-stopped (one for `PeerCrash`, a whole component's
    /// worth for `MassFailure`, empty if the victims were already dead).
    pub crashed_peers: Vec<PeerId>,
    /// Trackers that crash-stopped.
    pub crashed_trackers: Vec<TrackerId>,
}

/// A reproducible schedule of crash-stop faults, sorted by injection time
/// (stable for equal timestamps: insertion order).
///
/// The plan captures the platform's component→hosts mapping up front, so a
/// [`FaultEvent::MassFailure`] resolves to a concrete host set without the
/// overlay ever needing the topology.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    components: Vec<Vec<HostId>>,
    faults: Vec<TimedFault>,
    next: usize,
}

impl FaultPlan {
    /// An empty plan with no platform attached. `MassFailure` events require
    /// [`FaultPlan::for_topology`].
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// An empty plan that captured `topo`'s connected components, enabling
    /// [`FaultEvent::MassFailure`] scheduling against them.
    pub fn for_topology(topo: &Topology) -> FaultPlan {
        FaultPlan {
            components: (0..topo.components.len())
                .map(|c| topo.component_hosts(c).to_vec())
                .collect(),
            faults: Vec::new(),
            next: 0,
        }
    }

    /// Number of connected components captured from the topology.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// The hosts of captured component `c`.
    pub fn component_hosts(&self, c: usize) -> &[HostId] {
        &self.components[c]
    }

    /// Schedule a fault, keeping the schedule sorted by time (faults at equal
    /// times keep their insertion order).
    pub fn schedule(&mut self, at: SimTime, event: FaultEvent) {
        if let FaultEvent::MassFailure { component } = event {
            assert!(
                component < self.components.len(),
                "component {component} out of range (plan has {}; did you use \
                 FaultPlan::for_topology?)",
                self.components.len()
            );
        }
        let pos = self.faults.partition_point(|f| f.at <= at);
        assert!(
            pos >= self.next,
            "cannot schedule a fault before ones already delivered"
        );
        self.faults.insert(pos, TimedFault { at, event });
    }

    /// Builder-style [`FaultPlan::schedule`].
    pub fn with_fault(mut self, at: SimTime, event: FaultEvent) -> FaultPlan {
        self.schedule(at, event);
        self
    }

    /// Total number of scheduled faults (delivered and pending).
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// The full schedule, sorted by injection time. Harnesses that apply
    /// faults to something other than an [`Overlay`] (e.g. killing raw
    /// netsim flows in a checkpoint/restore scenario) walk this directly
    /// and keep their own delivery cursor.
    pub fn faults(&self) -> &[TimedFault] {
        &self.faults
    }

    /// Whether the plan has no faults at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Injection time of the next undelivered fault.
    pub fn next_at(&self) -> Option<SimTime> {
        self.faults.get(self.next).map(|f| f.at)
    }

    /// Deliver every fault due at or before `now` to the overlay, in schedule
    /// order, and report the combined impact.
    pub fn deliver_due(&mut self, overlay: &mut Overlay, now: SimTime) -> FaultImpact {
        let mut impact = FaultImpact::default();
        while let Some(fault) = self.faults.get(self.next) {
            if fault.at > now {
                break;
            }
            let event = fault.event.clone();
            self.next += 1;
            self.apply(overlay, &event, &mut impact);
        }
        impact
    }

    fn apply(&self, overlay: &mut Overlay, event: &FaultEvent, impact: &mut FaultImpact) {
        match event {
            FaultEvent::PeerCrash(id) => {
                if overlay.peer_crash(*id) {
                    impact.crashed_peers.push(*id);
                }
            }
            FaultEvent::TrackerCrash(id) => {
                if overlay.tracker_crash_stop(*id) {
                    impact.crashed_trackers.push(*id);
                }
            }
            FaultEvent::MassFailure { component } => {
                impact
                    .crashed_peers
                    .extend(overlay.crash_peers_on(&self.components[*component]));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlay::OverlayConfig;

    fn seeded_overlay() -> Overlay {
        let ips: Vec<IpAddr> = (0..4u8).map(|i| IpAddr::from_octets(10, i, 0, 1)).collect();
        let mut overlay = Overlay::bootstrap(OverlayConfig::default(), &ips);
        for i in 0..24u8 {
            overlay.peer_join(
                IpAddr::from_octets(10, i % 4, 1, i + 1),
                None,
                PeerResources::xeon_em64t(),
            );
        }
        overlay
    }

    #[test]
    fn churn_preserves_overlay_invariants() {
        let mut overlay = seeded_overlay();
        let mut churn = ChurnInjector::new(7);
        churn.run(&mut overlay, 200);
        let problems = overlay.check_invariants();
        assert!(
            problems.is_empty(),
            "invariants violated after churn: {problems:?}"
        );
        assert!(overlay.tracker_count() >= 1);
    }

    #[test]
    fn churn_is_reproducible_per_seed() {
        let mut a = seeded_overlay();
        let mut b = seeded_overlay();
        let ea = ChurnInjector::new(99).run(&mut a, 50);
        let eb = ChurnInjector::new(99).run(&mut b, 50);
        assert_eq!(ea, eb);
        assert_eq!(a.tracker_count(), b.tracker_count());
        assert_eq!(a.peer_count(), b.peer_count());
        let ec = ChurnInjector::new(100).run(&mut seeded_overlay(), 50);
        assert_ne!(ea, ec);
    }

    #[test]
    fn collection_still_works_under_churn() {
        use p2p_common::{ResourceRequirements, TaskId};
        let mut overlay = seeded_overlay();
        let mut churn = ChurnInjector::new(3);
        churn.run(&mut overlay, 100);
        // Make sure at least a handful of peers survived, then collect.
        while overlay.peer_count() < 6 {
            let next = overlay.peer_count() as u8 + 1;
            churn.apply(
                &mut overlay,
                ChurnEvent::PeerJoin(IpAddr::from_octets(10, 1, 7, next)),
            );
        }
        let submitter = overlay.peers().next().unwrap().id;
        let (collected, _) =
            overlay.collect_peers(submitter, 4, &ResourceRequirements::none(), TaskId::new(1));
        assert_eq!(collected.len(), 4);
        assert!(overlay.check_invariants().is_empty());
    }

    #[test]
    fn the_last_tracker_is_never_crashed() {
        let mut overlay = Overlay::bootstrap(
            OverlayConfig::default(),
            &[IpAddr::from_octets(10, 0, 0, 1)],
        );
        let mut churn = ChurnInjector::new(1);
        churn.tracker_fraction = 1.0;
        churn.departure_fraction = 1.0;
        churn.run(&mut overlay, 20);
        assert!(
            overlay.tracker_count() >= 1,
            "the overlay must keep a core tracker"
        );
    }

    #[test]
    fn injector_never_picks_a_crashed_victim() {
        let mut overlay = seeded_overlay();
        // Crash-stop half the peers: still in the maps, but dead.
        let victims: Vec<PeerId> = overlay.peers().map(|p| p.id).take(12).collect();
        for id in &victims {
            overlay.peer_crash(*id);
        }
        let mut churn = ChurnInjector::new(5);
        churn.departure_fraction = 1.0; // force departures
        churn.tracker_fraction = 0.0;
        for _ in 0..100 {
            let (event, _) = churn.next_event(&overlay);
            match event {
                ChurnEvent::PeerLeave(id) => {
                    assert!(!victims.contains(&id), "injector picked already-dead {id}");
                }
                ChurnEvent::PeerJoin(_) => {}
                other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    fn fault_plan_delivers_in_time_order_and_reports_impact() {
        let mut overlay = seeded_overlay();
        let p1 = overlay.peers().next().unwrap().id;
        let p2 = overlay.peers().nth(1).unwrap().id;
        let t1 = overlay.trackers().nth(1).unwrap().id;
        let mut plan = FaultPlan::new()
            .with_fault(SimTime::from_secs(20), FaultEvent::PeerCrash(p2))
            .with_fault(SimTime::from_secs(10), FaultEvent::PeerCrash(p1))
            .with_fault(SimTime::from_secs(30), FaultEvent::TrackerCrash(t1));
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.next_at(), Some(SimTime::from_secs(10)));

        let impact = plan.deliver_due(&mut overlay, SimTime::from_secs(25));
        assert_eq!(impact.crashed_peers, vec![p1, p2]);
        assert!(impact.crashed_trackers.is_empty());
        assert_eq!(plan.next_at(), Some(SimTime::from_secs(30)));

        // Delivering the same window again is a no-op.
        assert_eq!(
            plan.deliver_due(&mut overlay, SimTime::from_secs(25)),
            FaultImpact::default()
        );

        let impact = plan.deliver_due(&mut overlay, SimTime::from_secs(30));
        assert_eq!(impact.crashed_trackers, vec![t1]);
        assert!(overlay.is_tracker_crashed(t1));
        assert_eq!(plan.next_at(), None);
    }

    #[test]
    fn mass_failure_kills_exactly_one_component() {
        use netsim::{dslam_forest, HostSpec};
        let topo = dslam_forest(3, 8, HostSpec::default(), 42);
        let mut overlay = Overlay::bootstrap(
            OverlayConfig::default(),
            &[IpAddr::from_octets(10, 0, 0, 1)],
        );
        // One peer per host, remembering which component each landed in.
        let mut by_component: Vec<Vec<PeerId>> = vec![Vec::new(); topo.components.len()];
        for (c, range) in topo.components.iter().enumerate() {
            for &host in &topo.hosts[range.clone()] {
                let ip = IpAddr::from_octets(10, c as u8, 3, (host.raw() % 200) as u8 + 1);
                let (id, _) = overlay.peer_join(ip, Some(host), PeerResources::xeon_em64t());
                by_component[c].push(id);
            }
        }
        let mut plan = FaultPlan::for_topology(&topo);
        assert_eq!(plan.component_count(), 3);
        plan.schedule(
            SimTime::from_secs(5),
            FaultEvent::MassFailure { component: 1 },
        );

        let impact = plan.deliver_due(&mut overlay, SimTime::from_secs(5));
        let mut crashed = impact.crashed_peers.clone();
        crashed.sort();
        let mut expected = by_component[1].clone();
        expected.sort();
        assert_eq!(crashed, expected, "exactly component 1 dies");
        for (c, peers) in by_component.iter().enumerate() {
            for id in peers {
                assert_eq!(overlay.is_peer_crashed(*id), c == 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn mass_failure_without_topology_panics_at_schedule_time() {
        let mut plan = FaultPlan::new();
        plan.schedule(
            SimTime::from_secs(1),
            FaultEvent::MassFailure { component: 0 },
        );
    }
}
