//! # p2pdc — decentralized peer-to-peer high performance computing
//!
//! Reproduction of the decentralized P2PDC environment of the paper (§III):
//!
//! * [`line`](mod@line) — the tracker *line* topology: every tracker maintains a set `N`
//!   of closest trackers, half with smaller and half with larger IP addresses,
//!   plus live connections to its immediate left/right neighbours.
//! * [`overlay`] — the hybrid topology manager: server, trackers and peers;
//!   tracker/peer join and leave protocols (§III-A.4–7), zone management,
//!   and peer collection for a task (§III-B). Protocol interactions are
//!   counted in messages and critical-path hops so the executor can convert
//!   them into time on any platform.
//! * [`proximity`] — IP-prefix-based peer grouping (§III-A.2).
//! * [`allocation`] — the hierarchical task-allocation mechanism (§III-C):
//!   peers grouped by proximity, one coordinator per group, groups capped at
//!   `Cmax = 32`, plus the flat (no-coordinator) baseline used by the
//!   ablation bench.
//! * [`task`] — task specifications and resource requirements.
//! * [`app`] — the [`IterativeApp`] trait: what a
//!   distributed iterative application must describe for P2PDC to run it.
//! * [`executor`] — the reference execution: overlay allocation + iterative
//!   computation (simulated with `netsim` flows and P2PSAP channel costs) +
//!   hierarchical result collection. Produces `t_normal_execution`, the
//!   reference time of Figs. 9–11.
//! * [`faults`] — peer/tracker churn injection used by robustness tests.

#![warn(missing_docs)]

pub mod allocation;
pub mod app;
pub mod executor;
pub mod faults;
pub mod line;
pub mod overlay;
pub mod proximity;
pub mod task;

pub use allocation::{build_allocation, AllocationCost, AllocationGraph, Group, CMAX};
pub use app::IterativeApp;
pub use executor::{run_reference, ExecutionConfig, RunReport};
pub use faults::{ChurnEvent, ChurnInjector, FaultEvent, FaultImpact, FaultPlan, TimedFault};
pub use line::{NeighborSet, TrackerEntry};
pub use overlay::{
    Detections, HeartbeatConfig, HeartbeatFlow, HeartbeatManager, Overlay, OverlayConfig,
    OverlayCost, PeerState, TrackerState,
};
pub use proximity::{choose_coordinator, group_by_proximity};
pub use task::{TaskSpec, TaskStatus};
