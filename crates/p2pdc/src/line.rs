//! The tracker line topology.
//!
//! "Trackers topology is a line. Each tracker Ti maintains a set of closest
//! trackers Ni. In order to get rid of the case where some trackers can be
//! isolated, there are, in the set Ni, |Ni|/2 closest trackers having IP
//! address greater than IP address of owner tracker and |Ni|/2 closest
//! trackers having IP address smaller than IP address of owner tracker.
//! Moreover, each tracker maintains connection with the closest tracker on
//! right side and the closest tracker on left side." (§III-A.1, Fig. 2)
//!
//! [`NeighborSet`] is that set `N`: two bounded, sorted half-sets keyed by IP
//! distance from the owner.

use p2p_common::{IpAddr, TrackerId};
use serde::{Deserialize, Serialize};

/// A (tracker id, IP) pair, the unit of the tracker lists exchanged by the
/// join/leave protocols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TrackerEntry {
    /// Tracker identifier.
    pub id: TrackerId,
    /// Tracker IP address (the line is ordered by this).
    pub ip: IpAddr,
}

impl TrackerEntry {
    /// Convenience constructor.
    pub fn new(id: TrackerId, ip: IpAddr) -> Self {
        TrackerEntry { id, ip }
    }
}

/// The neighbour set `N` of one tracker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NeighborSet {
    owner_ip: IpAddr,
    /// Capacity per side (`|N|/2`).
    half_capacity: usize,
    /// Trackers with smaller IPs, sorted by decreasing IP (closest first).
    left: Vec<TrackerEntry>,
    /// Trackers with larger IPs, sorted by increasing IP (closest first).
    right: Vec<TrackerEntry>,
}

impl NeighborSet {
    /// Create an empty set for a tracker at `owner_ip`, holding at most
    /// `capacity` entries (`capacity/2` per side; odd capacities round down).
    pub fn new(owner_ip: IpAddr, capacity: usize) -> Self {
        NeighborSet {
            owner_ip,
            half_capacity: (capacity / 2).max(1),
            left: Vec::new(),
            right: Vec::new(),
        }
    }

    /// The owner's IP.
    pub fn owner_ip(&self) -> IpAddr {
        self.owner_ip
    }

    /// Insert a tracker. Entries equal to the owner IP are ignored; when a
    /// side overflows, the farthest entry of that side is dropped, exactly as
    /// the join protocol prescribes ("removes the farthest tracker along the
    /// same side as new tracker"). Returns `true` if the entry is retained.
    pub fn insert(&mut self, entry: TrackerEntry) -> bool {
        if entry.ip == self.owner_ip {
            return false;
        }
        let (side, ascending): (&mut Vec<TrackerEntry>, bool) = if entry.ip < self.owner_ip {
            (&mut self.left, false)
        } else {
            (&mut self.right, true)
        };
        if side.iter().any(|e| e.id == entry.id) {
            return true; // already known
        }
        side.push(entry);
        if ascending {
            side.sort_by_key(|e| e.ip);
        } else {
            side.sort_by_key(|e| std::cmp::Reverse(e.ip));
        }
        if side.len() > self.half_capacity {
            side.truncate(self.half_capacity);
        }
        side.iter().any(|e| e.id == entry.id)
    }

    /// Remove a tracker by id. Returns `true` if it was present.
    pub fn remove(&mut self, id: TrackerId) -> bool {
        let before = self.left.len() + self.right.len();
        self.left.retain(|e| e.id != id);
        self.right.retain(|e| e.id != id);
        before != self.left.len() + self.right.len()
    }

    /// Is the tracker known?
    pub fn contains(&self, id: TrackerId) -> bool {
        self.left
            .iter()
            .chain(self.right.iter())
            .any(|e| e.id == id)
    }

    /// The closest tracker with a smaller IP (the direct left neighbour).
    pub fn closest_left(&self) -> Option<TrackerEntry> {
        self.left.first().copied()
    }

    /// The closest tracker with a larger IP (the direct right neighbour).
    pub fn closest_right(&self) -> Option<TrackerEntry> {
        self.right.first().copied()
    }

    /// The farthest known tracker on the left side.
    pub fn farthest_left(&self) -> Option<TrackerEntry> {
        self.left.last().copied()
    }

    /// The farthest known tracker on the right side.
    pub fn farthest_right(&self) -> Option<TrackerEntry> {
        self.right.last().copied()
    }

    /// All known trackers, left side then right side, closest first.
    pub fn all(&self) -> Vec<TrackerEntry> {
        self.left.iter().chain(self.right.iter()).copied().collect()
    }

    /// Entries on the left side (closest first).
    pub fn left_side(&self) -> &[TrackerEntry] {
        &self.left
    }

    /// Entries on the right side (closest first).
    pub fn right_side(&self) -> &[TrackerEntry] {
        &self.right
    }

    /// Number of known trackers.
    pub fn len(&self) -> usize {
        self.left.len() + self.right.len()
    }

    /// True when no tracker is known.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Among the known trackers (and the owner itself), is `candidate_ip`
    /// strictly closer to `target_ip` than the owner is? Used by the join
    /// protocol to decide whether to forward a join message.
    pub fn closer_to(&self, target_ip: IpAddr, candidate: &TrackerEntry) -> bool {
        candidate.ip.as_u32().abs_diff(target_ip.as_u32())
            < self.owner_ip.as_u32().abs_diff(target_ip.as_u32())
    }

    /// The known tracker closest to `target_ip`, if any is closer than the
    /// owner itself.
    pub fn best_forward(&self, target_ip: IpAddr) -> Option<TrackerEntry> {
        self.all()
            .into_iter()
            .filter(|e| self.closer_to(target_ip, e))
            .min_by_key(|e| e.ip.as_u32().abs_diff(target_ip.as_u32()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(last: u8) -> IpAddr {
        IpAddr::from_octets(10, 0, 0, last)
    }

    fn entry(id: u64, last: u8) -> TrackerEntry {
        TrackerEntry::new(TrackerId::new(id), ip(last))
    }

    #[test]
    fn sides_are_split_by_ip_and_sorted_by_distance() {
        let mut n = NeighborSet::new(ip(100), 4);
        n.insert(entry(1, 10));
        n.insert(entry(2, 90));
        n.insert(entry(3, 110));
        n.insert(entry(4, 200));
        assert_eq!(n.closest_left().unwrap().ip, ip(90));
        assert_eq!(n.closest_right().unwrap().ip, ip(110));
        assert_eq!(n.farthest_left().unwrap().ip, ip(10));
        assert_eq!(n.farthest_right().unwrap().ip, ip(200));
        assert_eq!(n.len(), 4);
    }

    #[test]
    fn overflow_drops_the_farthest_on_that_side() {
        let mut n = NeighborSet::new(ip(100), 4); // 2 per side
        n.insert(entry(1, 10));
        n.insert(entry(2, 50));
        assert!(n.insert(entry(3, 90)), "closer entry must be retained");
        assert_eq!(n.left_side().len(), 2);
        assert!(
            !n.contains(TrackerId::new(1)),
            "farthest left neighbour evicted"
        );
        assert!(n.contains(TrackerId::new(2)));
        assert!(n.contains(TrackerId::new(3)));
        // Inserting something farther than everything kept is rejected.
        assert!(!n.insert(entry(9, 1)));
        assert!(!n.contains(TrackerId::new(9)));
    }

    #[test]
    fn owner_ip_and_duplicates_are_ignored() {
        let mut n = NeighborSet::new(ip(100), 4);
        assert!(!n.insert(TrackerEntry::new(TrackerId::new(7), ip(100))));
        assert!(n.insert(entry(1, 90)));
        assert!(n.insert(entry(1, 90)));
        assert_eq!(n.len(), 1);
    }

    #[test]
    fn remove_clears_either_side() {
        let mut n = NeighborSet::new(ip(100), 6);
        n.insert(entry(1, 90));
        n.insert(entry(2, 110));
        assert!(n.remove(TrackerId::new(1)));
        assert!(!n.remove(TrackerId::new(1)));
        assert_eq!(n.len(), 1);
        assert!(n.closest_left().is_none());
        assert_eq!(n.closest_right().unwrap().id, TrackerId::new(2));
    }

    #[test]
    fn best_forward_picks_the_strictly_closer_tracker() {
        let mut n = NeighborSet::new(ip(100), 4);
        n.insert(entry(1, 50));
        n.insert(entry(2, 200));
        // Target 60 is much closer to tracker 1 (ip 50) than to the owner (100).
        assert_eq!(n.best_forward(ip(60)).unwrap().id, TrackerId::new(1));
        // Target 101 is closest to the owner itself: no forwarding.
        assert!(n.best_forward(ip(101)).is_none());
        // Target 240 forwards right.
        assert_eq!(n.best_forward(ip(240)).unwrap().id, TrackerId::new(2));
    }

    #[test]
    fn empty_set_behaves() {
        let n = NeighborSet::new(ip(1), 8);
        assert!(n.is_empty());
        assert!(n.closest_left().is_none());
        assert!(n.closest_right().is_none());
        assert!(n.best_forward(ip(200)).is_none());
        assert_eq!(n.all(), vec![]);
    }
}
