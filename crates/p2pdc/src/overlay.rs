//! The hybrid topology manager: server, trackers and peers.
//!
//! This module implements the decentralized overlay of paper §III-A:
//!
//! * a **server** that is only the first contact point and statistics sink —
//!   "when the server disconnects, the system continues working";
//! * **trackers**, each managing a *zone* of peers and a neighbour set `N`
//!   over the IP-ordered tracker line;
//! * **peers**, donors of compute resources, that publish their resources and
//!   periodically refresh their usage state.
//!
//! The join, leave and collection protocols are implemented faithfully at the
//! message level; instead of scheduling each message in the event simulator,
//! every operation returns an [`OverlayCost`] — how many messages were
//! exchanged and how long the critical path is in message hops — which the
//! executor converts into time on a concrete platform. This keeps the overlay
//! logic independently testable (including under churn) while still feeding
//! the performance model.

use crate::line::{NeighborSet, TrackerEntry};
use p2p_common::{
    HostId, IpAddr, PeerId, PeerResources, ResourceRequirements, SimDuration, SimTime, TaskId,
    TrackerId, UsageState,
};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Overlay tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverlayConfig {
    /// Size of each tracker's neighbour set `N` (split half/half by IP side).
    pub neighbor_set_size: usize,
    /// Period at which peers refresh their usage state to their tracker.
    pub peer_update_period: SimDuration,
    /// Timeout `T` after which a silent peer (or tracker) is considered dead.
    pub failure_timeout: SimDuration,
}

impl Default for OverlayConfig {
    fn default() -> Self {
        OverlayConfig {
            neighbor_set_size: 6,
            peer_update_period: SimDuration::from_secs(30),
            failure_timeout: SimDuration::from_secs(90),
        }
    }
}

/// Message/hop cost of an overlay operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverlayCost {
    /// Total messages exchanged.
    pub messages: u64,
    /// Length of the critical path, in one-way message hops.
    pub critical_hops: u32,
}

impl OverlayCost {
    /// Accumulate another operation happening *after* this one.
    pub fn then(self, next: OverlayCost) -> OverlayCost {
        OverlayCost {
            messages: self.messages + next.messages,
            critical_hops: self.critical_hops + next.critical_hops,
        }
    }
}

/// A peer as recorded inside a tracker's zone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZonePeer {
    /// Peer identifier.
    pub id: PeerId,
    /// Peer IP address.
    pub ip: IpAddr,
    /// Host the peer runs on, when the overlay is bound to a platform.
    pub host: Option<HostId>,
    /// Published resources.
    pub resources: PeerResources,
    /// Time of the last state update received.
    pub last_update: SimTime,
    /// Task this peer is currently reserved for, if any.
    pub reserved_for: Option<TaskId>,
}

/// A tracker and its zone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrackerState {
    /// Tracker identifier.
    pub id: TrackerId,
    /// Tracker IP address.
    pub ip: IpAddr,
    /// Neighbour set `N`.
    pub neighbors: NeighborSet,
    /// Peers of this zone, keyed by peer id.
    pub zone: BTreeMap<PeerId, ZonePeer>,
    /// Statistics reports sent to the server.
    pub reports_sent: u64,
}

/// A peer's own view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeerState {
    /// Peer identifier.
    pub id: PeerId,
    /// Peer IP address.
    pub ip: IpAddr,
    /// Host the peer runs on, when bound to a platform.
    pub host: Option<HostId>,
    /// The peer's resources.
    pub resources: PeerResources,
    /// Tracker whose zone the peer belongs to.
    pub tracker: Option<TrackerId>,
    /// Locally stored tracker list (used to rejoin after a tracker failure).
    pub tracker_list: Vec<TrackerEntry>,
}

/// The bootstrap server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerState {
    /// Trackers the server knows about.
    pub known_trackers: Vec<TrackerEntry>,
    /// Whether the server is currently reachable.
    pub online: bool,
    /// Statistics reports received from trackers.
    pub reports_received: u64,
}

/// The full overlay state.
#[derive(Debug, Clone)]
pub struct Overlay {
    config: OverlayConfig,
    server: ServerState,
    trackers: BTreeMap<TrackerId, TrackerState>,
    peers: BTreeMap<PeerId, PeerState>,
    /// Crash-stopped peers: halted, but still present in the overlay's maps
    /// because nobody has *detected* the failure yet (see
    /// [`HeartbeatManager`]).
    crashed_peers: BTreeSet<PeerId>,
    /// Crash-stopped trackers awaiting detection by their line neighbours.
    crashed_trackers: BTreeSet<TrackerId>,
    now: SimTime,
    next_id: u64,
    /// Total protocol messages exchanged since bootstrap.
    pub total_messages: u64,
}

impl Overlay {
    /// Bootstrap the system: a server plus the given core trackers, which are
    /// "managed by system administrator … on-line permanently" (§III-A.3).
    pub fn bootstrap(config: OverlayConfig, core_tracker_ips: &[IpAddr]) -> Overlay {
        assert!(
            !core_tracker_ips.is_empty(),
            "the system needs at least one core tracker"
        );
        let mut overlay = Overlay {
            config,
            server: ServerState {
                known_trackers: Vec::new(),
                online: true,
                reports_received: 0,
            },
            trackers: BTreeMap::new(),
            peers: BTreeMap::new(),
            crashed_peers: BTreeSet::new(),
            crashed_trackers: BTreeSet::new(),
            now: SimTime::ZERO,
            next_id: 1,
            total_messages: 0,
        };
        for &ip in core_tracker_ips {
            overlay.tracker_join(ip);
        }
        overlay
    }

    fn alloc_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Current overlay time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advance the overlay clock (peer updates, timeouts).
    pub fn advance_time(&mut self, d: SimDuration) {
        self.now += d;
    }

    /// The overlay configuration.
    pub fn config(&self) -> &OverlayConfig {
        &self.config
    }

    /// The server.
    pub fn server(&self) -> &ServerState {
        &self.server
    }

    /// Take the server offline; the overlay keeps working (§III-A.7).
    pub fn server_disconnect(&mut self) {
        self.server.online = false;
    }

    /// Bring the server back; trackers flush their stored statistics to it.
    pub fn server_reconnect(&mut self) -> OverlayCost {
        self.server.online = true;
        let mut messages = 0;
        for t in self.trackers.values_mut() {
            t.reports_sent += 1;
            messages += 1;
        }
        self.server.reports_received += messages;
        self.total_messages += messages;
        OverlayCost {
            messages,
            critical_hops: 1,
        }
    }

    /// Number of live trackers.
    pub fn tracker_count(&self) -> usize {
        self.trackers.len()
    }

    /// Number of live peers.
    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    /// Look a tracker up.
    pub fn tracker(&self, id: TrackerId) -> Option<&TrackerState> {
        self.trackers.get(&id)
    }

    /// Look a peer up.
    pub fn peer(&self, id: PeerId) -> Option<&PeerState> {
        self.peers.get(&id)
    }

    /// Iterate over all trackers, in id order.
    pub fn trackers(&self) -> impl Iterator<Item = &TrackerState> {
        self.trackers.values()
    }

    /// Iterate over all peers, in id order.
    pub fn peers(&self) -> impl Iterator<Item = &PeerState> {
        self.peers.values()
    }

    // ---- Crash-stop faults -------------------------------------------------
    //
    // A crash-stopped entity halts silently: it stops sending heartbeats and
    // updates, but every *other* node's state still references it until the
    // failure is detected (by a heartbeat timeout, see [`HeartbeatManager`]).
    // The window between crash and detection is exactly the robustness gap
    // the paper's topology manager has to survive, so the overlay models the
    // two moments separately.

    /// A peer crash-stops (powers off, flash-crowd departure). Returns
    /// `false` if the peer is unknown or already crashed.
    pub fn peer_crash(&mut self, id: PeerId) -> bool {
        self.peers.contains_key(&id) && self.crashed_peers.insert(id)
    }

    /// A tracker crash-stops. Unlike [`Overlay::tracker_crash`] nothing is
    /// repaired yet — the line still references the dead tracker until a
    /// neighbour detects the missed heartbeats and triggers the repair.
    /// Returns `false` if the tracker is unknown or already crashed.
    pub fn tracker_crash_stop(&mut self, id: TrackerId) -> bool {
        self.trackers.contains_key(&id) && self.crashed_trackers.insert(id)
    }

    /// Whether a peer has crash-stopped (dead but possibly undetected).
    pub fn is_peer_crashed(&self, id: PeerId) -> bool {
        self.crashed_peers.contains(&id)
    }

    /// Whether a tracker has crash-stopped (dead but possibly undetected).
    pub fn is_tracker_crashed(&self, id: TrackerId) -> bool {
        self.crashed_trackers.contains(&id)
    }

    /// Number of live (non-crashed) peers.
    pub fn live_peer_count(&self) -> usize {
        self.peers.len() - self.crashed_peers.len()
    }

    /// Number of live (non-crashed) trackers.
    pub fn live_tracker_count(&self) -> usize {
        self.trackers.len() - self.crashed_trackers.len()
    }

    /// Iterate over the live (non-crashed) peers, in id order.
    pub fn live_peers(&self) -> impl Iterator<Item = &PeerState> {
        self.peers
            .values()
            .filter(|p| !self.crashed_peers.contains(&p.id))
    }

    /// Iterate over the live (non-crashed) trackers, in id order.
    pub fn live_trackers(&self) -> impl Iterator<Item = &TrackerState> {
        self.trackers
            .values()
            .filter(|t| !self.crashed_trackers.contains(&t.id))
    }

    /// Crash-stop every live peer bound to one of `hosts` — the correlated
    /// mass-failure primitive (a DSLAM power loss kills every peer of one
    /// platform component at the same instant). Returns the crashed peers.
    pub fn crash_peers_on(&mut self, hosts: &[HostId]) -> Vec<PeerId> {
        let victims: Vec<PeerId> = self
            .peers
            .values()
            .filter(|p| {
                !self.crashed_peers.contains(&p.id)
                    && p.host.map(|h| hosts.contains(&h)).unwrap_or(false)
            })
            .map(|p| p.id)
            .collect();
        for &id in &victims {
            self.crashed_peers.insert(id);
        }
        victims
    }

    /// A crashed peer's failure has been detected (heartbeat timeout at its
    /// tracker): drop it from its zone and from the peer map. One message —
    /// the tracker prunes its zone entry; nothing is broadcast.
    pub fn peer_detected_dead(&mut self, id: PeerId) -> OverlayCost {
        let Some(peer) = self.peers.remove(&id) else {
            return OverlayCost::default();
        };
        self.crashed_peers.remove(&id);
        if let Some(tid) = peer.tracker {
            if let Some(t) = self.trackers.get_mut(&tid) {
                t.zone.remove(&id);
            }
        }
        self.total_messages += 1;
        OverlayCost {
            messages: 1,
            critical_hops: 1,
        }
    }

    /// Proximity ordering used by the overlay: longest common IP prefix first
    /// (the paper's metric), numeric distance as tie-break.
    fn proximity_key(a: IpAddr, b: IpAddr) -> (u32, u32) {
        (
            u32::MAX - a.common_prefix_len(b),
            a.as_u32().abs_diff(b.as_u32()),
        )
    }

    /// The tracker closest to `ip` (ground truth over all live trackers).
    pub fn closest_tracker(&self, ip: IpAddr) -> Option<TrackerId> {
        self.trackers
            .values()
            .min_by_key(|t| Self::proximity_key(t.ip, ip))
            .map(|t| t.id)
    }

    /// Walk the overlay from an arbitrary entry tracker towards the tracker
    /// closest to `ip`, following neighbour sets exactly like a join message
    /// would. Returns `(closest tracker, hops taken)`.
    fn locate_closest(&self, entry: TrackerId, ip: IpAddr) -> (TrackerId, u32) {
        let mut current = entry;
        let mut hops = 0u32;
        let mut visited: BTreeSet<TrackerId> = BTreeSet::new();
        loop {
            visited.insert(current);
            let state = &self.trackers[&current];
            let best_neighbor = state
                .neighbors
                .all()
                .into_iter()
                .filter(|e| self.trackers.contains_key(&e.id) && !visited.contains(&e.id))
                .min_by_key(|e| Self::proximity_key(e.ip, ip));
            match best_neighbor {
                Some(next)
                    if Self::proximity_key(next.ip, ip) < Self::proximity_key(state.ip, ip) =>
                {
                    current = next.id;
                    hops += 1;
                }
                _ => return (current, hops),
            }
        }
    }

    /// A new tracker joins the overlay (§III-A.4). Returns its id and the
    /// protocol cost.
    pub fn tracker_join(&mut self, ip: IpAddr) -> (TrackerId, OverlayCost) {
        let id = TrackerId::new(self.alloc_id());
        let mut neighbors = NeighborSet::new(ip, self.config.neighbor_set_size);
        let mut cost = OverlayCost::default();

        if !self.trackers.is_empty() {
            // Contact the closest tracker we know of (via the server list) and
            // let the join message be forwarded to the actual closest tracker.
            let entry_tracker = self
                .server
                .known_trackers
                .iter()
                .filter(|e| self.trackers.contains_key(&e.id))
                .min_by_key(|e| Self::proximity_key(e.ip, ip))
                .map(|e| e.id)
                .or_else(|| self.trackers.keys().next().copied())
                .expect("non-empty tracker set");
            let (closest, hops) = self.locate_closest(entry_tracker, ip);
            cost.messages += hops as u64 + 1;
            cost.critical_hops += hops + 1;

            // The closest tracker shares its neighbour set with the newcomer
            // and informs everybody in it.
            let closest_state = self.trackers[&closest].clone();
            let mut informed: Vec<TrackerId> = vec![closest];
            neighbors.insert(TrackerEntry::new(closest, closest_state.ip));
            for e in closest_state.neighbors.all() {
                if self.trackers.contains_key(&e.id) {
                    neighbors.insert(e);
                    informed.push(e.id);
                }
            }
            let new_entry = TrackerEntry::new(id, ip);
            for t in informed {
                if let Some(state) = self.trackers.get_mut(&t) {
                    state.neighbors.insert(new_entry);
                }
            }
            cost.messages += neighbors.len() as u64 + 2;
            cost.critical_hops += 2; // inform + answer with the neighbour list
        } else {
            // Very first tracker: only the server is involved.
            cost.messages += 1;
            cost.critical_hops += 1;
        }

        self.trackers.insert(
            id,
            TrackerState {
                id,
                ip,
                neighbors,
                zone: BTreeMap::new(),
                reports_sent: 0,
            },
        );
        if self.server.online {
            self.server.known_trackers.push(TrackerEntry::new(id, ip));
            cost.messages += 1;
        }
        self.total_messages += cost.messages;
        (id, cost)
    }

    /// A tracker disappears without warning (§III-A.5). Its direct neighbours
    /// detect the broken connection, repair the line, and the orphaned peers
    /// of its zone rejoin the closest remaining tracker.
    pub fn tracker_crash(&mut self, id: TrackerId) -> OverlayCost {
        let Some(dead) = self.trackers.remove(&id) else {
            return OverlayCost::default();
        };
        self.crashed_trackers.remove(&id);
        let mut cost = OverlayCost {
            messages: 0,
            critical_hops: 1, // detection by a broken connection
        };
        self.server.known_trackers.retain(|e| e.id != id);

        // Direct neighbours on the line.
        let left = dead
            .neighbors
            .closest_left()
            .filter(|e| self.trackers.contains_key(&e.id));
        let right = dead
            .neighbors
            .closest_right()
            .filter(|e| self.trackers.contains_key(&e.id));

        // Every tracker that knew the dead one drops it and receives
        // replacement candidates from the repairing neighbours.
        let mut candidates: Vec<TrackerEntry> = Vec::new();
        if let Some(l) = left {
            candidates.push(l);
            candidates.extend(self.trackers[&l.id].neighbors.all());
        }
        if let Some(r) = right {
            candidates.push(r);
            candidates.extend(self.trackers[&r.id].neighbors.all());
        }
        candidates.retain(|e| e.id != id && self.trackers.contains_key(&e.id));
        for state in self.trackers.values_mut() {
            if state.neighbors.remove(id) {
                cost.messages += 1;
                for &c in &candidates {
                    if c.id != state.id {
                        state.neighbors.insert(c);
                    }
                }
            }
        }
        // The two repairing neighbours connect to each other.
        if let (Some(l), Some(r)) = (left, right) {
            if let Some(ls) = self.trackers.get_mut(&l.id) {
                ls.neighbors.insert(r);
            }
            if let Some(rs) = self.trackers.get_mut(&r.id) {
                rs.neighbors.insert(l);
            }
            cost.messages += 2;
            cost.critical_hops += 2;
        }
        if self.server.online {
            cost.messages += 1;
        }

        // Orphaned peers re-join through their locally stored tracker list
        // once they notice the missing answer messages (§III-A.7).
        let orphans: Vec<ZonePeer> = dead.zone.into_values().collect();
        cost.critical_hops += u32::from(!orphans.is_empty());
        for zp in orphans {
            // A crash-stopped orphan cannot rejoin (it is dead too — typical
            // of a correlated DSLAM failure that takes the tracker and its
            // whole zone down together): drop it instead of re-homing it.
            if self.crashed_peers.remove(&zp.id) {
                self.peers.remove(&zp.id);
                continue;
            }
            if let Some(peer) = self.peers.get(&zp.id).cloned() {
                let rejoin = self.attach_peer_to_closest(
                    peer.id,
                    peer.ip,
                    peer.host,
                    peer.resources,
                    zp.reserved_for,
                );
                cost.messages += rejoin.messages;
            }
        }
        self.total_messages += cost.messages;
        cost
    }

    fn attach_peer_to_closest(
        &mut self,
        id: PeerId,
        ip: IpAddr,
        host: Option<HostId>,
        resources: PeerResources,
        reserved_for: Option<TaskId>,
    ) -> OverlayCost {
        let tracker_id = self
            .closest_tracker(ip)
            .expect("cannot attach a peer to an overlay without trackers");
        let now = self.now;
        let tracker = self.trackers.get_mut(&tracker_id).expect("tracker exists");
        tracker.zone.insert(
            id,
            ZonePeer {
                id,
                ip,
                host,
                resources,
                last_update: now,
                reserved_for,
            },
        );
        let tracker_list: Vec<TrackerEntry> = {
            let t = &self.trackers[&tracker_id];
            let mut list = t.neighbors.all();
            list.push(TrackerEntry::new(t.id, t.ip));
            list
        };
        let entry = self.peers.entry(id).or_insert(PeerState {
            id,
            ip,
            host,
            resources,
            tracker: None,
            tracker_list: Vec::new(),
        });
        entry.tracker = Some(tracker_id);
        entry.tracker_list = tracker_list;
        OverlayCost {
            messages: 3, // join + accept(+N) + resources publication
            critical_hops: 3,
        }
    }

    /// A new peer joins the overlay (§III-A.6).
    pub fn peer_join(
        &mut self,
        ip: IpAddr,
        host: Option<HostId>,
        resources: PeerResources,
    ) -> (PeerId, OverlayCost) {
        assert!(
            !self.trackers.is_empty(),
            "peers cannot join an overlay without trackers"
        );
        let id = PeerId::new(self.alloc_id());
        // The join message is forwarded tracker-to-tracker until the closest
        // one is reached; account for the walk explicitly.
        let entry_tracker = *self.trackers.keys().next().expect("non-empty");
        let (_closest, hops) = self.locate_closest(entry_tracker, ip);
        let mut cost = OverlayCost {
            messages: hops as u64,
            critical_hops: hops,
        };
        cost = cost.then(self.attach_peer_to_closest(id, ip, host, resources, None));
        self.total_messages += cost.messages;
        (id, cost)
    }

    /// A peer sends its periodic state update; the tracker answers.
    pub fn peer_update(&mut self, id: PeerId, usage: UsageState) -> OverlayCost {
        let Some(peer) = self.peers.get_mut(&id) else {
            return OverlayCost::default();
        };
        peer.resources.usage = usage;
        let tracker = peer.tracker;
        let (ip, resources) = (peer.ip, peer.resources);
        if let Some(tid) = tracker {
            let now = self.now;
            if let Some(t) = self.trackers.get_mut(&tid) {
                if let Some(zp) = t.zone.get_mut(&id) {
                    zp.last_update = now;
                    zp.resources = resources;
                    zp.ip = ip;
                }
            }
        }
        self.total_messages += 2;
        OverlayCost {
            messages: 2,
            critical_hops: 2,
        }
    }

    /// A peer disconnects silently: nothing happens immediately; its tracker
    /// notices once the failure timeout elapses (see
    /// [`Overlay::expire_silent_peers`]).
    pub fn peer_disconnect(&mut self, id: PeerId) {
        self.peers.remove(&id);
        self.crashed_peers.remove(&id);
    }

    /// Trackers drop zone peers whose last update is older than the failure
    /// timeout `T`. Returns the peers that were expired.
    pub fn expire_silent_peers(&mut self) -> Vec<PeerId> {
        let cutoff = self.now.duration_since(SimTime::ZERO);
        let timeout = self.config.failure_timeout;
        let mut expired = Vec::new();
        for tracker in self.trackers.values_mut() {
            let dead: Vec<PeerId> = tracker
                .zone
                .values()
                .filter(|zp| {
                    let age = cutoff.saturating_sub(zp.last_update.duration_since(SimTime::ZERO));
                    age > timeout
                })
                .map(|zp| zp.id)
                .collect();
            for id in dead {
                tracker.zone.remove(&id);
                expired.push(id);
            }
        }
        // A peer that still believes it is connected but was expired must
        // eventually rejoin; here we simply drop the stale binding.
        for id in &expired {
            if let Some(p) = self.peers.get_mut(id) {
                p.tracker = None;
            }
        }
        expired
    }

    /// Peer collection for a task (§III-B): the submitter asks its own
    /// tracker, then the trackers in its local list, then expands outwards
    /// until `needed` peers matching `req` have been reserved. Reserved peers
    /// are marked busy and bound to `task`.
    pub fn collect_peers(
        &mut self,
        submitter: PeerId,
        needed: usize,
        req: &ResourceRequirements,
        task: TaskId,
    ) -> (Vec<PeerId>, OverlayCost) {
        let Some(sub) = self.peers.get(&submitter) else {
            return (Vec::new(), OverlayCost::default());
        };
        let sub_ip = sub.ip;
        let own_tracker = sub.tracker.or_else(|| self.closest_tracker(sub_ip));
        let mut cost = OverlayCost::default();
        let mut collected: Vec<PeerId> = Vec::new();

        // Visit order: own tracker, then the local tracker list, then every
        // other tracker by increasing distance (the "ask the farthest trackers
        // for more addresses" expansion).
        let mut order: Vec<TrackerId> = Vec::new();
        if let Some(t) = own_tracker {
            order.push(t);
        }
        if let Some(sub) = self.peers.get(&submitter) {
            for e in &sub.tracker_list {
                if self.trackers.contains_key(&e.id) && !order.contains(&e.id) {
                    order.push(e.id);
                }
            }
        }
        let mut rest: Vec<TrackerId> = self
            .trackers
            .values()
            .filter(|t| !order.contains(&t.id))
            .map(|t| t.id)
            .collect();
        rest.sort_by_key(|tid| Self::proximity_key(self.trackers[tid].ip, sub_ip));
        let expansion_needed = !rest.is_empty();
        order.extend(rest);

        for (visited, tid) in order.into_iter().enumerate() {
            if collected.len() >= needed {
                break;
            }
            // Request + filtered peer list back.
            cost.messages += 2;
            cost.critical_hops += 2;
            // Asking beyond the local list first costs an address-discovery
            // round through the farthest trackers.
            if visited == 1 + self.config.neighbor_set_size && expansion_needed {
                cost.messages += 2;
                cost.critical_hops += 2;
            }
            let tracker = self.trackers.get_mut(&tid).expect("tracker in order list");
            let mut eligible: Vec<PeerId> = tracker
                .zone
                .values()
                .filter(|zp| {
                    zp.id != submitter && zp.reserved_for.is_none() && zp.resources.satisfies(req)
                })
                .map(|zp| zp.id)
                .collect();
            eligible.sort();
            for pid in eligible {
                if collected.len() >= needed {
                    break;
                }
                // Reserve: the peer informs its tracker it is no longer free.
                if let Some(zp) = tracker.zone.get_mut(&pid) {
                    zp.reserved_for = Some(task);
                    zp.resources.usage = UsageState::Busy;
                }
                if let Some(p) = self.peers.get_mut(&pid) {
                    p.resources.usage = UsageState::Busy;
                }
                cost.messages += 1;
                collected.push(pid);
            }
        }
        self.total_messages += cost.messages;
        (collected, cost)
    }

    /// Release every peer reserved for `task` (end of computation).
    pub fn release_peers(&mut self, task: TaskId) -> usize {
        let mut released_peers: Vec<PeerId> = Vec::new();
        for tracker in self.trackers.values_mut() {
            for zp in tracker.zone.values_mut() {
                if zp.reserved_for == Some(task) {
                    zp.reserved_for = None;
                    zp.resources.usage = UsageState::Free;
                    released_peers.push(zp.id);
                }
            }
        }
        for id in &released_peers {
            if let Some(peer) = self.peers.get_mut(id) {
                peer.resources.usage = UsageState::Free;
            }
        }
        released_peers.len()
    }

    /// Structural invariants checked by the tests. Returns human-readable
    /// violations (empty = consistent).
    pub fn check_invariants(&self) -> Vec<String> {
        let mut problems = Vec::new();
        // Every connected peer's tracker exists and lists it in its zone.
        for peer in self.peers.values() {
            if let Some(tid) = peer.tracker {
                match self.trackers.get(&tid) {
                    None => problems.push(format!("{} points at missing {tid}", peer.id)),
                    Some(t) => {
                        if !t.zone.contains_key(&peer.id) {
                            problems.push(format!("{} missing from {tid}'s zone", peer.id));
                        }
                    }
                }
            }
        }
        // Neighbour sets only reference live trackers.
        for tracker in self.trackers.values() {
            for e in tracker.neighbors.all() {
                if !self.trackers.contains_key(&e.id) {
                    problems.push(format!("{} references dead {}", tracker.id, e.id));
                }
            }
        }
        // Line consistency: each tracker's direct neighbours are its true
        // predecessor/successor in global IP order (when they exist).
        let mut by_ip: Vec<&TrackerState> = self.trackers.values().collect();
        by_ip.sort_by_key(|t| t.ip);
        for (i, t) in by_ip.iter().enumerate() {
            if i > 0 {
                let expected = by_ip[i - 1];
                if let Some(left) = t.neighbors.closest_left() {
                    if left.id != expected.id {
                        problems.push(format!(
                            "{}'s left neighbour is {} but the line predecessor is {}",
                            t.id, left.id, expected.id
                        ));
                    }
                } else {
                    problems.push(format!("{} lost its left neighbour", t.id));
                }
            }
            if i + 1 < by_ip.len() {
                let expected = by_ip[i + 1];
                if let Some(right) = t.neighbors.closest_right() {
                    if right.id != expected.id {
                        problems.push(format!(
                            "{}'s right neighbour is {} but the line successor is {}",
                            t.id, right.id, expected.id
                        ));
                    }
                } else {
                    problems.push(format!("{} lost its right neighbour", t.id));
                }
            }
        }
        problems
    }
}

// ---------------------------------------------------------------------------
// Heartbeats
// ---------------------------------------------------------------------------

/// Heartbeat timing knobs. The defaults follow the ToM-protocol discovery
/// story: a beat every 5 s, and a node declared dead after three consecutive
/// missed beats (a 15 s detection window).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeartbeatConfig {
    /// Period between two heartbeats from the same node.
    pub beat_period: SimDuration,
    /// Consecutive missed beats before a node is declared dead.
    pub miss_threshold: u32,
    /// Size of one heartbeat datagram when simulated as a real network flow.
    pub beat_bytes: u64,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        HeartbeatConfig {
            beat_period: SimDuration::from_secs(5),
            miss_threshold: 3,
            beat_bytes: 64,
        }
    }
}

impl HeartbeatConfig {
    /// Silence longer than this declares the sender dead.
    pub fn timeout(&self) -> SimDuration {
        self.beat_period
            .saturating_mul(u64::from(self.miss_threshold))
    }
}

/// One peer→tracker heartbeat the caller should inject as a real netsim
/// flow. The manager knows overlay identities, not the platform, so it hands
/// back the peer's host and the tracker's IP and lets the harness resolve the
/// destination host on its platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatFlow {
    /// Sending peer.
    pub peer: PeerId,
    /// Tracker the beat is addressed to.
    pub tracker: TrackerId,
    /// Host the peer runs on (flow source).
    pub src: HostId,
    /// IP of the destination tracker (resolve to a host platform-side).
    pub tracker_ip: IpAddr,
    /// Flow size in bytes.
    pub bytes: u64,
}

/// Failures surfaced by one [`HeartbeatManager::detect`] sweep.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Detections {
    /// Peers declared dead this sweep (already pruned from the overlay).
    pub peers: Vec<PeerId>,
    /// Trackers declared dead this sweep (line already repaired).
    pub trackers: Vec<TrackerId>,
    /// Protocol cost of the prunes and line repairs.
    pub cost: OverlayCost,
}

/// Failure detection by heartbeat timeout.
///
/// The manager tracks, per node, when a heartbeat was last *received*. The
/// harness drives the loop: every beat period it asks for the due
/// peer→tracker beats ([`HeartbeatManager::due_peer_beats`]), injects each
/// one as a real netsim flow, and on flow delivery calls
/// [`HeartbeatManager::record_peer_beat`] — so the detection latency the
/// model observes includes genuine network transfer time, not an assumed
/// constant. Tracker↔tracker line beats ride the management plane (trackers
/// may sit in different platform components with no route between them, as
/// in `dslam_forest`), so they are recorded logically via
/// [`HeartbeatManager::note_tracker_beats`].
///
/// A silent node is declared dead once [`HeartbeatConfig::timeout`] elapses
/// since its last recorded beat — but only if somebody live is left to
/// notice: a peer needs its tracker alive, a tracker needs another live
/// tracker on the line.
#[derive(Debug, Clone)]
pub struct HeartbeatManager {
    config: HeartbeatConfig,
    peer_seen: BTreeMap<PeerId, SimTime>,
    tracker_seen: BTreeMap<TrackerId, SimTime>,
    /// Peer→tracker heartbeat flows handed out so far.
    pub beats_sent: u64,
    /// Nodes declared dead so far (peers + trackers).
    pub failures_detected: u64,
}

impl HeartbeatManager {
    /// Create a manager with the given timing knobs.
    pub fn new(config: HeartbeatConfig) -> HeartbeatManager {
        HeartbeatManager {
            config,
            peer_seen: BTreeMap::new(),
            tracker_seen: BTreeMap::new(),
            beats_sent: 0,
            failures_detected: 0,
        }
    }

    /// The timing knobs this manager runs with.
    pub fn config(&self) -> &HeartbeatConfig {
        &self.config
    }

    /// Enroll every overlay node the manager has not seen yet, treating `now`
    /// as its first beat. Call after joins so fresh nodes get a full timeout
    /// window before they can be declared dead.
    pub fn observe(&mut self, overlay: &Overlay, now: SimTime) {
        for p in overlay.peers() {
            self.peer_seen.entry(p.id).or_insert(now);
        }
        for t in overlay.trackers() {
            self.tracker_seen.entry(t.id).or_insert(now);
        }
    }

    /// The peer→tracker beats due this period: one per *live* peer that is
    /// bound to a host and attached to a tracker. Crashed peers stay silent —
    /// that silence is exactly what the timeout detects.
    pub fn due_peer_beats(&mut self, overlay: &Overlay) -> Vec<HeartbeatFlow> {
        let beats: Vec<HeartbeatFlow> = overlay
            .live_peers()
            .filter_map(|p| {
                let src = p.host?;
                let tid = p.tracker?;
                let tracker = overlay.tracker(tid)?;
                Some(HeartbeatFlow {
                    peer: p.id,
                    tracker: tid,
                    src,
                    tracker_ip: tracker.ip,
                    bytes: self.config.beat_bytes,
                })
            })
            .collect();
        self.beats_sent += beats.len() as u64;
        beats
    }

    /// A peer heartbeat flow was delivered at `now`: refresh its last-seen
    /// time. Beats from peers that crashed mid-flight still count — the
    /// tracker heard from them before the crash.
    pub fn record_peer_beat(&mut self, peer: PeerId, now: SimTime) {
        self.peer_seen.insert(peer, now);
    }

    /// Record the management-plane tracker↔tracker line beats: every live
    /// tracker is heard from at `now`; crashed trackers stay silent.
    pub fn note_tracker_beats(&mut self, overlay: &Overlay, now: SimTime) {
        for t in overlay.live_trackers() {
            self.tracker_seen.insert(t.id, now);
        }
    }

    /// Declare dead every node silent for longer than the timeout, prune it
    /// from the overlay, and run the repair protocols. Deterministic: sweeps
    /// in id order.
    pub fn detect(&mut self, overlay: &mut Overlay, now: SimTime) -> Detections {
        let timeout = self.config.timeout();
        let since = |seen: SimTime| {
            now.duration_since(SimTime::ZERO)
                .saturating_sub(seen.duration_since(SimTime::ZERO))
        };
        let mut out = Detections::default();

        // Forget nodes that already left through other paths (graceful
        // departure, expiry) so the maps track the overlay population.
        self.peer_seen.retain(|id, _| overlay.peer(*id).is_some());
        self.tracker_seen
            .retain(|id, _| overlay.tracker(*id).is_some());

        // A tracker is detectable only if another live tracker remains on the
        // line to miss its beats.
        let overdue_trackers: Vec<TrackerId> = self
            .tracker_seen
            .iter()
            .filter(|(_, &seen)| since(seen) > timeout)
            .map(|(&id, _)| id)
            .collect();
        for id in overdue_trackers {
            let others_alive = overlay.live_trackers().any(|t| t.id != id);
            if !others_alive {
                continue;
            }
            self.tracker_seen.remove(&id);
            out.cost = out.cost.then(overlay.tracker_crash(id));
            out.trackers.push(id);
        }

        // A peer is detectable only by a live tracker holding it in its zone.
        let overdue_peers: Vec<PeerId> = self
            .peer_seen
            .iter()
            .filter(|(_, &seen)| since(seen) > timeout)
            .map(|(&id, _)| id)
            .collect();
        for id in overdue_peers {
            let detectable = overlay
                .peer(id)
                .and_then(|p| p.tracker)
                .map(|tid| overlay.tracker(tid).is_some() && !overlay.is_tracker_crashed(tid))
                .unwrap_or(false);
            if !detectable {
                continue;
            }
            self.peer_seen.remove(&id);
            out.cost = out.cost.then(overlay.peer_detected_dead(id));
            out.peers.push(id);
        }

        self.failures_detected += (out.peers.len() + out.trackers.len()) as u64;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> IpAddr {
        IpAddr::from_octets(a, b, c, d)
    }

    fn small_overlay() -> Overlay {
        Overlay::bootstrap(
            OverlayConfig::default(),
            &[ip(10, 0, 0, 10), ip(10, 0, 1, 10), ip(10, 0, 2, 10)],
        )
    }

    #[test]
    fn bootstrap_builds_a_consistent_line() {
        let overlay = small_overlay();
        assert_eq!(overlay.tracker_count(), 3);
        assert!(
            overlay.check_invariants().is_empty(),
            "{:?}",
            overlay.check_invariants()
        );
        assert_eq!(overlay.server().known_trackers.len(), 3);
    }

    #[test]
    fn tracker_join_inserts_at_the_right_position() {
        let mut overlay = small_overlay();
        let (id, cost) = overlay.tracker_join(ip(10, 0, 1, 200));
        assert!(cost.messages > 0);
        assert!(overlay.tracker(id).is_some());
        assert!(
            overlay.check_invariants().is_empty(),
            "{:?}",
            overlay.check_invariants()
        );
        // Its line neighbours must be 10.0.1.10 (left) and 10.0.2.10 (right).
        let t = overlay.tracker(id).unwrap();
        assert_eq!(t.neighbors.closest_left().unwrap().ip, ip(10, 0, 1, 10));
        assert_eq!(t.neighbors.closest_right().unwrap().ip, ip(10, 0, 2, 10));
    }

    #[test]
    fn many_tracker_joins_keep_the_line_consistent() {
        let mut overlay = small_overlay();
        for i in 0..20u8 {
            overlay.tracker_join(ip(10, 0, i % 5, 20 + i));
        }
        assert_eq!(overlay.tracker_count(), 23);
        assert!(
            overlay.check_invariants().is_empty(),
            "{:?}",
            overlay.check_invariants()
        );
    }

    #[test]
    fn peer_join_lands_in_the_closest_zone() {
        let mut overlay = small_overlay();
        let (peer, cost) = overlay.peer_join(ip(10, 0, 2, 77), None, PeerResources::xeon_em64t());
        assert!(cost.messages >= 3);
        let tid = overlay.peer(peer).unwrap().tracker.unwrap();
        assert_eq!(
            overlay.tracker(tid).unwrap().ip,
            ip(10, 0, 2, 10),
            "same /24 wins"
        );
        assert!(overlay.tracker(tid).unwrap().zone.contains_key(&peer));
        assert!(!overlay.peer(peer).unwrap().tracker_list.is_empty());
        assert!(overlay.check_invariants().is_empty());
    }

    #[test]
    fn tracker_crash_repairs_the_line_and_rehomes_peers() {
        let mut overlay = small_overlay();
        let (mid, _) = overlay.tracker_join(ip(10, 0, 1, 200));
        let (peer, _) = overlay.peer_join(ip(10, 0, 1, 201), None, PeerResources::xeon_em64t());
        assert_eq!(overlay.peer(peer).unwrap().tracker, Some(mid));
        let cost = overlay.tracker_crash(mid);
        assert!(cost.messages > 0);
        assert_eq!(overlay.tracker_count(), 3);
        assert!(
            overlay.check_invariants().is_empty(),
            "{:?}",
            overlay.check_invariants()
        );
        // The orphaned peer is attached to a surviving tracker.
        let new_tracker = overlay.peer(peer).unwrap().tracker.unwrap();
        assert!(overlay.tracker(new_tracker).is_some());
        assert!(overlay
            .tracker(new_tracker)
            .unwrap()
            .zone
            .contains_key(&peer));
    }

    #[test]
    fn crashing_an_unknown_tracker_is_a_noop() {
        let mut overlay = small_overlay();
        let cost = overlay.tracker_crash(TrackerId::new(999));
        assert_eq!(cost, OverlayCost::default());
        assert_eq!(overlay.tracker_count(), 3);
    }

    #[test]
    fn server_can_disconnect_and_reconnect() {
        let mut overlay = small_overlay();
        overlay.server_disconnect();
        // The overlay keeps accepting joins while the server is away.
        let (peer, _) = overlay.peer_join(ip(10, 0, 0, 55), None, PeerResources::xeon_em64t());
        let (tracker, _) = overlay.tracker_join(ip(10, 0, 3, 10));
        assert!(overlay.peer(peer).is_some());
        assert!(overlay.tracker(tracker).is_some());
        assert!(overlay.check_invariants().is_empty());
        let cost = overlay.server_reconnect();
        assert_eq!(cost.messages as usize, overlay.tracker_count());
        assert!(overlay.server().reports_received > 0);
    }

    #[test]
    fn peer_updates_refresh_the_zone_and_silence_expires() {
        let mut overlay = small_overlay();
        let (peer, _) = overlay.peer_join(ip(10, 0, 0, 99), None, PeerResources::xeon_em64t());
        overlay.advance_time(SimDuration::from_secs(60));
        overlay.peer_update(peer, UsageState::Free);
        overlay.advance_time(SimDuration::from_secs(60));
        // Updated 60 s ago with a 90 s timeout: still alive.
        assert!(overlay.expire_silent_peers().is_empty());
        overlay.advance_time(SimDuration::from_secs(60));
        // Now 120 s since the last update: expired.
        let expired = overlay.expire_silent_peers();
        assert_eq!(expired, vec![peer]);
        assert_eq!(overlay.peer(peer).unwrap().tracker, None);
    }

    #[test]
    fn collection_prefers_the_submitters_zone_then_expands() {
        let mut overlay = small_overlay();
        // 4 peers near tracker 0, 4 near tracker 2.
        let mut near = Vec::new();
        for i in 0..4u8 {
            near.push(
                overlay
                    .peer_join(ip(10, 0, 0, 100 + i), None, PeerResources::xeon_em64t())
                    .0,
            );
        }
        let mut far = Vec::new();
        for i in 0..4u8 {
            far.push(
                overlay
                    .peer_join(ip(10, 0, 2, 100 + i), None, PeerResources::xeon_em64t())
                    .0,
            );
        }
        let (submitter, _) =
            overlay.peer_join(ip(10, 0, 0, 250), None, PeerResources::xeon_em64t());
        let task = TaskId::new(1);
        let (collected, cost) =
            overlay.collect_peers(submitter, 6, &ResourceRequirements::none(), task);
        assert_eq!(collected.len(), 6);
        assert!(cost.messages >= 6);
        // The first four collected peers are the near ones.
        for p in &near {
            assert!(collected.contains(p), "zone peers must be collected first");
        }
        // Collected peers are now busy and cannot be collected again.
        let (second, _) =
            overlay.collect_peers(submitter, 8, &ResourceRequirements::none(), TaskId::new(2));
        assert_eq!(second.len(), 2, "only the two unreserved far peers remain");
        // Releasing makes them available again.
        assert_eq!(overlay.release_peers(task), 6);
        let (third, _) =
            overlay.collect_peers(submitter, 8, &ResourceRequirements::none(), TaskId::new(3));
        assert_eq!(third.len(), 6);
    }

    #[test]
    fn collection_filters_by_requirements() {
        let mut overlay = small_overlay();
        overlay.peer_join(ip(10, 0, 0, 30), None, PeerResources::weak());
        overlay.peer_join(ip(10, 0, 0, 31), None, PeerResources::xeon_em64t());
        let (submitter, _) = overlay.peer_join(ip(10, 0, 0, 32), None, PeerResources::xeon_em64t());
        let (collected, _) = overlay.collect_peers(
            submitter,
            2,
            &ResourceRequirements::cluster_class(),
            TaskId::new(9),
        );
        assert_eq!(collected.len(), 1, "the weak peer must be filtered out");
    }

    #[test]
    fn collection_from_an_unknown_submitter_returns_nothing() {
        let mut overlay = small_overlay();
        let (collected, cost) = overlay.collect_peers(
            PeerId::new(424242),
            4,
            &ResourceRequirements::none(),
            TaskId::new(1),
        );
        assert!(collected.is_empty());
        assert_eq!(cost, OverlayCost::default());
    }

    #[test]
    fn crash_stop_keeps_the_peer_in_the_maps_until_detected() {
        let mut overlay = small_overlay();
        let (id, _) = overlay.peer_join(ip(10, 0, 0, 40), None, PeerResources::xeon_em64t());
        assert!(overlay.peer_crash(id));
        assert!(!overlay.peer_crash(id), "double crash is a no-op");
        assert!(overlay.is_peer_crashed(id));
        // Dead but undetected: still counted and still in its tracker's zone.
        assert_eq!(overlay.peer_count(), 1);
        assert_eq!(overlay.live_peer_count(), 0);
        assert!(overlay.peer(id).is_some());
        let cost = overlay.peer_detected_dead(id);
        assert_eq!(cost.messages, 1);
        assert_eq!(overlay.peer_count(), 0);
        assert!(!overlay.is_peer_crashed(id));
        assert!(overlay.check_invariants().is_empty());
    }

    #[test]
    fn crash_peers_on_kills_exactly_the_hosts_component() {
        let mut overlay = small_overlay();
        let doomed: Vec<HostId> = (0..3).map(HostId::new).collect();
        let mut expected = Vec::new();
        for i in 0..6u8 {
            let host = HostId::new(u32::from(i));
            let (id, _) = overlay.peer_join(
                ip(10, 0, i % 3, 50 + i),
                Some(host),
                PeerResources::xeon_em64t(),
            );
            if i < 3 {
                expected.push(id);
            }
        }
        let mut killed = overlay.crash_peers_on(&doomed);
        killed.sort();
        expected.sort();
        assert_eq!(killed, expected);
        assert_eq!(overlay.live_peer_count(), 3);
        // Idempotent: the same hosts have no live peers left.
        assert!(overlay.crash_peers_on(&doomed).is_empty());
    }

    #[test]
    fn tracker_crash_drops_crashed_orphans_instead_of_rehoming_them() {
        let mut overlay = small_overlay();
        let mid = overlay
            .trackers()
            .find(|t| t.ip == ip(10, 0, 1, 10))
            .unwrap()
            .id;
        let (dead_peer, _) = overlay.peer_join(ip(10, 0, 1, 60), None, PeerResources::xeon_em64t());
        let (live_peer, _) = overlay.peer_join(ip(10, 0, 1, 61), None, PeerResources::xeon_em64t());
        assert_eq!(overlay.peer(dead_peer).unwrap().tracker, Some(mid));
        overlay.peer_crash(dead_peer);
        overlay.tracker_crash(mid);
        assert!(overlay.peer(dead_peer).is_none(), "crashed orphan dropped");
        let rehomed = overlay.peer(live_peer).unwrap();
        assert!(rehomed.tracker.is_some(), "live orphan re-homed");
        assert_ne!(rehomed.tracker, Some(mid));
        assert!(overlay.check_invariants().is_empty());
    }

    #[test]
    fn heartbeat_timeout_detects_a_crashed_peer_within_the_window() {
        let mut overlay = small_overlay();
        let hb_cfg = HeartbeatConfig::default();
        let mut hb = HeartbeatManager::new(hb_cfg);
        let (id, _) = overlay.peer_join(
            ip(10, 0, 0, 70),
            Some(HostId::new(0)),
            PeerResources::xeon_em64t(),
        );
        hb.observe(&overlay, overlay.now());
        overlay.peer_crash(id);

        let beat = hb_cfg.beat_period;
        for _ in 0..hb_cfg.miss_threshold {
            overlay.advance_time(beat);
            hb.note_tracker_beats(&overlay, overlay.now());
            assert!(
                hb.due_peer_beats(&overlay).is_empty(),
                "crashed peers must stay silent"
            );
            let now = overlay.now();
            let d = hb.detect(&mut overlay, now);
            assert!(d.peers.is_empty(), "not overdue before the full window");
        }
        // One more beat period pushes the silence past beat × miss_threshold.
        overlay.advance_time(beat);
        let now = overlay.now();
        let d = hb.detect(&mut overlay, now);
        assert_eq!(d.peers, vec![id]);
        assert_eq!(overlay.peer_count(), 0);
        assert_eq!(hb.failures_detected, 1);
    }

    #[test]
    fn heartbeat_beats_keep_a_live_peer_alive_indefinitely() {
        let mut overlay = small_overlay();
        let hb_cfg = HeartbeatConfig::default();
        let mut hb = HeartbeatManager::new(hb_cfg);
        let (id, _) = overlay.peer_join(
            ip(10, 0, 0, 71),
            Some(HostId::new(0)),
            PeerResources::xeon_em64t(),
        );
        hb.observe(&overlay, overlay.now());
        for _ in 0..10 {
            overlay.advance_time(hb_cfg.beat_period);
            let beats = hb.due_peer_beats(&overlay);
            assert_eq!(beats.len(), 1);
            assert_eq!(beats[0].peer, id);
            hb.record_peer_beat(id, overlay.now());
            hb.note_tracker_beats(&overlay, overlay.now());
            let now = overlay.now();
            assert!(hb.detect(&mut overlay, now).peers.is_empty());
        }
        assert_eq!(overlay.live_peer_count(), 1);
        assert_eq!(hb.beats_sent, 10);
    }

    #[test]
    fn heartbeat_timeout_detects_a_crashed_tracker_and_repairs_the_line() {
        let mut overlay = small_overlay();
        let hb_cfg = HeartbeatConfig::default();
        let mut hb = HeartbeatManager::new(hb_cfg);
        let mid = overlay
            .trackers()
            .find(|t| t.ip == ip(10, 0, 1, 10))
            .unwrap()
            .id;
        hb.observe(&overlay, overlay.now());
        overlay.tracker_crash_stop(mid);
        assert_eq!(overlay.live_tracker_count(), 2);
        // Crashed but undetected: the line still references the dead tracker.
        assert_eq!(overlay.tracker_count(), 3);

        for _ in 0..hb_cfg.miss_threshold {
            overlay.advance_time(hb_cfg.beat_period);
            hb.note_tracker_beats(&overlay, overlay.now());
            let now = overlay.now();
            let d = hb.detect(&mut overlay, now);
            assert!(d.trackers.is_empty(), "not overdue before the full window");
        }
        overlay.advance_time(hb_cfg.beat_period);
        hb.note_tracker_beats(&overlay, overlay.now());
        let now = overlay.now();
        let d = hb.detect(&mut overlay, now);
        assert_eq!(d.trackers, vec![mid]);
        assert!(d.cost.messages > 0, "line repair exchanges messages");
        assert_eq!(overlay.tracker_count(), 2);
        assert!(overlay.check_invariants().is_empty());
    }

    #[test]
    fn lone_crashed_tracker_is_never_detected() {
        let mut overlay = Overlay::bootstrap(OverlayConfig::default(), &[ip(10, 0, 0, 10)]);
        let hb_cfg = HeartbeatConfig::default();
        let mut hb = HeartbeatManager::new(hb_cfg);
        let only = overlay.trackers().next().unwrap().id;
        hb.observe(&overlay, overlay.now());
        overlay.tracker_crash_stop(only);
        overlay.advance_time(hb_cfg.timeout().saturating_mul(10));
        let now = overlay.now();
        let d = hb.detect(&mut overlay, now);
        assert!(d.trackers.is_empty(), "nobody is left to notice");
        assert_eq!(overlay.tracker_count(), 1);
    }
}
