//! The reference executor: running an application with P2PDC.
//!
//! This is the code path that produces `t_normal_execution`, the reference
//! time of the paper's figures: the submitter collects peers through the
//! overlay (§III-B), builds the hierarchical allocation (§III-C), ships the
//! subtask inputs, runs the distributed iteration loop over P2PSAP channels on
//! the simulated platform, and gathers the results back through the
//! coordinators.
//!
//! The iteration loop is simulated with the same flow-level network model the
//! dPerf prediction uses (that is the whole point of trace-based prediction:
//! the network model is shared), but the executor derives its behaviour
//! directly from the [`IterativeApp`] description — allocation, input
//! shipping and result collection are extra phases dPerf does not predict,
//! which is why reference and predicted times are close but not identical
//! (Fig. 10).

use crate::allocation::{build_allocation, hierarchical_cost, AllocationGraph, CMAX};
use crate::app::IterativeApp;
use crate::overlay::{Overlay, OverlayConfig};
use crate::proximity::GroupCandidate;
use netsim::{
    replay, Network, PlacementPolicy, ProcessScript, ReplayConfig, ReplayOp, SharingMode, Topology,
};
use p2p_common::{
    DataSize, HostId, PeerId, PeerResources, ResourceRequirements, SimDuration, TaskId,
};
use p2psap::{AdaptationController, IterativeScheme, NetworkContext};
use std::collections::HashMap;

/// Tag used by halo-exchange messages.
const TAG_HALO: u32 = 1;
/// Tag used by the convergence reduction.
const TAG_REDUCE: u32 = 2;
/// Tag used by the final synchronisation of the asynchronous scheme.
const TAG_FINAL: u32 = 3;
/// Size of an overlay control message on the wire.
const CONTROL_MSG_BYTES: u64 = 256;

/// Configuration of a reference run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutionConfig {
    /// Compute-time multiplier of the compiler optimisation level
    /// (1.0 = `-O3`; see `dperf::OptLevel::time_factor`).
    pub opt_factor: f64,
    /// Iterative scheme announced to P2PSAP.
    pub scheme: IterativeScheme,
    /// Bandwidth-sharing model of the network simulation.
    pub sharing: SharingMode,
    /// Resource requirements attached to the peer request.
    pub requirements: ResourceRequirements,
}

impl Default for ExecutionConfig {
    fn default() -> Self {
        ExecutionConfig {
            opt_factor: 1.0,
            scheme: IterativeScheme::Synchronous,
            sharing: SharingMode::Bottleneck,
            requirements: ResourceRequirements::none(),
        }
    }
}

/// Outcome of a reference run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Total time from task submission to results at the submitter.
    pub total: SimDuration,
    /// Time spent collecting peers through the overlay.
    pub collection_time: SimDuration,
    /// Time spent building groups and shipping subtask inputs.
    pub allocation_time: SimDuration,
    /// Time of the distributed iteration loop (the part dPerf predicts).
    pub execution_time: SimDuration,
    /// Time spent returning results through the coordinators.
    pub result_time: SimDuration,
    /// Overlay control messages exchanged (collection + allocation).
    pub overlay_messages: u64,
    /// Application messages exchanged during the iteration loop.
    pub app_messages: u64,
    /// Number of peers that computed.
    pub peers: usize,
}

/// Run `app` with P2PDC on the given hosts of `topology` and report the
/// reference execution time. `hosts[0]` acts as the submitter and as rank 0.
pub fn run_reference(
    app: &dyn IterativeApp,
    topology: &Topology,
    hosts: &[HostId],
    cfg: &ExecutionConfig,
) -> RunReport {
    assert!(!hosts.is_empty(), "a run needs at least one host");
    let nprocs = hosts.len();
    let mut network = Network::new(topology.platform.clone(), cfg.sharing);

    // ---- Overlay construction: trackers + peer joins -----------------------
    let tracker_ips: Vec<_> = hosts
        .iter()
        .step_by(CMAX)
        .map(|&h| topology.platform.host(h).ip.expect("hosts have IPs"))
        .collect();
    let mut overlay = Overlay::bootstrap(OverlayConfig::default(), &tracker_ips);
    let mut peer_of_host: HashMap<HostId, PeerId> = HashMap::new();
    let mut host_of_peer: HashMap<PeerId, HostId> = HashMap::new();
    for &h in hosts {
        let ip = topology.platform.host(h).ip.expect("hosts have IPs");
        let speed = topology.platform.host(h).speed_flops;
        let resources = PeerResources {
            cpu_flops: speed,
            ..PeerResources::xeon_em64t()
        };
        let (pid, _) = overlay.peer_join(ip, Some(h), resources);
        peer_of_host.insert(h, pid);
        host_of_peer.insert(pid, h);
    }
    let submitter_host = hosts[0];
    let submitter = peer_of_host[&submitter_host];

    // Representative control-message hop delay on this platform.
    let probe_host = hosts[hosts.len() / 2];
    let hop_delay = network.message_delay(
        submitter_host,
        probe_host,
        DataSize::from_bytes(CONTROL_MSG_BYTES),
    );

    // ---- Peer collection (§III-B) ------------------------------------------
    let task = TaskId::new(1);
    let (collected, collect_cost) = if nprocs > 1 {
        overlay.collect_peers(submitter, nprocs - 1, &cfg.requirements, task)
    } else {
        (Vec::new(), Default::default())
    };
    assert_eq!(
        collected.len(),
        nprocs - 1,
        "the overlay could not supply enough peers matching the requirements"
    );
    let collection_time = hop_delay.saturating_mul(collect_cost.critical_hops as u64);

    // ---- Hierarchical allocation + subtask inputs (§III-C) ------------------
    let candidates: Vec<GroupCandidate> = collected
        .iter()
        .map(|&pid| {
            let p = overlay.peer(pid).expect("collected peers exist");
            GroupCandidate {
                id: pid,
                ip: p.ip,
                resources: p.resources,
            }
        })
        .collect();
    let graph = build_allocation(submitter, &candidates, CMAX);
    let allocation_time = input_distribution_time(
        app,
        &graph,
        submitter_host,
        &host_of_peer,
        &mut network,
        nprocs,
    );
    let alloc_cost = hierarchical_cost(&graph);

    // ---- The distributed iteration loop -------------------------------------
    let context = if nprocs >= 2 {
        NetworkContext::classify(network.platform_mut(), hosts[0], hosts[1])
    } else {
        NetworkContext::IntraCluster
    };
    let channel = AdaptationController::decide(cfg.scheme, context);
    let scripts = build_scripts(app, topology, hosts, cfg);
    let replay_cfg = ReplayConfig {
        sharing: cfg.sharing,
        protocol: channel.protocol_costs(),
        ..ReplayConfig::default()
    };
    let exec = replay(topology.platform.clone(), hosts, &scripts, &replay_cfg);

    // ---- Result collection through the coordinators -------------------------
    let result_time = result_collection_time(
        app,
        &graph,
        submitter_host,
        &host_of_peer,
        &mut network,
        nprocs,
    );

    overlay.release_peers(task);

    RunReport {
        total: collection_time + allocation_time + exec.makespan + result_time,
        collection_time,
        allocation_time,
        execution_time: exec.makespan,
        result_time,
        overlay_messages: collect_cost.messages + alloc_cost.messages,
        app_messages: exec.messages_sent,
        peers: nprocs,
    }
}

/// Build the per-rank iteration-loop scripts.
fn build_scripts(
    app: &dyn IterativeApp,
    topology: &Topology,
    hosts: &[HostId],
    cfg: &ExecutionConfig,
) -> Vec<ProcessScript> {
    let nprocs = hosts.len();
    let iterations = app.iterations_for(cfg.scheme);
    let reduction_every = app.reduction_interval().max(1);
    let mut scripts = Vec::with_capacity(nprocs);
    for (rank, &host) in hosts.iter().enumerate() {
        let speed = topology.platform.host(host).speed_flops;
        let compute =
            SimDuration::from_secs_f64(app.compute_flops(rank, nprocs) / speed * cfg.opt_factor);
        let neighbors = app.neighbors(rank, nprocs);
        let halo = app.halo_bytes();
        let mut ops = Vec::new();
        for iter in 0..iterations {
            ops.push(ReplayOp::Compute { duration: compute });
            match cfg.scheme {
                IterativeScheme::Synchronous => {
                    // Post every boundary row first, then wait for the
                    // neighbours' rows; waiting in between would serialise the
                    // peer chain every sweep.
                    for &n in &neighbors {
                        ops.push(ReplayOp::Send {
                            to: n,
                            bytes: halo,
                            tag: TAG_HALO,
                        });
                    }
                    for &n in &neighbors {
                        ops.push(ReplayOp::Recv {
                            from: n,
                            tag: TAG_HALO,
                        });
                    }
                    if app.reduction_bytes() > 0 && nprocs > 1 && iter % reduction_every == 0 {
                        push_reduction(&mut ops, rank, nprocs, app.reduction_bytes(), TAG_REDUCE);
                    }
                }
                IterativeScheme::Asynchronous => {
                    // Fire-and-forget updates: never wait for the neighbours.
                    for &n in &neighbors {
                        ops.push(ReplayOp::Send {
                            to: n,
                            bytes: halo,
                            tag: TAG_HALO,
                        });
                    }
                }
            }
        }
        if cfg.scheme == IterativeScheme::Asynchronous && nprocs > 1 {
            // One final synchronisation so that termination is detected.
            push_reduction(
                &mut ops,
                rank,
                nprocs,
                app.reduction_bytes().max(8),
                TAG_FINAL,
            );
        }
        scripts.push(ProcessScript { rank, ops });
    }
    scripts
}

/// Gather-to-rank-0 followed by broadcast (the convergence test / barrier).
fn push_reduction(ops: &mut Vec<ReplayOp>, rank: usize, nprocs: usize, bytes: u64, tag: u32) {
    if rank == 0 {
        for r in 1..nprocs {
            ops.push(ReplayOp::Recv { from: r, tag });
        }
        for r in 1..nprocs {
            ops.push(ReplayOp::Send { to: r, bytes, tag });
        }
    } else {
        ops.push(ReplayOp::Send { to: 0, bytes, tag });
        ops.push(ReplayOp::Recv { from: 0, tag });
    }
}

/// Time to ship subtask inputs: the submitter serialises over the
/// coordinators, the coordinators relay to their members in parallel.
fn input_distribution_time(
    app: &dyn IterativeApp,
    graph: &AllocationGraph,
    submitter_host: HostId,
    host_of_peer: &HashMap<PeerId, HostId>,
    network: &mut Network,
    nprocs: usize,
) -> SimDuration {
    let mut submitter_phase = SimDuration::ZERO;
    let mut slowest_group = SimDuration::ZERO;
    for group in &graph.groups {
        let coord_host = host_of_peer[&group.coordinator];
        let group_bytes: u64 = group
            .members
            .iter()
            .map(|_| app.input_bytes(0, nprocs))
            .sum();
        submitter_phase += network.message_delay(
            submitter_host,
            coord_host,
            DataSize::from_bytes(group_bytes + CONTROL_MSG_BYTES),
        );
        let mut group_phase = SimDuration::ZERO;
        for member in group.workers() {
            let member_host = host_of_peer[&member];
            group_phase += network.message_delay(
                coord_host,
                member_host,
                DataSize::from_bytes(app.input_bytes(0, nprocs) + CONTROL_MSG_BYTES),
            );
        }
        slowest_group = slowest_group.max(group_phase);
    }
    submitter_phase + slowest_group
}

/// Time to return results: members send to their coordinator (coordinators in
/// parallel, serialising within a group), then the coordinators forward the
/// aggregated results to the submitter one after the other.
fn result_collection_time(
    app: &dyn IterativeApp,
    graph: &AllocationGraph,
    submitter_host: HostId,
    host_of_peer: &HashMap<PeerId, HostId>,
    network: &mut Network,
    nprocs: usize,
) -> SimDuration {
    let mut slowest_group = SimDuration::ZERO;
    let mut submitter_phase = SimDuration::ZERO;
    for group in &graph.groups {
        let coord_host = host_of_peer[&group.coordinator];
        let mut group_phase = SimDuration::ZERO;
        let mut group_bytes = app.result_bytes(0, nprocs);
        for member in group.workers() {
            let member_host = host_of_peer[&member];
            group_phase += network.message_delay(
                member_host,
                coord_host,
                DataSize::from_bytes(app.result_bytes(0, nprocs)),
            );
            group_bytes += app.result_bytes(0, nprocs);
        }
        slowest_group = slowest_group.max(group_phase);
        submitter_phase += network.message_delay(
            coord_host,
            submitter_host,
            DataSize::from_bytes(group_bytes),
        );
    }
    slowest_group + submitter_phase
}

/// Convenience: pick hosts of a topology with a placement policy and run.
pub fn run_reference_on(
    app: &dyn IterativeApp,
    topology: &Topology,
    nprocs: usize,
    placement: PlacementPolicy,
    cfg: &ExecutionConfig,
) -> RunReport {
    let hosts = topology.pick_hosts(nprocs, placement);
    run_reference(app, topology, &hosts, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::SyntheticApp;
    use netsim::{cluster_bordeplage, daisy_xdsl, HostSpec};

    fn app() -> SyntheticApp {
        SyntheticApp {
            total_flops_per_iter: 4.0e7,
            iters: 60,
            halo: 9600,
            input: 64 * 1024,
            result: 64 * 1024,
        }
    }

    #[test]
    fn report_components_add_up_and_are_positive() {
        let topo = cluster_bordeplage(8, HostSpec::default());
        let report = run_reference(&app(), &topo, &topo.hosts, &ExecutionConfig::default());
        assert_eq!(report.peers, 8);
        assert!(report.execution_time > SimDuration::ZERO);
        assert!(report.collection_time > SimDuration::ZERO);
        assert!(report.allocation_time > SimDuration::ZERO);
        assert!(report.result_time > SimDuration::ZERO);
        assert_eq!(
            report.total,
            report.collection_time
                + report.allocation_time
                + report.execution_time
                + report.result_time
        );
        assert!(report.overlay_messages > 0);
        assert!(report.app_messages > 0);
    }

    #[test]
    fn more_cluster_peers_reduce_the_execution_time() {
        let topo = cluster_bordeplage(16, HostSpec::default());
        let t2 = run_reference(&app(), &topo, &topo.hosts[..2], &ExecutionConfig::default());
        let t8 = run_reference(&app(), &topo, &topo.hosts[..8], &ExecutionConfig::default());
        assert!(
            t8.execution_time < t2.execution_time,
            "8 peers ({}) must beat 2 peers ({})",
            t8.execution_time,
            t2.execution_time
        );
    }

    #[test]
    fn higher_opt_factor_slows_the_run_down() {
        let topo = cluster_bordeplage(4, HostSpec::default());
        let o3 = run_reference(&app(), &topo, &topo.hosts, &ExecutionConfig::default());
        let o0 = run_reference(
            &app(),
            &topo,
            &topo.hosts,
            &ExecutionConfig {
                opt_factor: 3.1,
                ..ExecutionConfig::default()
            },
        );
        let ratio = o0.execution_time.as_secs_f64() / o3.execution_time.as_secs_f64();
        assert!(ratio > 1.5, "O0 must be clearly slower (ratio {ratio})");
    }

    #[test]
    fn xdsl_runs_are_much_slower_than_cluster_runs() {
        let cluster = cluster_bordeplage(4, HostSpec::default());
        let xdsl = daisy_xdsl(64, HostSpec::default(), 5);
        let c = run_reference(
            &app(),
            &cluster,
            &cluster.hosts,
            &ExecutionConfig::default(),
        );
        let x = run_reference_on(
            &app(),
            &xdsl,
            4,
            PlacementPolicy::Spread,
            &ExecutionConfig::default(),
        );
        assert!(
            x.execution_time > c.execution_time * 3u64,
            "xDSL {} vs cluster {}",
            x.execution_time,
            c.execution_time
        );
    }

    #[test]
    fn asynchronous_scheme_avoids_waiting_on_slow_links() {
        let xdsl = daisy_xdsl(64, HostSpec::default(), 5);
        let hosts = xdsl.pick_hosts(4, PlacementPolicy::Spread);
        let sync = run_reference(&app(), &xdsl, &hosts, &ExecutionConfig::default());
        let asyn = run_reference(
            &app(),
            &xdsl,
            &hosts,
            &ExecutionConfig {
                scheme: IterativeScheme::Asynchronous,
                ..ExecutionConfig::default()
            },
        );
        assert!(
            asyn.execution_time < sync.execution_time,
            "async ({}) should win over sync ({}) on xDSL despite extra iterations",
            asyn.execution_time,
            sync.execution_time
        );
    }

    #[test]
    fn single_peer_run_degenerates_gracefully() {
        let topo = cluster_bordeplage(1, HostSpec::default());
        let report = run_reference(&app(), &topo, &topo.hosts, &ExecutionConfig::default());
        assert_eq!(report.peers, 1);
        assert_eq!(report.app_messages, 0);
        assert_eq!(report.collection_time, SimDuration::ZERO);
        assert!(report.execution_time > SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "could not supply enough peers")]
    fn impossible_requirements_abort_the_run() {
        let topo = cluster_bordeplage(4, HostSpec::default());
        let cfg = ExecutionConfig {
            requirements: ResourceRequirements {
                min_cpu_flops: 1e15,
                min_memory_mb: 0,
                min_disk_gb: 0,
            },
            ..ExecutionConfig::default()
        };
        run_reference(&app(), &topo, &topo.hosts, &cfg);
    }
}
