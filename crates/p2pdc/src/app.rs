//! The application interface of the P2PDC executor.
//!
//! P2PDC targets "the solution of large scale numerical simulation problems
//! via distributed iterative methods" (abstract). [`IterativeApp`] is what
//! such an application must describe so that the environment can decompose it
//! into subtasks, run the iteration loop over the allocated peers and gather
//! the results: per-iteration compute load, the halo-exchange pattern, the
//! convergence-test reduction, and the subtask input/result payloads.

use p2psap::IterativeScheme;

/// A distributed iterative application, as P2PDC sees it.
pub trait IterativeApp {
    /// Application name (reports, trace labels).
    fn name(&self) -> &str;

    /// Number of iterations executed under the synchronous scheme.
    fn iterations(&self) -> u32;

    /// Compute work of one iteration on `rank`, in flops.
    fn compute_flops(&self, rank: usize, nprocs: usize) -> f64;

    /// Ranks this rank exchanges boundary data with, every iteration.
    fn neighbors(&self, rank: usize, nprocs: usize) -> Vec<usize>;

    /// Size of one boundary exchange message, in bytes.
    fn halo_bytes(&self) -> u64;

    /// Payload of the per-iteration convergence reduction, in bytes
    /// (0 disables the reduction entirely).
    fn reduction_bytes(&self) -> u64 {
        8
    }

    /// Run the convergence reduction every this many iterations.
    fn reduction_interval(&self) -> u32 {
        1
    }

    /// Bytes of subtask input data shipped to `rank` during allocation.
    fn input_bytes(&self, rank: usize, nprocs: usize) -> u64;

    /// Bytes of result data `rank` returns at the end.
    fn result_bytes(&self, rank: usize, nprocs: usize) -> u64;

    /// Iteration-count penalty of the asynchronous scheme relative to the
    /// synchronous one (asynchronous iterations converge more slowly but never
    /// wait; the default +30 % follows the asynchronous-relaxation literature
    /// the obstacle code builds on).
    fn async_iteration_factor(&self) -> f64 {
        1.3
    }

    /// Effective iteration count under a given scheme.
    fn iterations_for(&self, scheme: IterativeScheme) -> u32 {
        match scheme {
            IterativeScheme::Synchronous => self.iterations(),
            IterativeScheme::Asynchronous => {
                (self.iterations() as f64 * self.async_iteration_factor()).ceil() as u32
            }
        }
    }
}

/// A trivially configurable application used by the executor tests and the
/// allocation ablation bench.
#[derive(Debug, Clone)]
pub struct SyntheticApp {
    /// Total work per iteration, split evenly over the ranks.
    pub total_flops_per_iter: f64,
    /// Number of iterations.
    pub iters: u32,
    /// Halo message size.
    pub halo: u64,
    /// Subtask input size per rank.
    pub input: u64,
    /// Result size per rank.
    pub result: u64,
}

impl Default for SyntheticApp {
    fn default() -> Self {
        SyntheticApp {
            total_flops_per_iter: 2.0e7,
            iters: 100,
            halo: 8 * 1024,
            input: 256 * 1024,
            result: 256 * 1024,
        }
    }
}

impl IterativeApp for SyntheticApp {
    fn name(&self) -> &str {
        "synthetic"
    }
    fn iterations(&self) -> u32 {
        self.iters
    }
    fn compute_flops(&self, _rank: usize, nprocs: usize) -> f64 {
        self.total_flops_per_iter / nprocs as f64
    }
    fn neighbors(&self, rank: usize, nprocs: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(2);
        if rank > 0 {
            out.push(rank - 1);
        }
        if rank + 1 < nprocs {
            out.push(rank + 1);
        }
        out
    }
    fn halo_bytes(&self) -> u64 {
        self.halo
    }
    fn input_bytes(&self, _rank: usize, _nprocs: usize) -> u64 {
        self.input
    }
    fn result_bytes(&self, _rank: usize, _nprocs: usize) -> u64 {
        self.result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_app_splits_work_evenly() {
        let app = SyntheticApp::default();
        assert_eq!(app.compute_flops(0, 4), app.compute_flops(3, 4));
        assert!(app.compute_flops(0, 8) < app.compute_flops(0, 2));
    }

    #[test]
    fn neighbours_form_a_chain() {
        let app = SyntheticApp::default();
        assert_eq!(app.neighbors(0, 4), vec![1]);
        assert_eq!(app.neighbors(2, 4), vec![1, 3]);
        assert_eq!(app.neighbors(3, 4), vec![2]);
        assert!(app.neighbors(0, 1).is_empty());
    }

    #[test]
    fn asynchronous_scheme_needs_more_iterations() {
        let app = SyntheticApp::default();
        let sync = app.iterations_for(IterativeScheme::Synchronous);
        let asyn = app.iterations_for(IterativeScheme::Asynchronous);
        assert_eq!(sync, 100);
        assert_eq!(asyn, 130);
    }
}
