//! Proximity-based peer grouping.
//!
//! "When submitter has collected enough peers, it divides peers into groups
//! based on proximity; in each group, a peer is chosen by submitter to become
//! coordinator which will manage others peers in group." (§III-C)
//!
//! Grouping sorts the peers by IP address — so peers sharing long common
//! prefixes end up adjacent — and cuts the sorted sequence into the smallest
//! number of groups that respects the `Cmax` bound, keeping group sizes
//! balanced. The coordinator of a group is its best-provisioned peer.

use p2p_common::{IpAddr, PeerId, PeerResources};

/// A peer candidate for grouping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupCandidate {
    /// Peer identifier.
    pub id: PeerId,
    /// Peer IP address (proximity key).
    pub ip: IpAddr,
    /// Published resources (used to pick the coordinator).
    pub resources: PeerResources,
}

/// Split `peers` into proximity groups of at most `max_group_size` members.
/// Groups are balanced (sizes differ by at most one) and preserve IP order,
/// so members of a group share the longest possible IP prefixes.
pub fn group_by_proximity(
    peers: &[GroupCandidate],
    max_group_size: usize,
) -> Vec<Vec<GroupCandidate>> {
    assert!(max_group_size > 0, "groups must hold at least one peer");
    if peers.is_empty() {
        return Vec::new();
    }
    let mut sorted: Vec<GroupCandidate> = peers.to_vec();
    sorted.sort_by_key(|p| (p.ip, p.id));
    let n = sorted.len();
    let group_count = n.div_ceil(max_group_size);
    let base = n / group_count;
    let remainder = n % group_count;
    let mut groups = Vec::with_capacity(group_count);
    let mut start = 0;
    for g in 0..group_count {
        let size = base + usize::from(g < remainder);
        groups.push(sorted[start..start + size].to_vec());
        start += size;
    }
    groups
}

/// Pick the coordinator of a group: the peer with the most processing power,
/// ties broken by the smallest IP then id (deterministic).
pub fn choose_coordinator(group: &[GroupCandidate]) -> Option<PeerId> {
    group
        .iter()
        .max_by(|a, b| {
            a.resources
                .cpu_flops
                .partial_cmp(&b.resources.cpu_flops)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.ip.cmp(&a.ip))
                .then(b.id.cmp(&a.id))
        })
        .map(|p| p.id)
}

/// Mean pairwise proximity (common-prefix bits) inside a group — the quantity
/// the proximity ablation bench compares against random grouping.
pub fn mean_group_proximity(group: &[GroupCandidate]) -> f64 {
    if group.len() < 2 {
        return 32.0;
    }
    let mut total = 0u64;
    let mut pairs = 0u64;
    for i in 0..group.len() {
        for j in (i + 1)..group.len() {
            total += group[i].ip.common_prefix_len(group[j].ip) as u64;
            pairs += 1;
        }
    }
    total as f64 / pairs as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidate(id: u64, ip: [u8; 4], flops: f64) -> GroupCandidate {
        GroupCandidate {
            id: PeerId::new(id),
            ip: IpAddr::from_octets(ip[0], ip[1], ip[2], ip[3]),
            resources: PeerResources {
                cpu_flops: flops,
                memory_mb: 2048,
                disk_gb: 80,
                usage: p2p_common::UsageState::Free,
            },
        }
    }

    fn cluster(count: usize, subnet: u8) -> Vec<GroupCandidate> {
        (0..count)
            .map(|i| {
                candidate(
                    subnet as u64 * 1000 + i as u64,
                    [10, subnet, 0, i as u8 + 1],
                    1e9,
                )
            })
            .collect()
    }

    #[test]
    fn groups_respect_the_size_bound_and_cover_everyone() {
        let mut peers = cluster(40, 1);
        peers.extend(cluster(30, 2));
        let groups = group_by_proximity(&peers, 32);
        assert!(groups.iter().all(|g| g.len() <= 32));
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, 70);
        // Balanced: 70 peers in 3 groups -> 24/23/23.
        assert_eq!(groups.len(), 3);
        let mut sizes: Vec<usize> = groups.iter().map(Vec::len).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![23, 23, 24]);
        // No peer appears twice.
        let mut ids: Vec<PeerId> = groups.iter().flatten().map(|c| c.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 70);
    }

    #[test]
    fn grouping_keeps_subnets_together() {
        let mut peers = cluster(16, 1);
        peers.extend(cluster(16, 2));
        let groups = group_by_proximity(&peers, 16);
        assert_eq!(groups.len(), 2);
        for g in &groups {
            let subnets: std::collections::HashSet<u8> =
                g.iter().map(|c| c.ip.octets()[1]).collect();
            assert_eq!(subnets.len(), 1, "each group stays within one subnet");
        }
        // Proximity-based groups have higher internal proximity than one big mix.
        let mixed = mean_group_proximity(&peers);
        for g in &groups {
            assert!(mean_group_proximity(g) > mixed);
        }
    }

    #[test]
    fn small_inputs_form_a_single_group() {
        let peers = cluster(5, 3);
        let groups = group_by_proximity(&peers, 32);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 5);
        assert!(group_by_proximity(&[], 32).is_empty());
    }

    #[test]
    fn coordinator_is_the_best_provisioned_peer() {
        let mut group = cluster(4, 1);
        group[2].resources.cpu_flops = 4e9;
        assert_eq!(choose_coordinator(&group), Some(group[2].id));
        assert_eq!(choose_coordinator(&[]), None);
        // All-equal resources: the smallest IP wins (deterministic).
        let equal = cluster(3, 7);
        assert_eq!(choose_coordinator(&equal), Some(equal[0].id));
    }

    #[test]
    fn mean_proximity_of_a_singleton_is_full_length() {
        let g = cluster(1, 1);
        assert_eq!(mean_group_proximity(&g), 32.0);
    }
}
