//! Task specifications.
//!
//! A *task* is "a computation submitted to environment; a part of a
//! computation assigned to a peer is called a subtask" (§III). The submitter's
//! peer-request message carries the task description, the number of peers
//! needed initially and the peer requirements (§III-B).

use p2p_common::{ResourceRequirements, TaskId};
use serde::{Deserialize, Serialize};

/// Lifecycle of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskStatus {
    /// Peers are being collected.
    Collecting,
    /// Subtasks are being distributed.
    Allocating,
    /// The computation is running.
    Running,
    /// Results have been gathered back at the submitter.
    Completed,
    /// Not enough peers could be collected.
    Aborted,
}

/// A computation submitted to the P2PDC environment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Task identifier.
    pub id: TaskId,
    /// Human-readable description.
    pub description: String,
    /// Number of peers needed initially.
    pub peers_needed: usize,
    /// Requirements each peer must satisfy.
    pub requirements: ResourceRequirements,
    /// Current status.
    pub status: TaskStatus,
}

impl TaskSpec {
    /// A new task in the `Collecting` state.
    pub fn new(
        id: TaskId,
        description: impl Into<String>,
        peers_needed: usize,
        requirements: ResourceRequirements,
    ) -> Self {
        assert!(peers_needed > 0, "a task needs at least one peer");
        TaskSpec {
            id,
            description: description.into(),
            peers_needed,
            requirements,
            status: TaskStatus::Collecting,
        }
    }

    /// Advance the lifecycle. Panics on illegal transitions so misuse is
    /// caught in tests rather than silently accepted.
    pub fn advance(&mut self, next: TaskStatus) {
        use TaskStatus::*;
        let legal = matches!(
            (self.status, next),
            (Collecting, Allocating)
                | (Collecting, Aborted)
                | (Allocating, Running)
                | (Allocating, Aborted)
                | (Running, Completed)
                | (Running, Aborted)
        );
        assert!(
            legal,
            "illegal task transition {:?} -> {:?}",
            self.status, next
        );
        self.status = next;
    }

    /// Is the task in a terminal state?
    pub fn is_finished(&self) -> bool {
        matches!(self.status, TaskStatus::Completed | TaskStatus::Aborted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_happy_path() {
        let mut t = TaskSpec::new(TaskId::new(1), "obstacle", 8, ResourceRequirements::none());
        assert_eq!(t.status, TaskStatus::Collecting);
        t.advance(TaskStatus::Allocating);
        t.advance(TaskStatus::Running);
        t.advance(TaskStatus::Completed);
        assert!(t.is_finished());
    }

    #[test]
    fn abort_is_reachable_from_non_terminal_states() {
        let mut t = TaskSpec::new(TaskId::new(1), "obstacle", 8, ResourceRequirements::none());
        t.advance(TaskStatus::Aborted);
        assert!(t.is_finished());
    }

    #[test]
    #[should_panic(expected = "illegal task transition")]
    fn skipping_states_is_rejected() {
        let mut t = TaskSpec::new(TaskId::new(1), "obstacle", 8, ResourceRequirements::none());
        t.advance(TaskStatus::Completed);
    }

    #[test]
    #[should_panic(expected = "at least one peer")]
    fn zero_peer_tasks_are_rejected() {
        TaskSpec::new(TaskId::new(1), "empty", 0, ResourceRequirements::none());
    }
}
