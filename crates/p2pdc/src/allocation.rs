//! Hierarchical task allocation (§III-C).
//!
//! "The number of peers in a group cannot exceed Cmax in order to ensure
//! efficient management of coordinator. We have chosen Cmax = 32. Submitter
//! sends peers list of a group to coordinator. Then, the coordinator connects
//! to all peers in its group and sends a 'reverse' message to peers. …
//! Submitter decomposes task into subtasks and sends subtasks to groups
//! coordinators. Subtasks are then sent by coordinators to peers."
//!
//! [`build_allocation`] produces the allocation graph of Fig. 5;
//! [`AllocationCost`] quantifies the message pattern of both the hierarchical
//! mechanism and the flat (submitter-connects-to-everyone) baseline the paper
//! argues against, which the ablation bench compares.

use crate::proximity::{choose_coordinator, group_by_proximity, GroupCandidate};
use p2p_common::PeerId;
use serde::{Deserialize, Serialize};

/// The paper's bound on the number of peers a coordinator manages.
pub const CMAX: usize = 32;

/// One coordinator group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Group {
    /// The coordinator (also a member of the group).
    pub coordinator: PeerId,
    /// Every member of the group, coordinator included.
    pub members: Vec<PeerId>,
}

impl Group {
    /// Members other than the coordinator.
    pub fn workers(&self) -> impl Iterator<Item = PeerId> + '_ {
        self.members
            .iter()
            .copied()
            .filter(move |&p| p != self.coordinator)
    }
}

/// The allocation graph: submitter → coordinators → peers (Fig. 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllocationGraph {
    /// The submitting peer.
    pub submitter: PeerId,
    /// Coordinator groups.
    pub groups: Vec<Group>,
}

impl AllocationGraph {
    /// Total number of allocated peers (submitter not counted).
    pub fn peer_count(&self) -> usize {
        self.groups.iter().map(|g| g.members.len()).sum()
    }

    /// Size of the largest group.
    pub fn max_group_size(&self) -> usize {
        self.groups
            .iter()
            .map(|g| g.members.len())
            .max()
            .unwrap_or(0)
    }

    /// The group a peer belongs to, if any.
    pub fn group_of(&self, peer: PeerId) -> Option<usize> {
        self.groups.iter().position(|g| g.members.contains(&peer))
    }

    /// All coordinators.
    pub fn coordinators(&self) -> Vec<PeerId> {
        self.groups.iter().map(|g| g.coordinator).collect()
    }
}

/// Message/hop cost of distributing subtasks (or collecting results) through
/// an allocation structure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocationCost {
    /// Total messages exchanged.
    pub messages: u64,
    /// Critical-path length in sequential message sends. The submitter (and
    /// each coordinator) sends to its children one after the other, but
    /// different coordinators work in parallel — exactly the argument of
    /// §III-C for why the hierarchy is faster.
    pub critical_sends: u64,
}

/// Build the allocation graph for the given peers, grouped by IP proximity
/// with groups of at most `cmax` members.
pub fn build_allocation(
    submitter: PeerId,
    peers: &[GroupCandidate],
    cmax: usize,
) -> AllocationGraph {
    let groups = group_by_proximity(peers, cmax)
        .into_iter()
        .map(|members| {
            let coordinator = choose_coordinator(&members).expect("groups are never empty");
            Group {
                coordinator,
                members: members.into_iter().map(|c| c.id).collect(),
            }
        })
        .collect();
    AllocationGraph { submitter, groups }
}

/// Cost of hierarchical subtask distribution: the submitter sends one peers
/// list plus one subtask batch to every coordinator (sequentially), then the
/// coordinators reserve peers and forward subtasks in parallel (each
/// coordinator serialises over its own group).
pub fn hierarchical_cost(graph: &AllocationGraph) -> AllocationCost {
    let g = graph.groups.len() as u64;
    let submitter_sends = 2 * g; // peers list + subtasks, per coordinator
    let per_group: Vec<u64> = graph
        .groups
        .iter()
        .map(|grp| 2 * grp.workers().count() as u64) // reverse msg + subtask per worker
        .collect();
    let messages = submitter_sends + per_group.iter().sum::<u64>();
    let critical_sends = submitter_sends + per_group.iter().copied().max().unwrap_or(0);
    AllocationCost {
        messages,
        critical_sends,
    }
}

/// Cost of the flat baseline: the submitter connects to every peer in
/// succession and sends its subtask directly (the centralised pattern the
/// paper's hierarchical mechanism replaces).
pub fn flat_cost(peer_count: usize) -> AllocationCost {
    let n = peer_count as u64;
    AllocationCost {
        messages: 2 * n, // reserve + subtask per peer
        critical_sends: 2 * n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2p_common::{IpAddr, PeerResources};

    fn candidates(n: usize) -> Vec<GroupCandidate> {
        (0..n)
            .map(|i| GroupCandidate {
                id: PeerId::new(i as u64 + 10),
                ip: IpAddr::from_octets(10, (i / 32) as u8, (i / 8) as u8, (i % 256) as u8),
                resources: PeerResources::xeon_em64t(),
            })
            .collect()
    }

    #[test]
    fn allocation_respects_cmax_and_covers_all_peers() {
        let peers = candidates(100);
        let graph = build_allocation(PeerId::new(1), &peers, CMAX);
        assert_eq!(graph.peer_count(), 100);
        assert!(graph.max_group_size() <= CMAX);
        assert_eq!(
            graph.groups.len(),
            4,
            "100 peers need ceil(100/32) = 4 groups"
        );
        // Every coordinator is a member of its own group.
        for g in &graph.groups {
            assert!(g.members.contains(&g.coordinator));
        }
        // Every peer is in exactly one group.
        for p in &peers {
            assert!(graph.group_of(p.id).is_some());
        }
    }

    #[test]
    fn small_runs_get_a_single_group() {
        let peers = candidates(8);
        let graph = build_allocation(PeerId::new(1), &peers, CMAX);
        assert_eq!(graph.groups.len(), 1);
        assert_eq!(graph.coordinators().len(), 1);
    }

    #[test]
    fn hierarchical_critical_path_beats_flat_for_large_runs() {
        let peers = candidates(256);
        let graph = build_allocation(PeerId::new(1), &peers, CMAX);
        let hier = hierarchical_cost(&graph);
        let flat = flat_cost(256);
        assert!(
            hier.critical_sends < flat.critical_sends,
            "hierarchy {} must beat flat {}",
            hier.critical_sends,
            flat.critical_sends
        );
        // Total message counts are comparable (the hierarchy does not send
        // dramatically more traffic, it only parallelises it).
        assert!(hier.messages <= flat.messages + 2 * graph.groups.len() as u64);
    }

    #[test]
    fn flat_and_hierarchical_agree_for_tiny_runs() {
        let peers = candidates(4);
        let graph = build_allocation(PeerId::new(1), &peers, CMAX);
        let hier = hierarchical_cost(&graph);
        let flat = flat_cost(4);
        // One group: the submitter still talks to one coordinator which then
        // serialises over 3 workers, so the critical paths are close.
        assert!(hier.critical_sends <= flat.critical_sends + 2);
    }

    #[test]
    fn group_workers_exclude_the_coordinator() {
        let peers = candidates(10);
        let graph = build_allocation(PeerId::new(1), &peers, CMAX);
        let g = &graph.groups[0];
        assert_eq!(g.workers().count(), g.members.len() - 1);
        assert!(g.workers().all(|w| w != g.coordinator));
    }
}
