//! Property-based tests of the overlay, the grouping and the allocation.

use p2p_common::{IpAddr, PeerId, PeerResources, TrackerId};
use p2pdc::allocation::{build_allocation, flat_cost, hierarchical_cost};
use p2pdc::line::{NeighborSet, TrackerEntry};
use p2pdc::proximity::{choose_coordinator, group_by_proximity, GroupCandidate};
use p2pdc::{ChurnInjector, Overlay, OverlayConfig};
use proptest::prelude::*;

fn candidates(ips: &[u32]) -> Vec<GroupCandidate> {
    ips.iter()
        .enumerate()
        .map(|(i, &ip)| GroupCandidate {
            id: PeerId::new(i as u64 + 1),
            ip: IpAddr::from_u32(ip),
            resources: PeerResources::xeon_em64t(),
        })
        .collect()
}

proptest! {
    /// Proximity grouping always covers every peer exactly once and never
    /// exceeds the group-size bound, whatever the IPs.
    #[test]
    fn grouping_partitions_peers(ips in prop::collection::vec(any::<u32>(), 1..200), cmax in 1usize..64) {
        let peers = candidates(&ips);
        let groups = group_by_proximity(&peers, cmax);
        prop_assert!(groups.iter().all(|g| !g.is_empty() && g.len() <= cmax));
        let mut seen: Vec<PeerId> = groups.iter().flatten().map(|c| c.id).collect();
        seen.sort();
        let mut expected: Vec<PeerId> = peers.iter().map(|c| c.id).collect();
        expected.sort();
        prop_assert_eq!(seen, expected);
        // Every group has a coordinator and it belongs to the group.
        for g in &groups {
            let coord = choose_coordinator(g).unwrap();
            prop_assert!(g.iter().any(|c| c.id == coord));
        }
    }

    /// The hierarchical allocation graph covers every peer once, respects
    /// Cmax, and its critical path never loses to the flat baseline by more
    /// than the constant coordinator hand-off.
    #[test]
    fn allocation_graph_is_well_formed(ips in prop::collection::vec(any::<u32>(), 1..300)) {
        let peers = candidates(&ips);
        let graph = build_allocation(PeerId::new(0), &peers, 32);
        prop_assert_eq!(graph.peer_count(), peers.len());
        prop_assert!(graph.max_group_size() <= 32);
        let hier = hierarchical_cost(&graph);
        let flat = flat_cost(peers.len());
        prop_assert!(hier.critical_sends <= flat.critical_sends + 2 * graph.groups.len() as u64);
        prop_assert!(hier.messages >= peers.len() as u64, "every peer gets a subtask");
    }

    /// A neighbour set keeps each side sorted by distance from the owner and
    /// never exceeds its per-side capacity, under arbitrary insert/remove
    /// sequences.
    #[test]
    fn neighbor_set_sides_stay_sorted(owner in any::<u32>(), ops in prop::collection::vec((any::<u32>(), any::<bool>()), 1..100)) {
        let owner_ip = IpAddr::from_u32(owner);
        let mut set = NeighborSet::new(owner_ip, 6);
        for (i, &(ip, remove)) in ops.iter().enumerate() {
            if remove {
                set.remove(TrackerId::new((i as u64) / 2));
            } else {
                set.insert(TrackerEntry::new(TrackerId::new(i as u64), IpAddr::from_u32(ip)));
            }
            prop_assert!(set.left_side().len() <= 3);
            prop_assert!(set.right_side().len() <= 3);
            // Left side: decreasing IPs (closest first); right side: increasing.
            prop_assert!(set.left_side().windows(2).all(|w| w[0].ip >= w[1].ip));
            prop_assert!(set.right_side().windows(2).all(|w| w[0].ip <= w[1].ip));
            prop_assert!(set.left_side().iter().all(|e| e.ip < owner_ip));
            prop_assert!(set.right_side().iter().all(|e| e.ip > owner_ip));
        }
    }

    /// Overlay invariants (line consistency, zone membership) survive any
    /// bounded churn sequence, and collections still return only live peers.
    #[test]
    fn overlay_invariants_survive_churn(seed in any::<u64>(), events in 1usize..120) {
        let core: Vec<IpAddr> = (0..3u8).map(|i| IpAddr::from_octets(10, i, 0, 1)).collect();
        let mut overlay = Overlay::bootstrap(OverlayConfig::default(), &core);
        for i in 0..12u8 {
            overlay.peer_join(IpAddr::from_octets(10, i % 3, 1, i + 1), None, PeerResources::xeon_em64t());
        }
        let mut churn = ChurnInjector::new(seed);
        churn.run(&mut overlay, events);
        let problems = overlay.check_invariants();
        prop_assert!(problems.is_empty(), "violations: {:?}", problems);
        prop_assert!(overlay.tracker_count() >= 1);
    }
}
