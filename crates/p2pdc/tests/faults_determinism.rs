//! Determinism and distribution guarantees of the fault model.
//!
//! The CI `robustness` matrix runs this binary in debug and release and under
//! `NETSIM_WORKERS` ∈ {1, 2, 8}: a churn sequence is part of a scenario's
//! identity, so the same seed must yield the *identical* event sequence
//! everywhere — build profile, thread count and allocation pattern must all
//! be invisible to the RNG stream.

use p2p_common::{IpAddr, PeerResources, SimDuration, SimTime};
use p2pdc::{ChurnEvent, ChurnInjector, FaultEvent, FaultPlan, Overlay, OverlayConfig, TimedFault};

fn overlay_with(peers: usize, trackers: usize) -> Overlay {
    let tracker_ips: Vec<IpAddr> = (0..trackers)
        .map(|t| IpAddr::from_octets(10, t as u8, 0, 250))
        .collect();
    let mut overlay = Overlay::bootstrap(OverlayConfig::default(), &tracker_ips);
    for p in 0..peers {
        let ip = IpAddr::from_octets(10, (p % trackers) as u8, 1, (p % 200) as u8 + 1);
        overlay.peer_join(ip, None, PeerResources::xeon_em64t());
    }
    overlay
}

/// Drive `n` injector events against a fixed overlay population and record
/// the full (event, gap) sequence.
fn sequence(seed: u64, n: usize) -> Vec<(ChurnEvent, SimDuration)> {
    let overlay = overlay_with(40, 4);
    let mut injector = ChurnInjector::new(seed);
    (0..n).map(|_| injector.next_event(&overlay)).collect()
}

#[test]
fn same_seed_yields_the_identical_event_sequence() {
    let a = sequence(7, 200);
    let b = sequence(7, 200);
    assert_eq!(a, b);
    // Distinct seeds diverge (overwhelmingly) — a frozen RNG would make the
    // determinism assertion above vacuous.
    let c = sequence(8, 200);
    assert_ne!(a, c);
}

#[test]
fn sequences_are_stable_under_interleaved_queries() {
    // Consuming the injector in two chunks (as a simulation loop would,
    // with arbitrary other work between draws) gives the same stream as
    // consuming it at once: the injector owns all of its randomness.
    let overlay = overlay_with(40, 4);
    let mut one_shot = ChurnInjector::new(31);
    let all: Vec<_> = (0..100).map(|_| one_shot.next_event(&overlay)).collect();

    let mut chunked = ChurnInjector::new(31);
    let mut split: Vec<_> = (0..37).map(|_| chunked.next_event(&overlay)).collect();
    split.extend((37..100).map(|_| chunked.next_event(&overlay)));
    assert_eq!(all, split);
}

#[test]
fn event_mix_follows_the_configured_fractions() {
    // Distribution sanity: with tracker_fraction = 0.1 and
    // departure_fraction = 0.5, a long run must show roughly that mix.
    let events = sequence(12345, 4000);
    let n = events.len() as f64;
    let trackers = events
        .iter()
        .filter(|(e, _)| matches!(e, ChurnEvent::TrackerJoin(_) | ChurnEvent::TrackerCrash(_)))
        .count() as f64;
    let departures = events
        .iter()
        .filter(|(e, _)| matches!(e, ChurnEvent::PeerLeave(_) | ChurnEvent::TrackerCrash(_)))
        .count() as f64;
    let tracker_rate = trackers / n;
    let departure_rate = departures / n;
    assert!(
        (0.07..=0.13).contains(&tracker_rate),
        "tracker mix {tracker_rate} strays from 0.1"
    );
    assert!(
        (0.45..=0.55).contains(&departure_rate),
        "departure mix {departure_rate} strays from 0.5"
    );
    // Gaps follow the exponential with the configured 10 s mean.
    let mean_gap: f64 = events.iter().map(|(_, g)| g.as_secs_f64()).sum::<f64>() / n;
    assert!(
        (8.0..=12.0).contains(&mean_gap),
        "mean inter-arrival {mean_gap}s strays from 10s"
    );
}

#[test]
fn injector_never_targets_the_dead_even_when_a_plan_runs_concurrently() {
    // A FaultPlan crash-stops peers/trackers mid-stream; the injector draws
    // from the live population only, so it must never emit a departure for
    // an id the plan already killed.
    let mut overlay = overlay_with(30, 3);
    let mut injector = ChurnInjector::new(99);
    injector.departure_fraction = 1.0; // force departures: worst case

    // Kill a third of the peers and one tracker through a plan.
    let victims: Vec<_> = overlay.peers().map(|p| p.id).step_by(3).collect();
    let doomed_tracker = overlay.trackers().map(|t| t.id).nth(1).unwrap();
    let mut plan = FaultPlan::new();
    for (k, &v) in victims.iter().enumerate() {
        plan.schedule(SimTime::from_secs(k as u64), FaultEvent::PeerCrash(v));
    }
    plan.schedule(
        SimTime::from_secs(victims.len() as u64),
        FaultEvent::TrackerCrash(doomed_tracker),
    );

    // Interleave: one plan step, then a burst of injector draws.
    let horizon = SimTime::from_secs(victims.len() as u64 + 1);
    let mut t = SimTime::ZERO;
    while t <= horizon {
        overlay.advance_time(t.duration_since(overlay.now()));
        let impact = plan.deliver_due(&mut overlay, t);
        for _ in 0..20 {
            let (event, _) = injector.next_event(&overlay);
            match event {
                ChurnEvent::PeerLeave(id) => {
                    assert!(!overlay.is_peer_crashed(id), "injector picked crashed {id}");
                }
                ChurnEvent::TrackerCrash(id) => {
                    assert!(
                        !overlay.is_tracker_crashed(id),
                        "injector picked crashed {id}"
                    );
                }
                _ => {}
            }
        }
        let _ = impact;
        t = t.saturating_add(SimDuration::from_secs(1));
    }
    // The plan really did run.
    assert_eq!(overlay.live_peer_count(), 30 - victims.len());
}

#[test]
fn fault_plans_replay_identically() {
    // A plan is data: delivering the same plan against identically-built
    // overlays produces the same impacts and the same final population.
    let build = || {
        let mut overlay = overlay_with(24, 3);
        let ids: Vec<_> = overlay.peers().map(|p| p.id).collect();
        let plan = FaultPlan::new()
            .with_fault(SimTime::from_secs(5), FaultEvent::PeerCrash(ids[3]))
            .with_fault(SimTime::from_secs(5), FaultEvent::PeerCrash(ids[17]))
            .with_fault(
                SimTime::from_secs(9),
                FaultEvent::TrackerCrash(overlay.trackers().next().unwrap().id),
            );
        overlay.advance_time(SimDuration::from_secs(10));
        (overlay, plan)
    };
    let (mut o1, mut p1) = build();
    let (mut o2, mut p2) = build();
    let i1 = p1.deliver_due(&mut o1, SimTime::from_secs(10));
    let i2 = p2.deliver_due(&mut o2, SimTime::from_secs(10));
    assert_eq!(i1, i2);
    assert_eq!(o1.live_peer_count(), o2.live_peer_count());
    assert_eq!(o1.check_invariants(), o2.check_invariants());
    assert!(o1.check_invariants().is_empty());
}

#[test]
fn timed_faults_expose_their_schedule() {
    let plan = FaultPlan::new()
        .with_fault(
            SimTime::from_secs(8),
            FaultEvent::PeerCrash(p2p_common::PeerId::new(1)),
        )
        .with_fault(
            SimTime::from_secs(3),
            FaultEvent::PeerCrash(p2p_common::PeerId::new(2)),
        );
    assert_eq!(plan.len(), 2);
    assert_eq!(plan.next_at(), Some(SimTime::from_secs(3)));
    let first = TimedFault {
        at: SimTime::from_secs(3),
        event: FaultEvent::PeerCrash(p2p_common::PeerId::new(2)),
    };
    let _ = first; // construction compiles: the type is public data
}
