//! 1-D block-row domain decomposition.
//!
//! The obstacle code distributes the grid over the peers by contiguous blocks
//! of interior rows; each peer exchanges its first and last owned rows with
//! its up/down neighbours every sweep (the halo exchange whose size — one row
//! of `n` doubles — is the `8·N` bytes that appears everywhere in the
//! performance model).

/// The block-row decomposition of `n` interior rows over `nprocs` ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockRows {
    /// Number of interior rows.
    pub n: usize,
    /// Number of ranks.
    pub nprocs: usize,
}

impl BlockRows {
    /// Create a decomposition. Panics if there are more ranks than rows.
    pub fn new(n: usize, nprocs: usize) -> Self {
        assert!(nprocs > 0, "need at least one rank");
        assert!(
            n >= nprocs,
            "cannot give {nprocs} ranks fewer than one row each ({n})"
        );
        BlockRows { n, nprocs }
    }

    /// Number of rows owned by `rank`.
    pub fn rows_of(&self, rank: usize) -> usize {
        assert!(rank < self.nprocs);
        let base = self.n / self.nprocs;
        base + usize::from(rank < self.n % self.nprocs)
    }

    /// Half-open range of *interior* row indices (1-based, as used by the
    /// solver) owned by `rank`.
    pub fn row_range(&self, rank: usize) -> (usize, usize) {
        assert!(rank < self.nprocs);
        let base = self.n / self.nprocs;
        let extra = self.n % self.nprocs;
        let start = rank * base + rank.min(extra);
        let len = self.rows_of(rank);
        (start + 1, start + len + 1)
    }

    /// The rank owning interior row `row` (1-based).
    pub fn owner_of(&self, row: usize) -> usize {
        assert!((1..=self.n).contains(&row));
        (0..self.nprocs)
            .find(|&r| {
                let (b, e) = self.row_range(r);
                (b..e).contains(&row)
            })
            .expect("every interior row has an owner")
    }

    /// Neighbouring ranks of `rank` in the chain.
    pub fn neighbors(&self, rank: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(2);
        if rank > 0 {
            out.push(rank - 1);
        }
        if rank + 1 < self.nprocs {
            out.push(rank + 1);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_partition_the_rows_exactly() {
        for nprocs in [1, 2, 3, 5, 8] {
            let d = BlockRows::new(37, nprocs);
            let mut covered = Vec::new();
            for r in 0..nprocs {
                let (b, e) = d.row_range(r);
                assert_eq!(e - b, d.rows_of(r));
                covered.extend(b..e);
            }
            assert_eq!(covered, (1..=37).collect::<Vec<_>>(), "nprocs={nprocs}");
        }
    }

    #[test]
    fn row_counts_are_balanced() {
        let d = BlockRows::new(100, 8);
        let counts: Vec<usize> = (0..8).map(|r| d.rows_of(r)).collect();
        assert_eq!(counts.iter().sum::<usize>(), 100);
        assert_eq!(
            *counts.iter().max().unwrap() - *counts.iter().min().unwrap(),
            1
        );
    }

    #[test]
    fn owner_lookup_matches_ranges() {
        let d = BlockRows::new(29, 4);
        for row in 1..=29 {
            let owner = d.owner_of(row);
            let (b, e) = d.row_range(owner);
            assert!((b..e).contains(&row));
        }
    }

    #[test]
    fn chain_neighbours() {
        let d = BlockRows::new(16, 4);
        assert_eq!(d.neighbors(0), vec![1]);
        assert_eq!(d.neighbors(1), vec![0, 2]);
        assert_eq!(d.neighbors(3), vec![2]);
        let single = BlockRows::new(16, 1);
        assert!(single.neighbors(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "fewer than one row")]
    fn too_many_ranks_are_rejected() {
        BlockRows::new(3, 5);
    }
}
