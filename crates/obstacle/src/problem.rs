//! The discretised obstacle problem.
//!
//! The obstacle problem models an elastic membrane stretched over a domain
//! Ω = (0,1)², clamped at the boundary, pushed down by a load `f` and
//! constrained to stay above an obstacle ψ:
//!
//! ```text
//! find u such that   u ≥ ψ,   −Δu ≥ f,   (u − ψ)(−Δu − f) = 0  in Ω,
//!                    u = g on ∂Ω.
//! ```
//!
//! Discretising the Laplacian with the standard 5-point stencil on an
//! `n × n` interior grid gives the complementarity problem the projected
//! Richardson method solves (Spitéri & Chau 2002, the code the paper's
//! evaluation runs).

use crate::grid::Grid2D;

/// A discretised obstacle problem instance.
#[derive(Debug, Clone)]
pub struct ObstacleProblem {
    /// Number of interior points per dimension.
    pub n: usize,
    /// Grid spacing (`1 / (n + 1)`).
    pub h: f64,
    /// Obstacle values ψ on the full `(n+2) × (n+2)` grid (boundary included).
    pub psi: Grid2D,
    /// Load `f · h²` on the full grid.
    pub rhs: Grid2D,
    /// Dirichlet boundary value.
    pub boundary: f64,
}

impl ObstacleProblem {
    /// The benchmark instance used throughout the reproduction: a parabolic
    /// obstacle bump in the middle of the membrane and a uniform downward
    /// load. Any positive `n` works; the paper-scale runs use `n = 1200`.
    pub fn membrane(n: usize) -> Self {
        assert!(n >= 3, "the obstacle problem needs at least a 3x3 interior");
        let h = 1.0 / (n as f64 + 1.0);
        let size = n + 2;
        let psi = Grid2D::from_fn(size, size, |i, j| {
            let x = i as f64 * h;
            let y = j as f64 * h;
            // A smooth bump, positive near the centre, negative elsewhere, so
            // the contact set is a disc in the middle of the membrane.
            let dx = x - 0.5;
            let dy = y - 0.5;
            0.3 - 4.0 * (dx * dx + dy * dy)
        });
        // Uniform downward load: the unconstrained membrane would dip below
        // zero everywhere, so the central obstacle bump creates a genuine
        // contact region.
        let rhs = Grid2D::from_fn(size, size, |_, _| 2.0 * h * h);
        ObstacleProblem {
            n,
            h,
            psi,
            rhs,
            boundary: 0.0,
        }
    }

    /// An unconstrained variant (ψ = −∞ for practical purposes): the solution
    /// is then the plain Poisson membrane, which gives the tests an easy
    /// sanity reference.
    pub fn unconstrained(n: usize) -> Self {
        let mut p = ObstacleProblem::membrane(n);
        p.psi = Grid2D::filled(n + 2, n + 2, -1.0e30);
        p
    }

    /// A freshly initialised iterate: boundary values on the border, the
    /// obstacle (clamped at the boundary value) in the interior, which is a
    /// feasible starting point.
    pub fn initial_guess(&self) -> Grid2D {
        let size = self.n + 2;
        Grid2D::from_fn(size, size, |i, j| {
            if i == 0 || j == 0 || i == size - 1 || j == size - 1 {
                self.boundary
            } else {
                self.psi[(i, j)].max(self.boundary)
            }
        })
    }

    /// Verify that `u` satisfies the constraint `u ≥ ψ` (up to `tol`) in the
    /// interior and the boundary condition on the border. Returns the number
    /// of violations.
    pub fn constraint_violations(&self, u: &Grid2D, tol: f64) -> usize {
        let size = self.n + 2;
        let mut violations = 0;
        for i in 0..size {
            for j in 0..size {
                let on_boundary = i == 0 || j == 0 || i == size - 1 || j == size - 1;
                if on_boundary {
                    if (u[(i, j)] - self.boundary).abs() > tol {
                        violations += 1;
                    }
                } else if u[(i, j)] < self.psi[(i, j)] - tol {
                    violations += 1;
                }
            }
        }
        violations
    }

    /// The residual `max(−Δu − f, 0)`-style complementarity defect at one
    /// interior point — used by tests to check the solution is sensible where
    /// the membrane is not in contact with the obstacle.
    pub fn free_residual(&self, u: &Grid2D, i: usize, j: usize) -> f64 {
        let lap = u[(i - 1, j)] + u[(i + 1, j)] + u[(i, j - 1)] + u[(i, j + 1)] - 4.0 * u[(i, j)];
        lap - self.rhs[(i, j)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membrane_instance_is_well_formed() {
        let p = ObstacleProblem::membrane(16);
        assert_eq!(p.psi.rows(), 18);
        assert_eq!(p.rhs.cols(), 18);
        assert!((p.h - 1.0 / 17.0).abs() < 1e-12);
        // The obstacle pokes above the boundary level in the middle only.
        assert!(p.psi[(9, 9)] > 0.0);
        assert!(p.psi[(1, 1)] < 0.0);
    }

    #[test]
    fn initial_guess_is_feasible() {
        let p = ObstacleProblem::membrane(12);
        let u0 = p.initial_guess();
        assert_eq!(p.constraint_violations(&u0, 1e-12), 0);
    }

    #[test]
    fn violations_are_detected() {
        let p = ObstacleProblem::membrane(8);
        let mut u = p.initial_guess();
        u[(4, 4)] = p.psi[(4, 4)] - 1.0; // dig below the obstacle
        u[(0, 3)] = 7.0; // break the boundary condition
        assert_eq!(p.constraint_violations(&u, 1e-9), 2);
    }

    #[test]
    #[should_panic(expected = "3x3")]
    fn tiny_problems_are_rejected() {
        ObstacleProblem::membrane(2);
    }
}
