//! The projected Richardson method (sequential reference solver).
//!
//! One sweep updates every interior point with a damped Jacobi step and
//! projects the result onto the constraint set `u ≥ ψ`:
//!
//! ```text
//! u*   = (1 − ω) u(i,j) + ω (u(i−1,j) + u(i+1,j) + u(i,j−1) + u(i,j+1) − f h²) / 4
//! u'   = max(ψ(i,j), u*)
//! ```
//!
//! For `0 < ω ≤ 1` the iteration is a contraction and converges to the unique
//! solution of the discrete obstacle problem (Spitéri & Chau 2002). The
//! parallel solvers in [`crate::parallel`] run exactly the same sweep on row
//! blocks, so sequential and parallel results can be compared bit-for-bit
//! after the same number of sweeps (synchronous scheme) or up to the
//! convergence tolerance (asynchronous scheme).

use crate::grid::Grid2D;
use crate::problem::ObstacleProblem;

/// Parameters of the projected Richardson iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RichardsonParams {
    /// Damping factor ω ∈ (0, 1].
    pub omega: f64,
    /// Convergence tolerance on the max-norm of the update.
    pub tol: f64,
    /// Hard cap on the number of sweeps.
    pub max_sweeps: u32,
}

impl Default for RichardsonParams {
    fn default() -> Self {
        RichardsonParams {
            omega: 0.95,
            tol: 1e-7,
            max_sweeps: 20_000,
        }
    }
}

/// Outcome of a solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveStats {
    /// Sweeps actually performed.
    pub sweeps: u32,
    /// Max-norm of the last update.
    pub final_diff: f64,
    /// Whether the tolerance was reached before the sweep cap.
    pub converged: bool,
}

/// Apply one projected Richardson sweep over the interior rows
/// `[row_begin, row_end)` (1-based interior rows, i.e. valid values are
/// `1 ..= n`). Reads `u_old`, writes `u_new`, returns the max-norm of the
/// change over the swept rows. `u_new`'s other rows are left untouched.
pub fn sweep_rows(
    problem: &ObstacleProblem,
    u_old: &Grid2D,
    u_new: &mut Grid2D,
    row_begin: usize,
    row_end: usize,
    omega: f64,
) -> f64 {
    let n = problem.n;
    debug_assert!(row_begin >= 1 && row_end <= n + 1 && row_begin <= row_end);
    let mut max_diff = 0.0f64;
    for i in row_begin..row_end {
        for j in 1..=n {
            let neighbours =
                u_old[(i - 1, j)] + u_old[(i + 1, j)] + u_old[(i, j - 1)] + u_old[(i, j + 1)];
            let jacobi = (neighbours - problem.rhs[(i, j)]) / 4.0;
            let relaxed = (1.0 - omega) * u_old[(i, j)] + omega * jacobi;
            let projected = relaxed.max(problem.psi[(i, j)]);
            max_diff = max_diff.max((projected - u_old[(i, j)]).abs());
            u_new[(i, j)] = projected;
        }
    }
    max_diff
}

/// Solve the obstacle problem sequentially. Returns the final iterate and the
/// solve statistics.
pub fn solve_sequential(
    problem: &ObstacleProblem,
    params: &RichardsonParams,
) -> (Grid2D, SolveStats) {
    assert!(
        params.omega > 0.0 && params.omega <= 1.0,
        "omega must be in (0, 1]"
    );
    let mut u_old = problem.initial_guess();
    let mut u_new = u_old.clone();
    let mut stats = SolveStats {
        sweeps: 0,
        final_diff: f64::INFINITY,
        converged: false,
    };
    for sweep in 1..=params.max_sweeps {
        let diff = sweep_rows(problem, &u_old, &mut u_new, 1, problem.n + 1, params.omega);
        std::mem::swap(&mut u_old, &mut u_new);
        stats.sweeps = sweep;
        stats.final_diff = diff;
        if diff <= params.tol {
            stats.converged = true;
            break;
        }
    }
    (u_old, stats)
}

/// Run exactly `sweeps` sweeps without a convergence test (the performance
/// runs of the paper iterate a fixed number of relaxations). Returns the
/// iterate after the last sweep.
pub fn run_fixed_sweeps(problem: &ObstacleProblem, sweeps: u32, omega: f64) -> Grid2D {
    let mut u_old = problem.initial_guess();
    let mut u_new = u_old.clone();
    for _ in 0..sweeps {
        sweep_rows(problem, &u_old, &mut u_new, 1, problem.n + 1, omega);
        std::mem::swap(&mut u_old, &mut u_new);
    }
    u_old
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_converges_on_a_small_instance() {
        let p = ObstacleProblem::membrane(24);
        let (u, stats) = solve_sequential(&p, &RichardsonParams::default());
        assert!(
            stats.converged,
            "no convergence after {} sweeps",
            stats.sweeps
        );
        assert!(stats.final_diff <= 1e-7);
        // The solution respects the obstacle and the boundary conditions.
        assert_eq!(p.constraint_violations(&u, 1e-9), 0);
    }

    #[test]
    fn contact_region_touches_the_obstacle_and_free_region_solves_the_pde() {
        let p = ObstacleProblem::membrane(32);
        let params = RichardsonParams {
            tol: 1e-9,
            ..RichardsonParams::default()
        };
        let (u, stats) = solve_sequential(&p, &params);
        assert!(stats.converged);
        let mid = (p.n + 2) / 2;
        // In the middle the obstacle binds: u == psi.
        assert!(
            (u[(mid, mid)] - p.psi[(mid, mid)]).abs() < 1e-6,
            "centre must be in contact"
        );
        // Near the boundary the membrane is free: the PDE residual is ~0 and
        // the membrane sits strictly above the (very negative) obstacle.
        assert!(u[(2, 2)] > p.psi[(2, 2)] + 0.1);
        assert!(p.free_residual(&u, 2, 2).abs() < 1e-5);
    }

    #[test]
    fn unconstrained_problem_reduces_to_the_poisson_membrane() {
        let p = ObstacleProblem::unconstrained(16);
        let (u, stats) = solve_sequential(
            &p,
            &RichardsonParams {
                tol: 1e-9,
                ..Default::default()
            },
        );
        assert!(stats.converged);
        // With a positive load the unconstrained membrane dips below zero.
        let mid = (p.n + 2) / 2;
        assert!(u[(mid, mid)] < 0.0);
        assert_eq!(p.constraint_violations(&u, 1e-9), 0);
    }

    #[test]
    fn more_sweeps_never_hurt() {
        let p = ObstacleProblem::membrane(16);
        let coarse = run_fixed_sweeps(&p, 50, 0.95);
        let fine = run_fixed_sweeps(&p, 500, 0.95);
        let (converged, _) = solve_sequential(
            &p,
            &RichardsonParams {
                tol: 1e-10,
                ..Default::default()
            },
        );
        assert!(fine.max_abs_diff(&converged) <= coarse.max_abs_diff(&converged));
    }

    #[test]
    fn partial_sweeps_only_touch_their_rows() {
        let p = ObstacleProblem::membrane(10);
        let u_old = p.initial_guess();
        let mut u_new = Grid2D::filled(12, 12, 42.0);
        sweep_rows(&p, &u_old, &mut u_new, 3, 6, 0.9);
        assert_eq!(u_new[(1, 5)], 42.0, "rows outside the range are untouched");
        assert_ne!(u_new[(3, 5)], 42.0);
        assert_ne!(u_new[(5, 5)], 42.0);
        assert_eq!(u_new[(6, 5)], 42.0);
    }

    #[test]
    #[should_panic(expected = "omega")]
    fn invalid_omega_is_rejected() {
        let p = ObstacleProblem::membrane(8);
        solve_sequential(
            &p,
            &RichardsonParams {
                omega: 1.5,
                ..Default::default()
            },
        );
    }
}
