//! Multi-threaded solvers (synchronous and asynchronous schemes).
//!
//! These are *real* parallel implementations (crossbeam scoped threads), not
//! simulations. They serve two purposes:
//!
//! 1. validate the domain decomposition: after the same number of sweeps the
//!    synchronous parallel solver produces exactly the sequential iterate,
//!    and the asynchronous solver converges to the same solution;
//! 2. provide measurable kernels for dPerf's `MeasuredBencher` (the PAPI-like
//!    path), so block benchmarking can be exercised against real hardware.
//!
//! The synchronous scheme performs one Jacobi-style sweep per superstep with
//! a barrier (every rank always reads its neighbours' previous iterate). The
//! asynchronous scheme lets each worker run `inner_sweeps` relaxations on its
//! block between halo refreshes, reading whatever its neighbours last
//! published — the chaotic relaxation the obstacle code of the paper uses.

use crate::decomposition::BlockRows;
use crate::grid::Grid2D;
use crate::problem::ObstacleProblem;
use crate::richardson::{sweep_rows, RichardsonParams, SolveStats};
use crossbeam::thread;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Barrier;

/// Solve with the synchronous scheme on `nthreads` workers. Equivalent to the
/// sequential solver sweep-for-sweep.
pub fn solve_parallel_sync(
    problem: &ObstacleProblem,
    params: &RichardsonParams,
    nthreads: usize,
) -> (Grid2D, SolveStats) {
    assert!(nthreads > 0);
    let decomp = BlockRows::new(problem.n, nthreads);
    let mut u_old = problem.initial_guess();
    let mut u_new = u_old.clone();
    let mut stats = SolveStats {
        sweeps: 0,
        final_diff: f64::INFINITY,
        converged: false,
    };
    for sweep in 1..=params.max_sweeps {
        // Each worker computes its block of rows into a private buffer; the
        // main thread stitches the buffers back. The copy keeps the code free
        // of unsafe slicing while remaining genuinely parallel in the sweeps.
        let blocks: Vec<(usize, usize, Vec<Vec<f64>>, f64)> = thread::scope(|s| {
            let mut handles = Vec::with_capacity(nthreads);
            for rank in 0..nthreads {
                let (begin, end) = decomp.row_range(rank);
                let u_ref = &u_old;
                let problem_ref = problem;
                let omega = params.omega;
                handles.push(s.spawn(move |_| {
                    let mut scratch = u_ref.clone();
                    let diff = sweep_rows(problem_ref, u_ref, &mut scratch, begin, end, omega);
                    let rows: Vec<Vec<f64>> =
                        (begin..end).map(|i| scratch.row(i).to_vec()).collect();
                    (begin, end, rows, diff)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        })
        .expect("scope failed");

        let mut diff = 0.0f64;
        for (begin, _end, rows, block_diff) in blocks {
            for (offset, row) in rows.iter().enumerate() {
                u_new.set_row(begin + offset, row);
            }
            diff = diff.max(block_diff);
        }
        std::mem::swap(&mut u_old, &mut u_new);
        stats.sweeps = sweep;
        stats.final_diff = diff;
        if diff <= params.tol {
            stats.converged = true;
            break;
        }
    }
    (u_old, stats)
}

/// Solve with the asynchronous scheme: workers relax their own block
/// repeatedly, publishing it to a shared iterate without any barrier, until
/// every worker has observed a locally converged state. Returns the solution
/// and per-worker sweep counts (whose maximum is the asynchronous iteration
/// count, always at least the synchronous one).
pub fn solve_parallel_async(
    problem: &ObstacleProblem,
    params: &RichardsonParams,
    nthreads: usize,
    inner_sweeps: u32,
) -> (Grid2D, Vec<u32>, SolveStats) {
    assert!(nthreads > 0 && inner_sweeps > 0);
    let decomp = BlockRows::new(problem.n, nthreads);
    let shared = RwLock::new(problem.initial_guess());
    let sweep_counts = Mutex::new(vec![0u32; nthreads]);
    let stop = AtomicBool::new(false);
    let converged = AtomicBool::new(false);
    let workers_done = AtomicU32::new(0);
    let start_barrier = Barrier::new(nthreads + 1); // workers + convergence monitor
    let outer_rounds = (params.max_sweeps / inner_sweeps).max(1);

    thread::scope(|s| {
        for rank in 0..nthreads {
            let (begin, end) = decomp.row_range(rank);
            let shared = &shared;
            let sweep_counts = &sweep_counts;
            let stop = &stop;
            let workers_done = &workers_done;
            let start_barrier = &start_barrier;
            s.spawn(move |_| {
                start_barrier.wait();
                let mut my_sweeps = 0u32;
                for _round in 0..outer_rounds {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    // Snapshot the current global iterate (stale halos are fine).
                    let mut local = shared.read().clone();
                    let mut scratch = local.clone();
                    for _ in 0..inner_sweeps {
                        sweep_rows(problem, &local, &mut scratch, begin, end, params.omega);
                        for i in begin..end {
                            let row = scratch.row(i).to_vec();
                            local.set_row(i, &row);
                        }
                        my_sweeps += 1;
                    }
                    // Publish the updated block.
                    {
                        let mut global = shared.write();
                        for i in begin..end {
                            global.set_row(i, local.row(i));
                        }
                    }
                }
                sweep_counts.lock()[rank] = my_sweeps;
                workers_done.fetch_add(1, Ordering::SeqCst);
            });
        }
        // Convergence monitor: termination detection of chaotic relaxation is
        // done centrally (as the coordinator does in P2PDC) — apply one full
        // sweep to a snapshot of the published iterate and stop everyone once
        // the global update norm is below the tolerance.
        {
            let shared = &shared;
            let stop = &stop;
            let converged = &converged;
            let workers_done = &workers_done;
            let start_barrier = &start_barrier;
            s.spawn(move |_| {
                start_barrier.wait();
                loop {
                    if workers_done.load(Ordering::SeqCst) as usize == nthreads {
                        break; // workers exhausted their sweep budget
                    }
                    let snapshot = shared.read().clone();
                    let mut scratch = snapshot.clone();
                    let diff = sweep_rows(
                        problem,
                        &snapshot,
                        &mut scratch,
                        1,
                        problem.n + 1,
                        params.omega,
                    );
                    if diff <= params.tol {
                        converged.store(true, Ordering::SeqCst);
                        stop.store(true, Ordering::SeqCst);
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
            });
        }
    })
    .expect("scope failed");

    let counts = sweep_counts.into_inner();
    let solution = shared.into_inner();
    let max_sweeps = counts.iter().copied().max().unwrap_or(0);
    let did_converge = converged.load(Ordering::SeqCst);
    let stats = SolveStats {
        sweeps: max_sweeps,
        final_diff: if did_converge {
            params.tol
        } else {
            f64::INFINITY
        },
        converged: did_converge,
    };
    (solution, counts, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::richardson::solve_sequential;

    fn small() -> (ObstacleProblem, RichardsonParams) {
        (
            ObstacleProblem::membrane(24),
            RichardsonParams {
                tol: 1e-7,
                max_sweeps: 20_000,
                ..Default::default()
            },
        )
    }

    #[test]
    fn synchronous_parallel_matches_sequential_exactly() {
        let (p, params) = small();
        let (seq, seq_stats) = solve_sequential(&p, &params);
        let (par, par_stats) = solve_parallel_sync(&p, &params, 3);
        assert_eq!(seq_stats.sweeps, par_stats.sweeps, "same sweep count");
        assert!(par_stats.converged);
        assert!(
            seq.max_abs_diff(&par) < 1e-12,
            "synchronous scheme must be bit-compatible with the sequential sweep"
        );
    }

    #[test]
    fn synchronous_parallel_with_one_thread_is_the_sequential_solver() {
        let (p, params) = small();
        let (seq, _) = solve_sequential(&p, &params);
        let (par, _) = solve_parallel_sync(&p, &params, 1);
        assert!(seq.max_abs_diff(&par) < 1e-15);
    }

    #[test]
    fn asynchronous_scheme_converges_to_the_same_solution_with_more_sweeps() {
        let (p, params) = small();
        let (seq, seq_stats) = solve_sequential(&p, &params);
        let (asy, counts, asy_stats) = solve_parallel_async(&p, &params, 3, 25);
        assert!(asy_stats.converged, "asynchronous solve did not converge");
        assert!(
            seq.max_abs_diff(&asy) < 1e-4,
            "asynchronous solution drifted: {}",
            seq.max_abs_diff(&asy)
        );
        assert_eq!(p.constraint_violations(&asy, 1e-6), 0);
        let max_async = *counts.iter().max().unwrap();
        assert!(
            max_async >= seq_stats.sweeps,
            "chaotic relaxation cannot need fewer sweeps ({max_async} vs {})",
            seq_stats.sweeps
        );
    }

    #[test]
    fn worker_counts_are_reported_per_rank() {
        let (p, params) = small();
        let (_sol, counts, _stats) = solve_parallel_async(&p, &params, 4, 10);
        assert_eq!(counts.len(), 4);
        assert!(counts.iter().all(|&c| c > 0));
    }
}
