//! The obstacle problem as a P2PDC application and a dPerf program.
//!
//! [`ObstacleApp`] is the paper-calibrated workload description:
//!
//! * grid 1200 × 1200, 900 relaxation sweeps, ~21 flops per grid point per
//!   sweep (three damped-projection passes of 7 flops each). On the 1 Gflop/s
//!   effective Bordeplage node model this gives ≈ 27 s of total compute at
//!   `-O3` and ≈ 84 s at `-O0`, matching the Stage-1 levels of Fig. 9/10;
//! * halo exchanges of one grid row (`8·N` bytes) with both neighbours every
//!   sweep, plus an 8-byte convergence reduction through the coordinator;
//! * small subtask descriptors and result summaries (the problem data — ψ, f,
//!   boundary — is generated locally from the problem definition, so only
//!   parameters and per-peer residual summaries travel; see EXPERIMENTS.md).
//!
//! The same description feeds both executions: `p2pdc::run_reference` (the
//! reference time) through the [`p2pdc::IterativeApp`] impl, and dPerf's
//! static-analysis pipeline through [`ObstacleApp::program`].

use crate::decomposition::BlockRows;
use dperf::ir::{CollectiveKind, ComputeBlock, Expr, Guard, ParamEnv, Program, Target};
use p2pdc::IterativeApp;

/// Message tag of the halo exchange.
pub const TAG_HALO: u32 = 1;
/// Message tag of the convergence reduction.
pub const TAG_REDUCE: u32 = 2;

/// The obstacle-problem workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ObstacleApp {
    /// Interior grid points per dimension (`N`).
    pub n: usize,
    /// Number of relaxation sweeps executed by the performance runs.
    pub sweeps: u32,
    /// Arithmetic work per grid point per sweep, in flops.
    pub flops_per_point: f64,
}

impl ObstacleApp {
    /// The paper-scale instance (Fig. 9–11, Table I).
    pub fn paper_scale() -> Self {
        ObstacleApp {
            n: 1200,
            sweeps: 900,
            flops_per_point: 21.0,
        }
    }

    /// A scaled-down instance for unit tests and quick benches (same shape,
    /// ~1/250 of the work).
    pub fn small() -> Self {
        ObstacleApp {
            n: 240,
            sweeps: 90,
            flops_per_point: 21.0,
        }
    }

    /// Total arithmetic work of the whole run, in flops.
    pub fn total_flops(&self) -> f64 {
        self.flops_per_point * (self.n as f64) * (self.n as f64) * self.sweeps as f64
    }

    /// Rows owned by `rank` in the 1-D block decomposition.
    pub fn rows_for(&self, rank: usize, nprocs: usize) -> usize {
        BlockRows::new(self.n, nprocs).rows_of(rank)
    }

    /// Bytes of one halo row.
    pub fn halo_row_bytes(&self) -> u64 {
        8 * self.n as u64
    }

    /// The base parameter environment of the dPerf program.
    pub fn base_env(&self) -> ParamEnv {
        ParamEnv::new()
            .with("N", self.n as f64)
            .with("sweeps", self.sweeps as f64)
            .with("flops_per_point", self.flops_per_point)
    }

    /// Per-rank parameter hook for dPerf trace generation: binds `my_rows`.
    pub fn rank_env(rank: usize, nprocs: usize, global: &ParamEnv) -> ParamEnv {
        let n = global.get("N").unwrap_or(0.0).max(1.0) as usize;
        let rows = if nprocs <= n {
            BlockRows::new(n, nprocs).rows_of(rank)
        } else {
            usize::from(rank < n)
        };
        ParamEnv::new().with("my_rows", rows as f64)
    }

    /// The obstacle program in the dPerf IR — the input dPerf's static
    /// analysis, instrumentation and trace generation consume. Its structure
    /// mirrors the P2PSAP-adapted C code: a sweep loop containing the
    /// relaxation block, the two guarded halo exchanges and the convergence
    /// reduction.
    pub fn program(&self) -> Program {
        Program::builder("obstacle-richardson")
            .param("N", self.n as f64)
            .param("sweeps", self.sweeps as f64)
            .param("flops_per_point", self.flops_per_point)
            .compute(
                ComputeBlock::new(
                    "init_subdomain",
                    Expr::c(2.0).mul(Expr::p("N")).mul(Expr::p("my_rows")),
                )
                .writing(&["u", "psi", "rhs"]),
            )
            .loop_(Expr::p("sweeps"), |b| {
                // Both boundary rows are posted *before* waiting for either
                // neighbour (as the real halo-exchange code does); waiting for
                // the up exchange before sending the down row would serialise
                // the whole chain of peers every sweep.
                b.compute(
                    ComputeBlock::new(
                        "relaxation_sweep",
                        Expr::p("flops_per_point")
                            .mul(Expr::p("N"))
                            .mul(Expr::p("my_rows")),
                    )
                    .reading(&["u", "psi", "rhs"])
                    .writing(&["u"]),
                )
                .if_(
                    Guard::HasUpNeighbor,
                    |t| {
                        t.send(
                            Target::RelativeRank(-1),
                            Expr::c(8.0).mul(Expr::p("N")),
                            TAG_HALO,
                        )
                    },
                    |e| e,
                )
                .if_(
                    Guard::HasDownNeighbor,
                    |t| {
                        t.send(
                            Target::RelativeRank(1),
                            Expr::c(8.0).mul(Expr::p("N")),
                            TAG_HALO,
                        )
                    },
                    |e| e,
                )
                .if_(
                    Guard::HasUpNeighbor,
                    |t| t.recv(Target::RelativeRank(-1), TAG_HALO),
                    |e| e,
                )
                .if_(
                    Guard::HasDownNeighbor,
                    |t| t.recv(Target::RelativeRank(1), TAG_HALO),
                    |e| e,
                )
                .collective(CollectiveKind::AllReduce, Expr::c(8.0), TAG_REDUCE)
            })
            .build()
    }
}

impl Default for ObstacleApp {
    fn default() -> Self {
        ObstacleApp::paper_scale()
    }
}

impl IterativeApp for ObstacleApp {
    fn name(&self) -> &str {
        "obstacle-richardson"
    }

    fn iterations(&self) -> u32 {
        self.sweeps
    }

    fn compute_flops(&self, rank: usize, nprocs: usize) -> f64 {
        self.flops_per_point * self.n as f64 * self.rows_for(rank, nprocs) as f64
    }

    fn neighbors(&self, rank: usize, nprocs: usize) -> Vec<usize> {
        BlockRows::new(self.n, nprocs).neighbors(rank)
    }

    fn halo_bytes(&self) -> u64 {
        self.halo_row_bytes()
    }

    fn reduction_bytes(&self) -> u64 {
        8
    }

    fn input_bytes(&self, _rank: usize, _nprocs: usize) -> u64 {
        // Problem parameters + subdomain bounds; ψ, f and the initial guess
        // are regenerated locally from the problem definition.
        4 * 1024
    }

    fn result_bytes(&self, _rank: usize, _nprocs: usize) -> u64 {
        // Residual history and per-block summary, not the full field.
        self.halo_row_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dperf::analysis::{analyze, build_dependence_graph, DepKind};
    use dperf::ir::RankContext;
    use dperf::{generate_traces, ModeledBencher, OptLevel};

    #[test]
    fn paper_scale_work_matches_the_calibration_target() {
        let app = ObstacleApp::paper_scale();
        let total = app.total_flops();
        // ~27.2 s at 1 Gflop/s.
        assert!((total / 1.0e9 - 27.2).abs() < 0.5, "total work {total}");
        assert_eq!(app.halo_bytes(), 9600);
    }

    #[test]
    fn per_rank_work_sums_to_the_total_per_sweep() {
        let app = ObstacleApp::paper_scale();
        for nprocs in [1, 2, 4, 8, 16, 32] {
            let per_sweep: f64 = (0..nprocs).map(|r| app.compute_flops(r, nprocs)).sum();
            let expected = app.flops_per_point * (app.n * app.n) as f64;
            assert!((per_sweep - expected).abs() < 1e-6, "nprocs={nprocs}");
        }
    }

    #[test]
    fn program_analysis_sees_the_paper_structure() {
        let app = ObstacleApp::small();
        let program = app.program();
        let env = ObstacleApp::rank_env(1, 4, &program.defaults);
        let report = analyze(&program, &env, RankContext { rank: 1, nprocs: 4 });
        assert_eq!(report.comm_sites, 4, "two halo sends and two halo receives");
        assert_eq!(report.collective_sites, 1, "one reduction site");
        let sweep = report.block("relaxation_sweep").expect("sweep block found");
        assert_eq!(sweep.executions as u32, app.sweeps);
        // The relaxation block both reads and writes u: the dependence graph
        // must contain a flow edge into it.
        let ddg = build_dependence_graph(&program);
        assert!(!ddg.edges_of_kind(DepKind::Flow).is_empty());
    }

    #[test]
    fn traces_from_the_program_match_the_iterative_app_description() {
        let app = ObstacleApp::small();
        let program = app.program();
        let bencher = ModeledBencher::new(dperf::MachineModel::xeon_em64t_3ghz(), OptLevel::O3);
        let traces = generate_traces(
            &program,
            &app.base_env(),
            4,
            &bencher,
            Some(&ObstacleApp::rank_env),
            "3",
        );
        assert!(traces.validate().is_empty(), "{:?}", traces.validate());
        // Sends per interior rank: (2 halos + 1 reduction) per sweep.
        assert_eq!(traces.traces[1].sends() as u32, app.sweeps * 3);
        // The modelled compute time of rank 1 matches flops / rate.
        let expected = app.compute_flops(1, 4) * app.sweeps as f64 / 1.0e9;
        let got = traces.traces[1].compute_time().as_secs_f64();
        assert!(
            (got - expected).abs() / expected < 0.02,
            "got {got}, expected {expected}"
        );
    }

    #[test]
    fn rank_env_handles_degenerate_process_counts() {
        let env = ParamEnv::new().with("N", 4.0);
        assert_eq!(ObstacleApp::rank_env(0, 8, &env).get("my_rows"), Some(1.0));
        assert_eq!(ObstacleApp::rank_env(7, 8, &env).get("my_rows"), Some(0.0));
    }
}
