//! # obstacle — the obstacle problem application
//!
//! The paper's experiments "are performed on a source code for the obstacle
//! problem … developed in the framework of the ANR CIP project" (§IV-A.1),
//! solved with the projected (parallel asynchronous) Richardson method of
//! Spitéri & Chau. This crate is a self-contained Rust implementation of that
//! application, plus the bindings that let P2PDC run it and dPerf predict it:
//!
//! * [`grid`] — a dense 2-D grid with halo-aware indexing.
//! * [`problem`] — the discretised obstacle problem: find `u ≥ ψ` with
//!   `A u ≥ f` and `(u − ψ)ᵀ(A u − f) = 0` on the unit square (the classic
//!   elastic-membrane-over-an-obstacle formulation).
//! * [`richardson`] — the projected Richardson iteration, sequentially and
//!   with a convergence criterion.
//! * [`decomposition`] — 1-D block-row domain decomposition and halo
//!   bookkeeping.
//! * [`parallel`] — a real multi-threaded solver (crossbeam scoped threads)
//!   used to validate the decomposition and to feed the *measured* block
//!   bencher: synchronous (barrier per sweep) and asynchronous (no barrier)
//!   schemes.
//! * [`app`] — [`ObstacleApp`]: the paper-calibrated
//!   workload description implementing `p2pdc::IterativeApp` and producing
//!   the dPerf IR program of the obstacle code.

#![warn(missing_docs)]

pub mod app;
pub mod decomposition;
pub mod grid;
pub mod parallel;
pub mod problem;
pub mod richardson;

pub use app::ObstacleApp;
pub use decomposition::BlockRows;
pub use grid::Grid2D;
pub use problem::ObstacleProblem;
pub use richardson::{solve_sequential, RichardsonParams, SolveStats};
