//! Dense 2-D grids.

/// A dense `rows × cols` grid of `f64`, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid2D {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Grid2D {
    /// A grid filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        assert!(rows > 0 && cols > 0, "grids must be non-empty");
        Grid2D {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// A zero grid.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Grid2D::filled(rows, cols, 0.0)
    }

    /// A grid initialised from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut g = Grid2D::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                g[(i, j)] = f(i, j);
            }
        }
        g
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow one row as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Borrow one row mutably.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy `values` into row `i`.
    pub fn set_row(&mut self, i: usize, values: &[f64]) {
        assert_eq!(values.len(), self.cols, "row length mismatch");
        self.row_mut(i).copy_from_slice(values);
    }

    /// The raw data, row-major.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Maximum absolute difference with another grid of the same shape.
    pub fn max_abs_diff(&self, other: &Grid2D) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Largest absolute value in the grid.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|v| v.abs()).fold(0.0, f64::max)
    }
}

impl std::ops::Index<(usize, usize)> for Grid2D {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Grid2D {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let mut g = Grid2D::zeros(3, 4);
        assert_eq!(g.rows(), 3);
        assert_eq!(g.cols(), 4);
        g[(1, 2)] = 5.5;
        assert_eq!(g[(1, 2)], 5.5);
        assert_eq!(g.row(1)[2], 5.5);
        assert_eq!(g.as_slice().len(), 12);
    }

    #[test]
    fn from_fn_and_rows() {
        let g = Grid2D::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(g.row(1), &[10.0, 11.0, 12.0]);
        let mut h = Grid2D::zeros(2, 3);
        h.set_row(1, &[10.0, 11.0, 12.0]);
        assert_eq!(h.row(1), g.row(1));
    }

    #[test]
    fn diff_and_norms() {
        let a = Grid2D::filled(2, 2, 1.0);
        let mut b = a.clone();
        b[(1, 1)] = -3.0;
        assert_eq!(a.max_abs_diff(&b), 4.0);
        assert_eq!(b.max_abs(), 3.0);
        assert_eq!(a.max_abs_diff(&a), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_grids_are_rejected() {
        Grid2D::zeros(0, 5);
    }
}
