//! Restore-identity differential suite.
//!
//! The checkpoint contract (`docs/CHECKPOINT.md`) is that a simulation
//! restored from a checkpoint taken at *any* event boundary produces the
//! same deliveries at the same nanosecond timestamps as the uninterrupted
//! run. This suite proves it the same way the engine-equivalence suite in
//! `tests/props.rs` proves engine interchangeability: randomised workloads,
//! an adversarially chosen cut point, and bit-exact comparison of everything
//! observable afterwards.
//!
//! Each case runs the workload twice per engine: once uninterrupted, once
//! popped to a random mid-run event index, serialized through the *full
//! JSON text path* (`checkpoint::to_json` → `checkpoint::from_json`, so
//! float formatting exactness is on trial too, not just the in-memory
//! `Value` tree), and then drained. Token → completion-nanosecond maps must
//! match exactly, as must the final network statistics.

use netsim::checkpoint;
use netsim::event::Scheduler;
use netsim::network::{Network, RebalanceEngine, SharingMode};
use netsim::platform::{HostSpec, LinkSpec, Platform, PlatformBuilder};
use netsim::stream::StreamEvent;
use p2p_common::{Bandwidth, DataSize, HostId, SimDuration, SimTime};
use proptest::prelude::*;
use serde::Value;

const ENGINES: [RebalanceEngine; 5] = [
    RebalanceEngine::ScanPerEvent,
    RebalanceEngine::BucketedBatched,
    RebalanceEngine::DirtyComponent,
    RebalanceEngine::ParallelShard,
    RebalanceEngine::WarmStart,
];

/// A star of `n` hosts around one switch (100 Mbps access links).
fn star(n: usize) -> Platform {
    let mut b = PlatformBuilder::new();
    let sw = b.add_router("sw");
    let spec = LinkSpec::new(Bandwidth::from_mbps(100.0), SimDuration::from_micros(100));
    for i in 0..n {
        let h = b.add_host(
            format!("h{i}"),
            format!("10.0.{}.{}", i / 250, i % 250 + 1).parse().unwrap(),
            HostSpec::default(),
        );
        b.add_host_link(format!("l{i}"), h, sw, spec);
    }
    b.build()
}

/// One randomised arrival: (arrival ms, src pick, dst offset, bytes).
type Arrival = (u64, usize, usize, u64);

/// Seed the scheduler with the workload's arrivals as events, so a cut can
/// land before an arrival has even fired and the checkpoint must carry it.
fn seed(sched: &mut Scheduler<StreamEvent>, workload: &[Arrival], hosts: usize) {
    for (token, &(ms, s, d, bytes)) in workload.iter().enumerate() {
        let src = s % hosts;
        let dst = (src + 1 + d % (hosts - 1)) % hosts;
        sched.schedule_at(
            SimTime::from_millis(ms),
            StreamEvent::Arrive {
                src: HostId::new(src as u32),
                dst: HostId::new(dst as u32),
                size: DataSize::from_bytes(bytes),
                token: token as u64,
            },
        );
    }
}

/// Pop and handle up to `max_events` events; record deliveries as
/// (token, completion nanos).
fn run(
    net: &mut Network,
    sched: &mut Scheduler<StreamEvent>,
    out: &mut Vec<(u64, u64)>,
    max_events: Option<usize>,
) {
    let mut n = 0usize;
    while let Some((_, ev)) = sched.pop() {
        match ev {
            StreamEvent::Net(ne) => {
                for d in net.on_event(sched, ne) {
                    out.push((d.token, sched.now().as_nanos()));
                }
            }
            StreamEvent::Arrive {
                src,
                dst,
                size,
                token,
            } => {
                net.start_flow(sched, src, dst, size, token);
            }
        }
        n += 1;
        if Some(n) == max_events {
            return;
        }
    }
}

proptest! {
    /// Checkpoint at a random event index, restore through the JSON text
    /// path, drain: deliveries and stats must be bit-identical to the
    /// uninterrupted run, for every rebalance engine.
    #[test]
    fn checkpoint_at_any_event_boundary_restores_bit_identically(
        workload in prop::collection::vec(
            (0u64..60, 0usize..64, 0usize..64, 50_000u64..1_500_000), 3..16),
        cut in 1usize..120,
        n_hosts in 3usize..7,
    ) {
        for engine in ENGINES {
            // Uninterrupted reference run.
            let mut net = Network::with_engine(
                star(n_hosts), SharingMode::MaxMinFair, engine);
            let mut sched: Scheduler<StreamEvent> = Scheduler::new();
            seed(&mut sched, &workload, n_hosts);
            let mut want = Vec::new();
            run(&mut net, &mut sched, &mut want, None);
            let want_stats = net.stats().clone();

            // Interrupted run: stop after `cut` events, checkpoint through
            // the JSON text round-trip, resume in fresh objects.
            let mut net_a = Network::with_engine(
                star(n_hosts), SharingMode::MaxMinFair, engine);
            let mut sched_a: Scheduler<StreamEvent> = Scheduler::new();
            seed(&mut sched_a, &workload, n_hosts);
            let mut got = Vec::new();
            run(&mut net_a, &mut sched_a, &mut got, Some(cut));

            let json = checkpoint::to_json(&net_a, &sched_a, Value::Null).unwrap();
            let restored = checkpoint::from_json::<StreamEvent>(&json).unwrap();
            let mut net_b = restored.network;
            let mut sched_b = restored.scheduler;
            prop_assert_eq!(sched_b.now(), sched_a.now());

            run(&mut net_b, &mut sched_b, &mut got, None);
            prop_assert_eq!(&got, &want, "{:?} diverged after restore at event {}",
                engine, cut);
            prop_assert_eq!(net_b.stats(), &want_stats,
                "{:?} stats diverged after restore at event {}", engine, cut);
        }
    }

    /// Checkpoint bytes are canonical: checkpointing, restoring, and
    /// checkpointing again yields the identical JSON text.
    #[test]
    fn checkpoint_encoding_is_stable_across_a_round_trip(
        workload in prop::collection::vec(
            (0u64..40, 0usize..64, 0usize..64, 50_000u64..800_000), 2..10),
        cut in 1usize..60,
    ) {
        let hosts = 5;
        let mut net = Network::with_engine(
            star(hosts), SharingMode::MaxMinFair, RebalanceEngine::WarmStart);
        let mut sched: Scheduler<StreamEvent> = Scheduler::new();
        seed(&mut sched, &workload, hosts);
        let mut sink = Vec::new();
        run(&mut net, &mut sched, &mut sink, Some(cut));

        let first = checkpoint::to_json(&net, &sched, Value::Null).unwrap();
        let restored = checkpoint::from_json::<StreamEvent>(&first).unwrap();
        let second = checkpoint::to_json(
            &restored.network, &restored.scheduler, Value::Null).unwrap();
        prop_assert_eq!(first, second);
    }
}

/// The envelope is strict about identity: foreign formats and versions are
/// refused before any state field is parsed.
#[test]
fn foreign_envelopes_are_rejected() {
    let net = Network::new(star(3), SharingMode::MaxMinFair);
    let sched: Scheduler<StreamEvent> = Scheduler::new();
    let json = checkpoint::to_json(&net, &sched, Value::Null).unwrap();

    let current = format!("\"version\":{}", checkpoint::VERSION);
    assert!(json.contains(&current), "envelope must carry the version");
    let wrong_version = json.replace(&current, "\"version\":999");
    let err = match checkpoint::from_json::<StreamEvent>(&wrong_version) {
        Err(e) => e,
        Ok(_) => panic!("foreign version must be rejected"),
    };
    assert!(err.to_string().contains("version"), "got: {err}");

    let wrong_format = json.replace("netsim-checkpoint", "someone-elses-format");
    let err = match checkpoint::from_json::<StreamEvent>(&wrong_format) {
        Err(e) => e,
        Ok(_) => panic!("foreign format must be rejected"),
    };
    assert!(err.to_string().contains("format"), "got: {err}");
}

/// The v1 layout (separate `engine` / `shard_threads` / `parallel_min_flows`
/// network fields, no `engine_config`) is strictly rejected by its version
/// stamp alone — decode never guesses at field migrations.
#[test]
fn v1_envelopes_are_rejected_not_migrated() {
    let net = Network::new(star(3), SharingMode::MaxMinFair);
    let sched: Scheduler<StreamEvent> = Scheduler::new();
    let json = checkpoint::to_json(&net, &sched, Value::Null).unwrap();
    assert_eq!(checkpoint::VERSION, 2, "update this test on a version bump");
    let downgraded = json.replace(
        &format!("\"version\":{}", checkpoint::VERSION),
        "\"version\":1",
    );
    let err = match checkpoint::from_json::<StreamEvent>(&downgraded) {
        Err(e) => e,
        Ok(_) => panic!("v1 envelope must be rejected"),
    };
    let msg = err.to_string();
    assert!(
        msg.contains("version 1") && msg.contains("expected 2"),
        "rejection must name both versions: {msg}"
    );
}
