//! Determinism-under-threads pins for [`RebalanceEngine::ParallelShard`].
//!
//! The property suite (`props.rs`) proves five-way engine equivalence at
//! whatever worker count `NETSIM_WORKERS` dictates — the CI matrix sweeps
//! that across processes. This file pins the orthogonal guarantee *within*
//! one process: on a deterministic multi-component workload whose flushes
//! really shard, the parallel engine's deliveries and statistics are
//! bit-identical at **every** thread count (including oversubscribed counts
//! far beyond the machine's cores), and the fallback paths — single dirty
//! component, work threshold not met — degenerate to the single-threaded
//! dirty-component flush exactly.
//!
//! The workload is mirrored across the forest's groups on purpose: every
//! group has the same access latency and the same flow pattern, so arrivals
//! and completions in different groups land at the *same* simulated
//! instants and each batched flush spans many dirty components — the
//! shardable case. (The property suite's `star_forest` staggers latencies
//! per group to interleave flushes instead; the two suites meet in the
//! middle.)

use netsim::event::{run_world, Scheduler, World};
use netsim::network::{
    FlowDelivery, NetEvent, NetWorldEvent, Network, RebalanceEngine, SharingMode,
};
use netsim::platform::{HostSpec, LinkSpec, Platform, PlatformBuilder};
use p2p_common::{Bandwidth, DataSize, HostId, SimDuration, SimTime};
use std::collections::BTreeMap;

#[derive(Debug, Clone, Copy)]
enum Ev {
    Net(NetEvent),
}
impl From<NetEvent> for Ev {
    fn from(e: NetEvent) -> Self {
        Ev::Net(e)
    }
}
impl NetWorldEvent for Ev {
    fn as_net_event(&self) -> Option<NetEvent> {
        let Ev::Net(e) = self;
        Some(*e)
    }
}

struct NetWorld {
    net: Network,
    deliveries: Vec<(SimTime, FlowDelivery)>,
}
impl World for NetWorld {
    type Event = Ev;
    fn handle(&mut self, sched: &mut Scheduler<Ev>, ev: Ev) {
        let Ev::Net(ne) = ev;
        let now = sched.now();
        for d in self.net.on_event(sched, ne) {
            self.deliveries.push((now, d));
        }
    }
}

/// A forest of `groups` disjoint stars with **identical** access latency in
/// every group, so mirrored flows activate and complete at the same
/// instants across groups and every flush spans several dirty components.
fn mirrored_forest(groups: usize, hosts_per: usize) -> Platform {
    let mut b = PlatformBuilder::new();
    let spec = LinkSpec::new(Bandwidth::from_mbps(100.0), SimDuration::from_micros(100));
    for g in 0..groups {
        let sw = b.add_router(format!("sw{g}"));
        for i in 0..hosts_per {
            let h = b.add_host(
                format!("g{g}h{i}"),
                format!("10.{g}.0.{}", i + 1).parse().unwrap(),
                HostSpec::default(),
            );
            b.add_host_link(format!("g{g}l{i}"), h, sw, spec);
        }
    }
    b.build()
}

/// The same churn pattern replicated in every group (intra-group flows
/// only; the forest is disconnected, so cross-group routes do not exist).
fn mirrored_workload(
    groups: usize,
    hosts_per: usize,
    per_group: usize,
) -> Vec<(HostId, HostId, DataSize, u64)> {
    let mut flows = Vec::with_capacity(groups * per_group);
    for g in 0..groups {
        let base = (g * hosts_per) as u32;
        for i in 0..per_group {
            let src = (i * 5 + 1) % hosts_per;
            let dst = (i * 11 + hosts_per / 2) % hosts_per;
            let dst = if dst == src {
                (dst + 1) % hosts_per
            } else {
                dst
            };
            flows.push((
                HostId::new(base + src as u32),
                HostId::new(base + dst as u32),
                DataSize::from_bytes(50_000 + (i as u64 * 17_977) % 450_000),
                (g * per_group + i) as u64,
            ));
        }
    }
    flows
}

const GROUPS: usize = 6;
const HOSTS_PER: usize = 8;
const PER_GROUP: usize = 40;

/// Run the mirrored workload under `engine` with the given shard knobs.
fn run(engine: RebalanceEngine, threads: usize, threshold: usize) -> NetWorld {
    let mut world = NetWorld {
        net: Network::with_engine(
            mirrored_forest(GROUPS, HOSTS_PER),
            SharingMode::MaxMinFair,
            engine,
        ),
        deliveries: vec![],
    };
    world.net.set_config(
        world
            .net
            .config()
            .workers(threads)
            .parallel_threshold(threshold),
    );
    let mut sched: Scheduler<Ev> = Scheduler::new();
    for &(src, dst, size, token) in &mirrored_workload(GROUPS, HOSTS_PER, PER_GROUP) {
        world.net.start_flow(&mut sched, src, dst, size, token);
    }
    run_world(&mut world, &mut sched, None);
    assert_eq!(world.deliveries.len(), GROUPS * PER_GROUP);
    world
}

fn by_token(deliveries: &[(SimTime, FlowDelivery)]) -> BTreeMap<u64, u64> {
    deliveries
        .iter()
        .map(|&(t, d)| (d.token, t.duration_since(SimTime::ZERO).as_nanos()))
        .collect()
}

/// The core pin: deliveries and statistics are bit-identical to the
/// single-threaded dirty-component engine at every worker count — one
/// worker (inline fallback), a few, the CI matrix's eight, and a wildly
/// oversubscribed sixty-four — and whenever two or more workers are
/// granted, the flushes really do shard.
#[test]
fn parallel_shard_is_thread_count_invariant() {
    let reference = run(RebalanceEngine::DirtyComponent, 1, 0);
    let reference_times = by_token(&reference.deliveries);
    for threads in [1usize, 2, 3, 8, 64] {
        let parallel = run(RebalanceEngine::ParallelShard, threads, 0);
        assert_eq!(
            by_token(&parallel.deliveries),
            reference_times,
            "deliveries diverged at {threads} worker threads"
        );
        assert_eq!(
            parallel.net.stats(),
            reference.net.stats(),
            "statistics diverged at {threads} worker threads"
        );
        let stats = parallel.net.flush_stats();
        if threads >= 2 {
            assert!(
                stats.parallel_flushes > 0,
                "the mirrored multi-component workload must shard at {threads} threads"
            );
            assert!(
                stats.shards_dispatched >= 2 * stats.parallel_flushes,
                "every parallel flush dispatches at least two shards"
            );
            assert!(
                stats.shards_dispatched <= stats.parallel_flushes * threads as u64,
                "no flush may dispatch more shards than worker threads"
            );
        } else {
            assert_eq!(
                stats.parallel_flushes, 0,
                "a single worker must never pay the fork–join machinery"
            );
        }
    }
}

/// With the work threshold left at a value the workload never reaches, the
/// parallel engine is the dirty-component engine: same deliveries, and not
/// a single shard dispatched.
#[test]
fn parallel_shard_falls_back_below_the_work_threshold() {
    let parallel = run(RebalanceEngine::ParallelShard, 8, usize::MAX);
    let dirty = run(RebalanceEngine::DirtyComponent, 1, usize::MAX);
    assert_eq!(by_token(&parallel.deliveries), by_token(&dirty.deliveries));
    assert_eq!(parallel.net.flush_stats().parallel_flushes, 0);
    assert_eq!(parallel.net.flush_stats().shards_dispatched, 0);
    // The dirty-only telemetry still ticks: flushes ran, just unsharded.
    assert!(parallel.net.flush_stats().flushes > 0);
}

/// A single-component workload (one shared star) can never shard — there is
/// nothing independent to bin — and must match the dirty engine exactly.
#[test]
fn parallel_shard_falls_back_on_a_single_component() {
    fn run_star(engine: RebalanceEngine) -> NetWorld {
        let mut b = PlatformBuilder::new();
        let sw = b.add_router("sw");
        let spec = LinkSpec::new(Bandwidth::from_mbps(100.0), SimDuration::from_micros(100));
        for i in 0..HOSTS_PER {
            let h = b.add_host(
                format!("h{i}"),
                format!("10.0.0.{}", i + 1).parse().unwrap(),
                HostSpec::default(),
            );
            b.add_host_link(format!("l{i}"), h, sw, spec);
        }
        let mut world = NetWorld {
            net: Network::with_engine(b.build(), SharingMode::MaxMinFair, engine),
            deliveries: vec![],
        };
        world
            .net
            .set_config(world.net.config().workers(8).parallel_threshold(0));
        let mut sched: Scheduler<Ev> = Scheduler::new();
        // Every flow funnels into h0, so h0's ingress link couples all of
        // them into one component (a spread-out star pattern would decompose
        // into disjoint src→dst pairings instead).
        for i in 0..2 * PER_GROUP {
            world.net.start_flow(
                &mut sched,
                HostId::new((i % (HOSTS_PER - 1) + 1) as u32),
                HostId::new(0),
                DataSize::from_bytes(50_000 + (i as u64 * 17_977) % 450_000),
                i as u64,
            );
        }
        run_world(&mut world, &mut sched, None);
        assert_eq!(world.deliveries.len(), 2 * PER_GROUP);
        world
    }
    let parallel = run_star(RebalanceEngine::ParallelShard);
    let dirty = run_star(RebalanceEngine::DirtyComponent);
    assert_eq!(by_token(&parallel.deliveries), by_token(&dirty.deliveries));
    assert_eq!(parallel.net.flush_stats().parallel_flushes, 0);
}
