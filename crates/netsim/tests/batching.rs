//! Regression tests for PR 2: batched same-timestamp rebalances and the
//! automatic event-heap compaction policy, pinned on a deterministic
//! high-churn workload (no property-testing randomness — the workload is
//! closed-form, so a failure here bisects cleanly).

use netsim::event::{run_world, Scheduler, World};
use netsim::network::{
    CompactionPolicy, FlowDelivery, NetEvent, NetWorldEvent, Network, RebalanceEngine, SharingMode,
};
use netsim::platform::{HostSpec, LinkSpec, Platform, PlatformBuilder};
use p2p_common::{Bandwidth, DataSize, FlowId, HostId, SimDuration, SimTime};
use std::collections::BTreeMap;

#[derive(Debug, Clone, Copy)]
enum Ev {
    Net(NetEvent),
}
impl From<NetEvent> for Ev {
    fn from(e: NetEvent) -> Self {
        Ev::Net(e)
    }
}
impl NetWorldEvent for Ev {
    fn as_net_event(&self) -> Option<NetEvent> {
        let Ev::Net(e) = self;
        Some(*e)
    }
}

struct NetWorld {
    net: Network,
    deliveries: Vec<(SimTime, FlowDelivery)>,
}
impl World for NetWorld {
    type Event = Ev;
    fn handle(&mut self, sched: &mut Scheduler<Ev>, ev: Ev) {
        let Ev::Net(ne) = ev;
        let now = sched.now();
        for d in self.net.on_event(sched, ne) {
            self.deliveries.push((now, d));
        }
    }
}

/// A 32-host star: every flow funnels through the central switch, so any
/// pair of flows with a common endpoint shares a link and churns rates.
fn star(n: usize) -> Platform {
    let mut b = PlatformBuilder::new();
    let sw = b.add_router("sw");
    let spec = LinkSpec::new(Bandwidth::from_mbps(100.0), SimDuration::from_micros(100));
    for i in 0..n {
        let h = b.add_host(
            format!("h{i}"),
            format!("10.0.{}.{}", i / 250, i % 250 + 1).parse().unwrap(),
            HostSpec::default(),
        );
        b.add_host_link(format!("l{i}"), h, sw, spec);
    }
    b.build()
}

/// Deterministic high-churn workload: `flows` transfers between index-derived
/// host pairs with staggered sizes, all started at t = 0, every one crossing
/// the shared star core. Arrivals all activate at the same instant (equal
/// route latencies) and completions cascade — worst case for rebalances.
fn churn_workload(hosts: usize, flows: usize) -> Vec<(HostId, HostId, DataSize, u64)> {
    (0..flows)
        .map(|i| {
            let src = (i * 5 + 1) % hosts;
            let dst = (i * 11 + hosts / 2) % hosts;
            let dst = if dst == src { (dst + 1) % hosts } else { dst };
            (
                HostId::new(src as u32),
                HostId::new(dst as u32),
                DataSize::from_bytes(50_000 + (i as u64 * 17_977) % 450_000),
                i as u64,
            )
        })
        .collect()
}

fn run(engine: RebalanceEngine, policy: Option<CompactionPolicy>) -> (NetWorld, Scheduler<Ev>) {
    let hosts = 32;
    let mut world = NetWorld {
        net: Network::with_engine(star(hosts), SharingMode::MaxMinFair, engine),
        deliveries: vec![],
    };
    if let Some(p) = policy {
        world.net.set_compaction_policy(p);
    }
    let mut sched: Scheduler<Ev> = Scheduler::new();
    for &(src, dst, size, token) in &churn_workload(hosts, 400) {
        world.net.start_flow(&mut sched, src, dst, size, token);
    }
    run_world(&mut world, &mut sched, None);
    (world, sched)
}

fn by_token(deliveries: &[(SimTime, FlowDelivery)]) -> BTreeMap<u64, u64> {
    deliveries
        .iter()
        .map(|&(t, d)| (d.token, t.duration_since(SimTime::ZERO).as_nanos()))
        .collect()
}

/// Batched same-timestamp rebalances must not shift a single delivery: the
/// batched engine and the per-event engine agree to the nanosecond on every
/// token of the high-churn workload.
#[test]
fn batched_rebalances_deliver_identically_to_unbatched() {
    let (batched, _) = run(RebalanceEngine::BucketedBatched, None);
    let (unbatched, _) = run(RebalanceEngine::ScanPerEvent, None);
    assert_eq!(batched.deliveries.len(), 400);
    assert_eq!(unbatched.deliveries.len(), 400);
    assert_eq!(
        by_token(&batched.deliveries),
        by_token(&unbatched.deliveries),
        "same-timestamp batching must be observationally invisible"
    );
    assert_eq!(batched.net.stats(), unbatched.net.stats());
}

/// The dirty-component engine on a *single*-component workload (the star
/// couples every flow through the core) degenerates to the full batched
/// recompute — and must reproduce it to the nanosecond on every token.
#[test]
fn dirty_component_engine_matches_batched_on_single_component_churn() {
    let (dirty, _) = run(RebalanceEngine::DirtyComponent, None);
    let (batched, _) = run(RebalanceEngine::BucketedBatched, None);
    assert_eq!(dirty.deliveries.len(), 400);
    assert_eq!(
        by_token(&dirty.deliveries),
        by_token(&batched.deliveries),
        "dirty-component flushes must be observationally invisible"
    );
    assert_eq!(dirty.net.stats(), batched.net.stats());
}

/// The parallel-shard engine on the same star churn workload — whose
/// index-derived src→dst pairs decompose into many small link components,
/// so flushes under an eight-worker budget and a zero threshold really do
/// shard — must reproduce the dirty-component flush to the nanosecond on
/// every token.
#[test]
fn parallel_shard_engine_matches_dirty_on_star_churn() {
    let hosts = 32;
    let mut world = NetWorld {
        net: Network::with_engine(
            star(hosts),
            SharingMode::MaxMinFair,
            RebalanceEngine::ParallelShard,
        ),
        deliveries: vec![],
    };
    world
        .net
        .set_config(world.net.config().workers(8).parallel_threshold(0));
    let mut sched: Scheduler<Ev> = Scheduler::new();
    for &(src, dst, size, token) in &churn_workload(hosts, 400) {
        world.net.start_flow(&mut sched, src, dst, size, token);
    }
    run_world(&mut world, &mut sched, None);
    assert!(
        world.net.flush_stats().parallel_flushes > 0,
        "the pairwise-decomposed churn must have sharded at least once"
    );
    let (dirty, _) = run(RebalanceEngine::DirtyComponent, None);
    assert_eq!(world.deliveries.len(), 400);
    assert_eq!(
        by_token(&world.deliveries),
        by_token(&dirty.deliveries),
        "parallel sharding must be observationally invisible"
    );
    assert_eq!(world.net.stats(), dirty.net.stats());
}

/// Coalescing is not a no-op: the whole arrival wave activates at one
/// instant, so the batched engine runs far fewer rebalances — visible as
/// far fewer superseded (dead) completion events over the run.
#[test]
fn batching_reduces_superseded_completions() {
    let no_compact = CompactionPolicy {
        dead_per_live: u32::MAX,
        min_dead: u64::MAX,
    };
    let (batched, bs) = run(RebalanceEngine::BucketedBatched, Some(no_compact));
    let (unbatched, us) = run(RebalanceEngine::ScanPerEvent, Some(no_compact));
    assert_eq!(batched.net.auto_compactions(), 0);
    assert_eq!(unbatched.net.auto_compactions(), 0);
    // All dead entries have fired (and been resolved) by drain time; compare
    // the cumulative churn the heap absorbed instead: every event ever
    // delivered that was not a live completion/activation is overhead.
    assert!(
        bs.delivered() < us.delivered(),
        "batching must shrink total event traffic: {} vs {}",
        bs.delivered(),
        us.delivered()
    );
}

/// The automatic compaction policy fires on the high-churn workload and
/// brings the dead/live ratio back under its threshold each time.
#[test]
fn auto_compaction_triggers_and_restores_the_ratio() {
    let policy = CompactionPolicy {
        dead_per_live: 1,
        min_dead: 16,
    };
    let (world, sched) = run(RebalanceEngine::ScanPerEvent, Some(policy));
    assert_eq!(world.deliveries.len(), 400);
    assert!(
        world.net.auto_compactions() > 0,
        "per-event rebalances of 400 churning flows must cross dead/live > 1"
    );
    assert_eq!(
        sched.compactions(),
        world.net.auto_compactions(),
        "every compaction of this run was policy-driven"
    );
    assert!(
        sched.compacted_entries() >= 16 * world.net.auto_compactions(),
        "each pass reclaims at least min_dead entries"
    );
    assert_eq!(sched.dead_pending(), 0, "the drained heap ends clean");
}

/// White-box check of the policy threshold itself: with compaction disabled,
/// run the same workload and replay the policy decision at every step —
/// whenever the network *would* have compacted, verify a manual
/// `compact_events` drops the dead count to zero (dead/live falls from
/// above the threshold to 0 ≤ threshold after the pass).
#[test]
fn compaction_pass_drops_dead_below_the_threshold() {
    let hosts = 32;
    let policy = CompactionPolicy {
        dead_per_live: 1,
        min_dead: 16,
    };
    let mut world = NetWorld {
        net: Network::with_engine(
            star(hosts),
            SharingMode::MaxMinFair,
            RebalanceEngine::ScanPerEvent,
        ),
        deliveries: vec![],
    };
    // Never auto-compact: this test drives the pass by hand.
    world.net.set_compaction_policy(CompactionPolicy {
        dead_per_live: u32::MAX,
        min_dead: u64::MAX,
    });
    let mut sched: Scheduler<Ev> = Scheduler::new();
    for &(src, dst, size, token) in &churn_workload(hosts, 400) {
        world.net.start_flow(&mut sched, src, dst, size, token);
    }
    let mut exercised = 0u32;
    while let Some((_, ev)) = sched.pop() {
        world.handle(&mut sched, ev);
        let dead = sched.dead_pending();
        let live = sched.live_pending() as u64;
        if dead >= policy.min_dead && dead > live * u64::from(policy.dead_per_live) {
            let removed = world.net.compact_events(&mut sched);
            assert_eq!(removed as u64, dead, "exactly the stale entries go");
            assert_eq!(sched.dead_pending(), 0, "dead/live drops below threshold");
            assert_eq!(sched.live_pending(), live as usize, "live entries survive");
            exercised += 1;
        }
    }
    assert!(exercised > 0, "the workload must cross the threshold");
    assert_eq!(world.deliveries.len(), 400, "compaction loses nothing");
}

/// Schedule `n` events the compaction predicate always keeps (the batching
/// sentinel) — synthetic "live" heap entries for policy boundary tests.
fn schedule_live(sched: &mut Scheduler<Ev>, n: usize) {
    for _ in 0..n {
        sched.schedule_at(SimTime::from_secs(1), Ev::Net(NetEvent::Rebalance));
    }
}

/// Schedule `n` completion events for flows that never existed and mark each
/// dead — synthetic "dead" heap entries the predicate will drop.
fn schedule_dead(sched: &mut Scheduler<Ev>, n: usize) {
    for i in 0..n {
        sched.schedule_at(
            SimTime::from_secs(2),
            Ev::Net(NetEvent::FlowCompletion {
                flow: FlowId::from_parts(40_000 + i as u32, 7),
                version: 0,
            }),
        );
        sched.mark_dead();
    }
}

/// Boundary case: the ratio trigger is *strict*. With `dead_per_live = 2`,
/// a heap holding exactly dead == live·2 must not compact; one more dead
/// entry must.
#[test]
fn compaction_ratio_boundary_is_strict() {
    let mut net = Network::new(star(4), SharingMode::MaxMinFair);
    net.set_compaction_policy(CompactionPolicy {
        dead_per_live: 2,
        min_dead: 1,
    });
    let mut sched: Scheduler<Ev> = Scheduler::new();
    schedule_live(&mut sched, 4);
    schedule_dead(&mut sched, 8);
    assert_eq!(sched.dead_pending(), 8);
    assert_eq!(sched.live_pending(), 4);
    assert!(
        !net.compact_if_due(&mut sched),
        "dead == live × ratio exactly must not compact"
    );
    assert_eq!(sched.pending(), 12, "no entry may have been dropped");
    assert_eq!(net.auto_compactions(), 0);
    schedule_dead(&mut sched, 1);
    assert!(
        net.compact_if_due(&mut sched),
        "dead == live × ratio + 1 must compact"
    );
    assert_eq!(net.auto_compactions(), 1);
    assert_eq!(sched.dead_pending(), 0, "every dead entry was reclaimed");
    assert_eq!(sched.pending(), 4, "every live entry survived");
}

/// Boundary case: the `min_dead` floor gates the ratio. With a zero ratio
/// (any dead entry outnumbers live × 0) the policy must still hold off until
/// the heap holds `min_dead` dead entries — and fire at exactly that count.
#[test]
fn compaction_min_dead_floor_is_inclusive() {
    let mut net = Network::new(star(4), SharingMode::MaxMinFair);
    net.set_compaction_policy(CompactionPolicy {
        dead_per_live: 0,
        min_dead: 4,
    });
    let mut sched: Scheduler<Ev> = Scheduler::new();
    schedule_dead(&mut sched, 3);
    assert!(
        !net.compact_if_due(&mut sched),
        "dead == min_dead − 1 must not compact, whatever the ratio says"
    );
    schedule_dead(&mut sched, 1);
    assert!(
        net.compact_if_due(&mut sched),
        "dead == min_dead exactly is enough (the floor is inclusive)"
    );
    assert_eq!(sched.pending(), 0);
    assert_eq!(sched.dead_pending(), 0);
}

/// Compaction while a batched rebalance is *in flight* — its sentinel
/// scheduled but not yet fired — must keep the sentinel (and the activated
/// flows' state), or the whole instant's rate update would be lost.
#[test]
fn compaction_preserves_an_in_flight_batched_rebalance() {
    let mut world = NetWorld {
        net: Network::new(star(8), SharingMode::MaxMinFair),
        deliveries: vec![],
    };
    let mut sched: Scheduler<Ev> = Scheduler::new();
    let size = DataSize::from_bytes(1_250_000);
    world
        .net
        .start_flow(&mut sched, HostId::new(1), HostId::new(0), size, 1);
    world
        .net
        .start_flow(&mut sched, HostId::new(2), HostId::new(0), size, 2);
    // Deliver exactly the two activations; the first one schedules the
    // sentinel at the same instant, so it is now the only pending event.
    for _ in 0..2 {
        let (_, ev) = sched.pop().unwrap();
        world.handle(&mut sched, ev);
    }
    assert_eq!(sched.pending(), 1, "only the rebalance sentinel is pending");
    // Neither a policy-driven check nor a manual pass may touch it.
    world.net.set_compaction_policy(CompactionPolicy {
        dead_per_live: 0,
        min_dead: 1,
    });
    assert!(
        !world.net.compact_if_due(&mut sched),
        "nothing is dead, so the policy must decline"
    );
    assert_eq!(
        world.net.compact_events(&mut sched),
        0,
        "a manual pass must keep the pending sentinel"
    );
    assert_eq!(sched.pending(), 1);
    run_world(&mut world, &mut sched, None);
    assert_eq!(
        world.deliveries.len(),
        2,
        "the batched rebalance still fired and both flows completed"
    );
}
