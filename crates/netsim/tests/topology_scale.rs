//! Scale-layer topology properties: the ISP hierarchy generator and host
//! placement.
//!
//! Three families of guarantees:
//!
//! * **Topology contract** — for randomised fan-outs, [`isp_hierarchy`]
//!   honours the contract every [`Topology`] builder promises: `components`
//!   partitions `hosts` into contiguous creation-order ranges, and every
//!   src/dst pair inside one component has a route (the hierarchy is
//!   connected, so that is *every* pair).
//! * **Placement** — [`Topology::pick_hosts`] returns exactly `n` distinct
//!   hosts for every (n, platform-size, policy) combination; the `Spread`
//!   stride wrapping around the host list must never manufacture
//!   duplicates (the historical `Vec::dedup` bug only removed *adjacent*
//!   ones).
//! * **Determinism smoke** — a scaled-down hierarchy workload is bit-
//!   identical across engines and re-builds. The parallel engine resolves
//!   its worker budget from `NETSIM_WORKERS` and the build seed comes
//!   from `ROBUSTNESS_SEED`, so the CI seed × thread × profile matrices
//!   sweep this whole file into a determinism proof for the scale layer.

use netsim::{
    isp_hierarchy, FlowDelivery, HostSpec, IspHierarchyParams, NetEvent, NetWorldEvent, Network,
    PlacementPolicy, RebalanceEngine, Scheduler, SharingMode, Topology,
};
use p2p_common::{DataSize, SimTime};
use proptest::prelude::*;

/// Build seed, pinned from the environment by the CI robustness matrix.
fn seed() -> u64 {
    std::env::var("ROBUSTNESS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    Net(NetEvent),
}
impl From<NetEvent> for Ev {
    fn from(e: NetEvent) -> Self {
        Ev::Net(e)
    }
}
impl NetWorldEvent for Ev {
    fn as_net_event(&self) -> Option<NetEvent> {
        let Ev::Net(e) = self;
        Some(*e)
    }
}

/// The contract shared by every topology builder: component ranges are
/// contiguous, in order, and cover `hosts` exactly once.
fn assert_components_partition_hosts(topo: &Topology) {
    let mut next = 0usize;
    for range in &topo.components {
        assert_eq!(range.start, next, "component ranges must be contiguous");
        assert!(range.end > range.start, "empty component");
        next = range.end;
    }
    assert_eq!(next, topo.hosts.len(), "components must cover every host");
}

/// A deterministic sample of host pairs inside one component: all pairs for
/// tiny components, strided pairs (coprime multipliers) for larger ones.
fn sample_pairs(len: usize, cap: usize) -> Vec<(usize, usize)> {
    if len < 2 {
        return Vec::new();
    }
    if len * (len - 1) <= cap {
        return (0..len)
            .flat_map(|a| (0..len).filter(move |&b| b != a).map(move |b| (a, b)))
            .collect();
    }
    (0..cap)
        .map(|i| {
            let a = (i * 7 + 1) % len;
            let b = (i * 13 + len / 2) % len;
            (a, if a == b { (b + 1) % len } else { b })
        })
        .collect()
}

proptest! {
    /// For randomised fan-outs: host/component bookkeeping is consistent and
    /// every sampled intra-component pair has a route.
    #[test]
    fn isp_hierarchy_upholds_the_topology_contract(
        backbones in 1usize..=3,
        metros in 1usize..=3,
        dslams in 1usize..=3,
        hosts_per in 2usize..=5,
        salt in 0u64..1024,
    ) {
        let params = IspHierarchyParams {
            backbones,
            metros_per_backbone: metros,
            dslams_per_metro: dslams,
            hosts_per_dslam: hosts_per,
        };
        let topo = isp_hierarchy(params, HostSpec::default(), seed() ^ salt);
        prop_assert_eq!(topo.hosts.len(), params.host_count());
        assert_components_partition_hosts(&topo);
        // The hierarchy is connected: one component, routed end to end.
        prop_assert_eq!(topo.components.len(), 1);
        let platform = topo.platform.clone();
        for (a, b) in sample_pairs(topo.hosts.len(), 64) {
            let route = platform
                .route_uncached(topo.hosts[a], topo.hosts[b])
                .unwrap_or_else(|| panic!("no route between hosts {a} and {b}"));
            prop_assert!(!route.links.is_empty());
        }
    }

    /// Placement returns exactly `n` distinct hosts for every policy at
    /// every (n, platform-size) combination.
    #[test]
    fn pick_hosts_returns_n_distinct_hosts(
        metros in 1usize..=2,
        dslams in 1usize..=3,
        hosts_per in 2usize..=5,
        percent in 0usize..=100,
    ) {
        let params = IspHierarchyParams {
            backbones: 1,
            metros_per_backbone: metros,
            dslams_per_metro: dslams,
            hosts_per_dslam: hosts_per,
        };
        let topo = isp_hierarchy(params, HostSpec::default(), seed());
        let size = topo.hosts.len();
        let n = size * percent / 100;
        for policy in [PlacementPolicy::Packed, PlacementPolicy::Spread] {
            let picks = topo.pick_hosts(n, policy);
            prop_assert_eq!(picks.len(), n);
            let mut sorted = picks.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), n, "duplicate hosts from {:?}", policy);
        }
    }
}

/// Run a fixed churn workload on a hierarchy through one engine; returns
/// every delivery (instant + token) plus the final clock.
fn run_hierarchy_workload(
    topo: &Topology,
    engine: RebalanceEngine,
) -> (Vec<(SimTime, u64)>, SimTime) {
    let mut net = Network::with_engine(topo.platform.clone(), SharingMode::MaxMinFair, engine);
    let mut sched: Scheduler<Ev> = Scheduler::new();
    let n = topo.hosts.len();
    for i in 0..(4 * n) {
        let src = topo.hosts[(i * 7 + 1) % n];
        let dst = topo.hosts[(i * 13 + n / 2) % n];
        let dst = if dst == src {
            topo.hosts[(i * 13 + n / 2 + 1) % n]
        } else {
            dst
        };
        let size = DataSize::from_bytes(40_000 + (i as u64 * 9_973) % 160_000);
        net.start_flow(&mut sched, src, dst, size, i as u64);
    }
    let mut deliveries = Vec::with_capacity(4 * n);
    let mut end = SimTime::ZERO;
    while let Some((at, Ev::Net(ne))) = sched.pop() {
        for d in net.on_event(&mut sched, ne) {
            let FlowDelivery { token, .. } = d;
            deliveries.push((at, token));
        }
        end = at;
    }
    assert_eq!(deliveries.len(), 4 * n);
    (deliveries, end)
}

/// The scaled-down determinism smoke for the CI seed × thread matrices: the
/// same hierarchy workload is bit-identical across re-builds from one seed
/// and across the engine set (the parallel engine honours
/// `NETSIM_WORKERS`, so the matrix sweep proves thread-independence).
#[test]
fn hierarchy_workload_is_deterministic_across_engines_and_rebuilds() {
    let params = IspHierarchyParams {
        backbones: 2,
        metros_per_backbone: 2,
        dslams_per_metro: 4,
        hosts_per_dslam: 8,
    };
    let topo = isp_hierarchy(params, HostSpec::default(), seed());
    let rebuilt = isp_hierarchy(params, HostSpec::default(), seed());
    assert_eq!(topo.hosts, rebuilt.hosts, "rebuild must be identical");

    let (reference, end) = run_hierarchy_workload(&topo, RebalanceEngine::WarmStart);
    assert!(end > SimTime::ZERO);
    for engine in [
        RebalanceEngine::ParallelShard,
        RebalanceEngine::DirtyComponent,
        RebalanceEngine::BucketedBatched,
        RebalanceEngine::ScanPerEvent,
    ] {
        let (other, other_end) = run_hierarchy_workload(&topo, engine);
        assert_eq!(reference, other, "{engine:?} diverged from WarmStart");
        assert_eq!(end, other_end);
    }
    // And across the rebuild, for good measure.
    let (again, _) = run_hierarchy_workload(&rebuilt, RebalanceEngine::WarmStart);
    assert_eq!(reference, again);
}
