//! Assertions over [`Network::flush_stats`] — the dirty/parallel engines'
//! flush telemetry. The counters have been exposed since PR 3 but were
//! never pinned; these tests nail down when each one ticks:
//!
//! * `flushes` — every rebalance that found a dirty link;
//! * `fast_flushes` — the dense fast path (dirty components covering ≥ 3/4
//!   of the attached flows, low GC debt): taken on globally-coupled
//!   traffic, skipped on component-local churn;
//! * `rebuilds` — region rebuilds after small gathered flushes;
//! * `flushed_flows` — the work metric the dirty engine exists to shrink;
//! * `parallel_flushes` / `shards_dispatched` — sharded fills, under
//!   [`RebalanceEngine::ParallelShard`] or [`RebalanceEngine::WarmStart`]
//!   with ≥ 2 dirty components;
//! * `warm_starts` / `warm_prefix_flows` / `warm_resume_rounds` /
//!   `warm_invalidations` — warm-start resumes and record drops, only
//!   under [`RebalanceEngine::WarmStart`].

use netsim::event::{run_world, Scheduler, World};
use netsim::network::{
    FlowDelivery, NetEvent, NetWorldEvent, Network, RebalanceEngine, SharingMode,
};
use netsim::platform::{HostSpec, LinkSpec, Platform, PlatformBuilder};
use p2p_common::{Bandwidth, DataSize, HostId, SimDuration, SimTime};

#[derive(Debug, Clone, Copy)]
enum Ev {
    Net(NetEvent),
}
impl From<NetEvent> for Ev {
    fn from(e: NetEvent) -> Self {
        Ev::Net(e)
    }
}
impl NetWorldEvent for Ev {
    fn as_net_event(&self) -> Option<NetEvent> {
        let Ev::Net(e) = self;
        Some(*e)
    }
}

struct NetWorld {
    net: Network,
    deliveries: Vec<(SimTime, FlowDelivery)>,
}
impl World for NetWorld {
    type Event = Ev;
    fn handle(&mut self, sched: &mut Scheduler<Ev>, ev: Ev) {
        let Ev::Net(ne) = ev;
        let now = sched.now();
        for d in self.net.on_event(sched, ne) {
            self.deliveries.push((now, d));
        }
    }
}

/// A forest of `groups` disjoint stars; per-group latency staggers flushes
/// when `staggered`, identical latencies synchronise them otherwise.
fn forest(groups: usize, hosts_per: usize, staggered: bool) -> Platform {
    let mut b = PlatformBuilder::new();
    for g in 0..groups {
        let sw = b.add_router(format!("sw{g}"));
        let lat = if staggered { 100 * (g as u64 + 1) } else { 100 };
        let spec = LinkSpec::new(Bandwidth::from_mbps(100.0), SimDuration::from_micros(lat));
        for i in 0..hosts_per {
            let h = b.add_host(
                format!("g{g}h{i}"),
                format!("10.{g}.0.{}", i + 1).parse().unwrap(),
                HostSpec::default(),
            );
            b.add_host_link(format!("g{g}l{i}"), h, sw, spec);
        }
    }
    b.build()
}

/// `per_group` flows inside every group, all funnelling into the group's
/// host 0 (one component per group, globally coupled *within* the group).
fn funnel_flows(
    groups: usize,
    hosts_per: usize,
    per_group: usize,
) -> Vec<(HostId, HostId, DataSize, u64)> {
    let mut flows = Vec::new();
    for g in 0..groups {
        let base = (g * hosts_per) as u32;
        for i in 0..per_group {
            flows.push((
                HostId::new(base + (i % (hosts_per - 1) + 1) as u32),
                HostId::new(base),
                DataSize::from_bytes(40_000 + (i as u64 * 13_007) % 300_000),
                (g * per_group + i) as u64,
            ));
        }
    }
    flows
}

fn run(
    platform: Platform,
    engine: RebalanceEngine,
    flows: &[(HostId, HostId, DataSize, u64)],
    configure: impl FnOnce(&mut Network),
) -> NetWorld {
    let mut world = NetWorld {
        net: Network::with_engine(platform, SharingMode::MaxMinFair, engine),
        deliveries: vec![],
    };
    configure(&mut world.net);
    let mut sched: Scheduler<Ev> = Scheduler::new();
    for &(src, dst, size, token) in flows {
        world.net.start_flow(&mut sched, src, dst, size, token);
    }
    run_world(&mut world, &mut sched, None);
    assert_eq!(world.deliveries.len(), flows.len());
    world
}

/// Globally-coupled traffic (one funnel star) takes the dense fast path:
/// the single dirty component always covers every attached flow, so flushes
/// skip the list gathering — and a fast flush never rebuilds the region.
#[test]
fn dense_fast_path_is_taken_on_globally_coupled_traffic() {
    let flows = funnel_flows(1, 8, 60);
    let w = run(
        forest(1, 8, false),
        RebalanceEngine::DirtyComponent,
        &flows,
        |_| {},
    );
    let s = w.net.flush_stats();
    assert!(s.flushes > 0, "rebalances with dirty links must count");
    assert!(s.fast_flushes > 0, "one funnel component must fast-path");
    assert!(s.fast_flushes <= s.flushes);
    assert!(
        s.flushed_flows > 0,
        "fast flushes still recompute (and count) the active set"
    );
    assert_eq!(
        s.parallel_flushes, 0,
        "the dirty engine never dispatches shards"
    );
    assert_eq!(s.shards_dispatched, 0);
}

/// Component-local churn on a staggered forest skips the fast path (each
/// flush's component covers a fraction of the attached flows), gathers, and
/// pays region rebuilds — and recomputes far fewer flows than `flushes ×
/// active` would.
#[test]
fn gathered_flushes_rebuild_and_stay_component_local() {
    let groups = 6;
    let per_group = 40;
    let flows = funnel_flows(groups, 8, per_group);
    let w = run(
        forest(groups, 8, true),
        RebalanceEngine::DirtyComponent,
        &flows,
        |_| {},
    );
    let s = w.net.flush_stats();
    assert!(s.flushes > 0);
    assert!(
        s.fast_flushes < s.flushes,
        "staggered per-group churn must take the gathered path: {s:?}"
    );
    assert!(
        s.rebuilds > 0,
        "small gathered flushes rebuild their region"
    );
    assert!(
        s.rebuilds <= s.flushes - s.fast_flushes,
        "only gathered flushes may rebuild"
    );
    // Work bound: a full engine recomputes every active flow per flush. The
    // dirty engine's whole point is staying below that; on this workload
    // each flush touches about one group of the six.
    assert!(
        s.flushed_flows < s.flushes * (groups * per_group) as u64 / 2,
        "flushes must stay component-local: {s:?}"
    );
    assert_eq!(s.parallel_flushes, 0);
}

/// The shard counters tick exactly when a parallel engine's flush spans
/// several components and clears the threshold — mirrored (equal-latency)
/// groups synchronise completions to make that happen deterministically.
#[test]
fn parallel_counters_tick_only_when_shards_dispatch() {
    let groups = 6;
    let flows = funnel_flows(groups, 8, 40);
    let platform = forest(groups, 8, false);
    let sharded = run(
        platform.clone(),
        RebalanceEngine::ParallelShard,
        &flows,
        |net| {
            net.set_config(net.config().workers(4).parallel_threshold(0));
        },
    );
    let s = sharded.net.flush_stats();
    assert!(s.parallel_flushes > 0, "mirrored groups must shard: {s:?}");
    assert!(s.shards_dispatched >= 2 * s.parallel_flushes);
    assert!(s.shards_dispatched <= 4 * s.parallel_flushes);
    assert!(s.parallel_flushes <= s.flushes);
    // Same workload, same engine, but a one-thread budget: no shard ever
    // dispatches, and the remaining telemetry still works.
    let serial = run(platform, RebalanceEngine::ParallelShard, &flows, |net| {
        net.set_config(net.config().workers(1).parallel_threshold(0));
    });
    let s1 = serial.net.flush_stats();
    assert_eq!(s1.parallel_flushes, 0);
    assert_eq!(s1.shards_dispatched, 0);
    assert!(s1.flushes > 0);
}

/// The warm counters tick on single-component churn (each completion's
/// flush resumes from the record) and never alongside the dense fast path
/// or region rebuilds — the warm engine takes neither on one component.
#[test]
fn warm_counters_tick_on_single_component_churn() {
    let flows = funnel_flows(1, 8, 60);
    let w = run(
        forest(1, 8, false),
        RebalanceEngine::WarmStart,
        &flows,
        |_| {},
    );
    let s = w.net.flush_stats();
    assert!(s.flushes > 0);
    assert!(
        s.warm_starts > 0,
        "churn must resume from the record: {s:?}"
    );
    assert!(
        s.warm_starts < s.flushes,
        "the first recording fill is cold"
    );
    assert_eq!(
        s.fast_flushes, 0,
        "one component never takes the dense path"
    );
    assert_eq!(s.rebuilds, 0, "the warm engine never rebuilds regions");
    assert_eq!(
        s.warm_invalidations, 0,
        "no merge, takeover or explicit drop"
    );
    // The funnel sink saturates at round 0 and freezes every flow there, so
    // resumes happen but keep nothing — the boundary tests in
    // `tests/warm.rs` cover non-trivial prefixes.
    assert!(s.warm_resume_rounds <= s.warm_starts * 2);
}

/// Warm tasks ride the same fork–join dispatch as the parallel engine:
/// synchronised multi-component churn shards, and warm-starts at the same
/// time. The dirty twin of the run keeps every warm counter at zero.
#[test]
fn warm_flushes_shard_and_cold_engines_never_warm_start() {
    let groups = 6;
    let flows = funnel_flows(groups, 8, 40);
    let platform = forest(groups, 8, false);
    let warm = run(
        platform.clone(),
        RebalanceEngine::WarmStart,
        &flows,
        |net| {
            net.set_config(net.config().workers(4).parallel_threshold(0));
        },
    );
    let s = warm.net.flush_stats();
    assert!(s.warm_starts > 0, "recorded groups must warm-start: {s:?}");
    assert!(s.parallel_flushes > 0, "mirrored groups must shard: {s:?}");
    assert!(s.shards_dispatched >= 2 * s.parallel_flushes);
    let dirty = run(platform, RebalanceEngine::DirtyComponent, &flows, |_| {});
    let sd = dirty.net.flush_stats();
    assert_eq!(sd.warm_starts, 0);
    assert_eq!(sd.warm_prefix_flows, 0);
    assert_eq!(sd.warm_resume_rounds, 0);
    assert_eq!(sd.warm_invalidations, 0);
}

/// Engines that do not track components never touch the telemetry.
#[test]
fn flush_stats_stay_zero_under_non_component_engines() {
    let flows = funnel_flows(2, 8, 30);
    for engine in [
        RebalanceEngine::BucketedBatched,
        RebalanceEngine::ScanPerEvent,
    ] {
        let w = run(forest(2, 8, false), engine, &flows, |_| {});
        assert_eq!(
            w.net.flush_stats(),
            Default::default(),
            "{engine:?} must leave the flush telemetry untouched"
        );
    }
}
