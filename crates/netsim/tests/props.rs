//! Property-based tests of the incremental max–min flow engine.
//!
//! Two families of properties:
//!
//! * **Max–min invariants** — after every event of a randomised workload,
//!   the per-link sum of active flow rates stays within capacity (up to
//!   floating-point slack), and every active non-loopback flow with a
//!   non-empty route holds a non-negative rate.
//! * **Differential equivalence** — the incremental engines and the retained
//!   seed engine ([`netsim::baseline::BaselineNetwork`]) produce identical
//!   simulated results on randomised flow workloads: completion counts and
//!   byte/link statistics are bit-identical, and per-token delivery
//!   timestamps agree to within two nanosecond clock ticks. (The slack
//!   exists because the engines associate the floating-point drain
//!   arithmetic differently: the seed progresses every flow at every event,
//!   the incremental engines only when a flow's rate changes, so `remaining`
//!   can differ by ulps at completion time, and the ceil-to-nanosecond of
//!   each reschedule can land one tick apart twice over a flow's lifetime —
//!   adversarial workloads at high `PROPTEST_CASES` do reach two ticks, with
//!   either incremental engine, and did so before the bucket queue existed.)
//!   The five *incremental* engines (per-event scan, batched bucket queue,
//!   dirty-component, parallel-shard, warm-start), by contrast, must agree
//!   **bit for bit**: bottleneck ties break by link index in every fill
//!   (making rates a pure function of the active flow set, independent of
//!   seeding order), coalescing rebalances at one instant passes zero
//!   simulated time, a dirty-component flush recomputes a superset of the
//!   flows whose rates can change — re-deriving bit-identical rates for the
//!   rest — a sharded flush computes each whole component on some worker
//!   thread, merging in global active order, so thread count can never
//!   show, and a warm-start flush replays only the suffix of the recorded
//!   bottleneck sequence a change can reach, the kept prefix being
//!   bit-identical to what a cold fill would recompute (see the
//!   "Warm-start filling" section of ARCHITECTURE.md; `tests/warm.rs`
//!   holds the warm-specific generators).
//!
//! The parallel engine runs here with its work threshold at zero, so every
//! multi-component flush actually shards; its worker budget stays at auto,
//! which honours `NETSIM_WORKERS` — the CI matrix sweeps that over 1, 2
//! and 8, turning this whole suite into the determinism-under-threads
//! proof (and the steal-stress lane adds `NETSIM_SPLIT_MIN=2` on top).
//!
//! The multi-component properties run on a *forest of stars* — disjoint
//! star platforms in one [`Platform`] — because that is where the
//! dirty-component engine actually takes a different code path from the
//! full recompute: churn in one star must leave every other star's rates
//! and scheduled completions untouched.

use netsim::baseline::BaselineNetwork;
use netsim::event::{run_world, Scheduler, World};
use netsim::network::{
    FlowDelivery, NetEvent, NetWorldEvent, Network, RebalanceEngine, SharingMode,
};
use netsim::platform::{HostSpec, LinkSpec, Platform, PlatformBuilder};
use p2p_common::{Bandwidth, DataSize, HostId, SimDuration, SimTime};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A star of `n` hosts around one switch (100 Mbps access links).
fn star(n: usize) -> Platform {
    let mut b = PlatformBuilder::new();
    let sw = b.add_router("sw");
    let spec = LinkSpec::new(Bandwidth::from_mbps(100.0), SimDuration::from_micros(100));
    for i in 0..n {
        let h = b.add_host(
            format!("h{i}"),
            format!("10.0.{}.{}", i / 250, i % 250 + 1).parse().unwrap(),
            HostSpec::default(),
        );
        b.add_host_link(format!("l{i}"), h, sw, spec);
    }
    b.build()
}

/// A forest of `groups` disjoint stars, `hosts_per` hosts each. Hosts are
/// numbered group-major (`g * hosts_per + i`), and every group gets its own
/// access latency so activations land at *different* instants per group —
/// interleaving rebalances of unrelated components, the adversarial case
/// for the dirty-component engine.
fn star_forest(groups: usize, hosts_per: usize) -> Platform {
    let mut b = PlatformBuilder::new();
    for g in 0..groups {
        let sw = b.add_router(format!("sw{g}"));
        let spec = LinkSpec::new(
            Bandwidth::from_mbps(100.0),
            SimDuration::from_micros(100 * (g as u64 + 1)),
        );
        for i in 0..hosts_per {
            let h = b.add_host(
                format!("g{g}h{i}"),
                format!("10.{g}.0.{}", i + 1).parse().unwrap(),
                HostSpec::default(),
            );
            b.add_host_link(format!("g{g}l{i}"), h, sw, spec);
        }
    }
    b.build()
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    Net(NetEvent),
}
impl From<NetEvent> for Ev {
    fn from(e: NetEvent) -> Self {
        Ev::Net(e)
    }
}
impl NetWorldEvent for Ev {
    fn as_net_event(&self) -> Option<NetEvent> {
        let Ev::Net(e) = self;
        Some(*e)
    }
}

struct NewWorld {
    net: Network,
    deliveries: Vec<(SimTime, FlowDelivery)>,
}
impl World for NewWorld {
    type Event = Ev;
    fn handle(&mut self, sched: &mut Scheduler<Ev>, ev: Ev) {
        let Ev::Net(ne) = ev;
        let now = sched.now();
        for d in self.net.on_event(sched, ne) {
            self.deliveries.push((now, d));
        }
    }
}

struct OldWorld {
    net: BaselineNetwork,
    deliveries: Vec<(SimTime, FlowDelivery)>,
}
impl World for OldWorld {
    type Event = Ev;
    fn handle(&mut self, sched: &mut Scheduler<Ev>, ev: Ev) {
        let Ev::Net(ne) = ev;
        let now = sched.now();
        for d in self.net.on_event(sched, ne) {
            self.deliveries.push((now, d));
        }
    }
}

/// Map host/size triples onto a concrete workload of (src, dst, size, token).
fn workload(n_hosts: usize, raw: &[(u32, u32, u64)]) -> Vec<(HostId, HostId, DataSize, u64)> {
    raw.iter()
        .enumerate()
        .map(|(i, &(a, b, size))| {
            (
                HostId::new(a % n_hosts as u32),
                HostId::new(b % n_hosts as u32),
                DataSize::from_bytes(1 + size % 5_000_000),
                i as u64,
            )
        })
        .collect()
}

/// Map raw quadruples onto intra-group flows of a star forest. Every flow
/// stays inside its group (the platform is disconnected by construction, so
/// cross-group routes do not exist), giving several independent components
/// with churn in each.
fn forest_workload(
    groups: usize,
    hosts_per: usize,
    raw: &[(u32, u32, u32, u64)],
) -> Vec<(HostId, HostId, DataSize, u64)> {
    raw.iter()
        .enumerate()
        .map(|(i, &(g, a, b, size))| {
            let base = (g % groups as u32) * hosts_per as u32;
            (
                HostId::new(base + a % hosts_per as u32),
                HostId::new(base + b % hosts_per as u32),
                DataSize::from_bytes(1 + size % 5_000_000),
                i as u64,
            )
        })
        .collect()
}

/// Construct a network with `engine`, configured so the parallel-shard
/// engine actually shards on these small workloads (work threshold zero;
/// the worker budget stays at auto so `NETSIM_WORKERS` drives it — a
/// no-op knob for every other engine).
fn network_for(platform: Platform, engine: RebalanceEngine) -> Network {
    let mut net = Network::with_engine(platform, SharingMode::MaxMinFair, engine);
    net.set_config(net.config().parallel_threshold(0));
    net
}

/// Per-token delivery timestamps (nanoseconds) of a finished run.
fn by_token(deliveries: &[(SimTime, FlowDelivery)]) -> BTreeMap<u64, u64> {
    deliveries
        .iter()
        .map(|&(t, d)| (d.token, t.duration_since(SimTime::ZERO).as_nanos()))
        .collect()
}

proptest! {
    /// Per-link Σ rates never exceeds capacity, at every step of the run.
    #[test]
    fn maxmin_rates_respect_link_capacity(
        raw in prop::collection::vec((any::<u32>(), any::<u32>(), any::<u64>()), 1..40),
        n_hosts in 2usize..8,
    ) {
        let platform = star(n_hosts);
        let capacities: Vec<f64> = platform
            .links()
            .iter()
            .map(|l| l.bandwidth.bytes_per_sec())
            .collect();
        let mut world = NewWorld { net: Network::new(platform, SharingMode::MaxMinFair), deliveries: vec![] };
        let mut sched: Scheduler<Ev> = Scheduler::new();
        for &(src, dst, size, token) in &workload(n_hosts, &raw) {
            world.net.start_flow(&mut sched, src, dst, size, token);
        }
        let mut steps = 0u32;
        while let Some((_, ev)) = sched.pop() {
            world.handle(&mut sched, ev);
            steps += 1;
            prop_assert!(steps < 100_000, "runaway event loop");
            // Invariant: per-link allocated rate within capacity.
            let mut per_link: Vec<f64> = vec![0.0; capacities.len()];
            for (_, route, rate) in world.net.active_flows() {
                if route.links.is_empty() {
                    continue; // loopback holds no link capacity
                }
                prop_assert!(rate >= 0.0, "negative rate");
                for &l in &route.links {
                    per_link[l] += rate;
                }
            }
            for (l, &used) in per_link.iter().enumerate() {
                prop_assert!(
                    used <= capacities[l] * (1.0 + 1e-9) + 1e-6,
                    "link {l} oversubscribed: {used} > {}",
                    capacities[l]
                );
            }
        }
        prop_assert_eq!(world.net.flows_in_flight(), 0, "every flow must finish");
        prop_assert_eq!(world.deliveries.len(), raw.len());
    }

    /// Every incremental engine — the per-event scan, the bucket-queue
    /// batching engine, the dirty-component engine, the parallel-shard
    /// engine and the warm-start engine — reproduces the seed engine's
    /// simulated results exactly on randomised workloads (per-token
    /// timestamps, counts, bytes).
    #[test]
    fn incremental_engines_match_seed_engine(
        raw in prop::collection::vec((any::<u32>(), any::<u32>(), any::<u64>()), 1..40),
        n_hosts in 2usize..8,
    ) {
        let flows = workload(n_hosts, &raw);

        let mut old_world = OldWorld {
            net: BaselineNetwork::new(star(n_hosts), SharingMode::MaxMinFair),
            deliveries: vec![],
        };
        let mut old_sched: Scheduler<Ev> = Scheduler::new();
        for &(src, dst, size, token) in &flows {
            old_world.net.start_flow(&mut old_sched, src, dst, size, token);
        }
        run_world(&mut old_world, &mut old_sched, None);
        let old_times = by_token(&old_world.deliveries);
        prop_assert_eq!(old_times.len(), flows.len(), "the baseline must deliver");

        for engine in [
            RebalanceEngine::WarmStart,
            RebalanceEngine::ParallelShard,
            RebalanceEngine::DirtyComponent,
            RebalanceEngine::BucketedBatched,
            RebalanceEngine::ScanPerEvent,
        ] {
            let mut new_world = NewWorld {
                net: network_for(star(n_hosts), engine),
                deliveries: vec![],
            };
            let mut new_sched: Scheduler<Ev> = Scheduler::new();
            for &(src, dst, size, token) in &flows {
                new_world.net.start_flow(&mut new_sched, src, dst, size, token);
            }
            run_world(&mut new_world, &mut new_sched, None);

            let new_times = by_token(&new_world.deliveries);
            prop_assert_eq!(
                new_times.len(),
                flows.len(),
                "every token must be delivered ({:?})",
                engine
            );
            for (token, &old_ns) in &old_times {
                let Some(&new_ns) = new_times.get(token) else {
                    panic!("token {token} missing from the {engine:?} engine");
                };
                // Two ticks of slack vs the seed, not one: see the module
                // docs — reschedule ceil rounding can land a tick apart at
                // both ends of a flow's lifetime.
                prop_assert!(
                    new_ns.abs_diff(old_ns) <= 2,
                    "token {} delivered at {} vs {} (>2ns apart, {:?})",
                    token, new_ns, old_ns, engine
                );
            }
            prop_assert_eq!(
                new_world.net.stats().flows_completed,
                old_world.net.stats().flows_completed
            );
            prop_assert_eq!(
                new_world.net.stats().bytes_delivered,
                old_world.net.stats().bytes_delivered
            );
            prop_assert_eq!(
                &new_world.net.stats().link_bytes,
                &old_world.net.stats().link_bytes
            );
        }
    }

    /// The incremental engines agree *bit for bit* with one another:
    /// coalescing rebalances at one simulated instant passes zero simulated
    /// time, limiting a flush to the dirty component recomputes exactly
    /// the rates a full recompute would, and sharding a flush across
    /// threads only changes which worker computes each component — so
    /// per-token delivery timestamps must be identical across all five
    /// (a warm start resumes from a recorded prefix that is bit-identical
    /// to the cold fill's), not merely within the slack granted against
    /// the seed engine.
    #[test]
    fn batched_and_per_event_rebalances_deliver_identically(
        raw in prop::collection::vec((any::<u32>(), any::<u32>(), any::<u64>()), 1..40),
        n_hosts in 2usize..8,
    ) {
        let flows = workload(n_hosts, &raw);
        let mut results: Vec<BTreeMap<u64, u64>> = vec![];
        for engine in [
            RebalanceEngine::WarmStart,
            RebalanceEngine::ParallelShard,
            RebalanceEngine::DirtyComponent,
            RebalanceEngine::BucketedBatched,
            RebalanceEngine::ScanPerEvent,
        ] {
            let mut world = NewWorld {
                net: network_for(star(n_hosts), engine),
                deliveries: vec![],
            };
            let mut sched: Scheduler<Ev> = Scheduler::new();
            for &(src, dst, size, token) in &flows {
                world.net.start_flow(&mut sched, src, dst, size, token);
            }
            run_world(&mut world, &mut sched, None);
            results.push(by_token(&world.deliveries));
        }
        prop_assert_eq!(&results[0], &results[1], "warm vs parallel diverged");
        prop_assert_eq!(&results[1], &results[2], "parallel vs dirty diverged");
        prop_assert_eq!(&results[2], &results[3], "dirty vs batched diverged");
        prop_assert_eq!(&results[3], &results[4], "batched vs scan diverged");
    }

    /// The tentpole differential, on its home turf: proptest-built
    /// multi-component topologies (a forest of disjoint stars, per-group
    /// latencies staggering the churn) with random intra-group flows. The
    /// parallel-shard engine (threshold zero — every multi-component flush
    /// really shards; worker budget from `NETSIM_WORKERS` via the CI
    /// matrix) and the dirty-component engine must agree **bit for bit**
    /// with the full batched recompute, and all must match the retained
    /// seed engine within the two-tick slack documented in the module
    /// header. Now five-way: the warm-start engine leads the array, so
    /// every case also proves record reuse across multi-component churn.
    /// (Historically three-way; the name is pinned because the regression
    /// corpus and the deterministic per-test RNG key hang on it.)
    #[test]
    fn three_way_engines_agree_on_multi_component_churn(
        raw in prop::collection::vec(
            (any::<u32>(), any::<u32>(), any::<u32>(), any::<u64>()),
            1..60,
        ),
        groups in 2usize..5,
        hosts_per in 2usize..6,
    ) {
        let flows = forest_workload(groups, hosts_per, &raw);

        let mut old_world = OldWorld {
            net: BaselineNetwork::new(star_forest(groups, hosts_per), SharingMode::MaxMinFair),
            deliveries: vec![],
        };
        let mut old_sched: Scheduler<Ev> = Scheduler::new();
        for &(src, dst, size, token) in &flows {
            old_world.net.start_flow(&mut old_sched, src, dst, size, token);
        }
        run_world(&mut old_world, &mut old_sched, None);
        let old_times = by_token(&old_world.deliveries);
        prop_assert_eq!(old_times.len(), flows.len(), "the baseline must deliver");

        let mut results: Vec<BTreeMap<u64, u64>> = vec![];
        for engine in [
            RebalanceEngine::WarmStart,
            RebalanceEngine::ParallelShard,
            RebalanceEngine::DirtyComponent,
            RebalanceEngine::BucketedBatched,
        ] {
            let mut world = NewWorld {
                net: network_for(star_forest(groups, hosts_per), engine),
                deliveries: vec![],
            };
            let mut sched: Scheduler<Ev> = Scheduler::new();
            for &(src, dst, size, token) in &flows {
                world.net.start_flow(&mut sched, src, dst, size, token);
            }
            run_world(&mut world, &mut sched, None);
            prop_assert_eq!(
                world.net.stats().flows_completed,
                old_world.net.stats().flows_completed
            );
            prop_assert_eq!(
                &world.net.stats().link_bytes,
                &old_world.net.stats().link_bytes
            );
            results.push(by_token(&world.deliveries));
        }
        prop_assert_eq!(
            &results[0],
            &results[1],
            "warm-start vs parallel-shard diverged"
        );
        prop_assert_eq!(
            &results[1],
            &results[2],
            "parallel-shard vs dirty-component diverged"
        );
        prop_assert_eq!(
            &results[2],
            &results[3],
            "dirty-component vs full recompute diverged"
        );
        for (token, &old_ns) in &old_times {
            let Some(&new_ns) = results[0].get(token) else {
                panic!("token {token} missing from the dirty-component engine");
            };
            prop_assert!(
                new_ns.abs_diff(old_ns) <= 2,
                "token {} delivered at {} vs baseline {} (>2ns apart)",
                token, new_ns, old_ns
            );
        }
    }

    /// Bottleneck mode is trivially identical between the two engines (same
    /// analytic formula), and no longer pollutes the heap with versions.
    #[test]
    fn bottleneck_mode_matches_seed_engine(
        raw in prop::collection::vec((any::<u32>(), any::<u32>(), any::<u64>()), 1..30),
        n_hosts in 2usize..6,
    ) {
        let flows = workload(n_hosts, &raw);
        let mut new_world = NewWorld {
            net: Network::new(star(n_hosts), SharingMode::Bottleneck),
            deliveries: vec![],
        };
        let mut sched: Scheduler<Ev> = Scheduler::new();
        for &(src, dst, size, token) in &flows {
            new_world.net.start_flow(&mut sched, src, dst, size, token);
        }
        run_world(&mut new_world, &mut sched, None);
        prop_assert_eq!(sched.dead_pending(), 0, "bottleneck flows never go stale");

        let mut old_world = OldWorld {
            net: BaselineNetwork::new(star(n_hosts), SharingMode::Bottleneck),
            deliveries: vec![],
        };
        let mut old_sched: Scheduler<Ev> = Scheduler::new();
        for &(src, dst, size, token) in &flows {
            old_world.net.start_flow(&mut old_sched, src, dst, size, token);
        }
        run_world(&mut old_world, &mut old_sched, None);
        prop_assert_eq!(by_token(&new_world.deliveries), by_token(&old_world.deliveries));
    }
}
