//! Pins for the persistent worker pool and the level-split stealing path.
//!
//! `parallel.rs` proves the *fan-out* side (whole components binned onto
//! workers) is worker-budget invariant. This file pins the *split* side:
//! when one dominant component's progressive fill is work-stolen across the
//! pool at same-share-level granularity, deliveries and statistics stay
//! bit-identical to the serial fill at **every** worker budget — and the
//! stolen rounds really happen (`FlushStats::steals > 0`). It also pins the
//! checkpoint contract under an active pool: envelopes are byte-identical
//! across runs (the nondeterministic `park_wakeups` counter encodes as 0)
//! and a mid-run restore continues bit-identically.

use netsim::event::{run_world, Scheduler, World};
use netsim::network::{
    FlowDelivery, NetEvent, NetWorldEvent, Network, RebalanceEngine, SharingMode,
};
use netsim::platform::{HostSpec, LinkSpec, Platform, PlatformBuilder};
use netsim::{EngineConfig, StreamSession};
use p2p_common::{Bandwidth, DataSize, HostId, SimDuration, SimTime};
use std::collections::BTreeMap;

#[derive(Debug, Clone, Copy)]
enum Ev {
    Net(NetEvent),
}
impl From<NetEvent> for Ev {
    fn from(e: NetEvent) -> Self {
        Ev::Net(e)
    }
}
impl NetWorldEvent for Ev {
    fn as_net_event(&self) -> Option<NetEvent> {
        let Ev::Net(e) = self;
        Some(*e)
    }
}

struct NetWorld {
    net: Network,
    deliveries: Vec<(SimTime, FlowDelivery)>,
}
impl World for NetWorld {
    type Event = Ev;
    fn handle(&mut self, sched: &mut Scheduler<Ev>, ev: Ev) {
        let Ev::Net(ne) = ev;
        let now = sched.now();
        for d in self.net.on_event(sched, ne) {
            self.deliveries.push((now, d));
        }
    }
}

const HOSTS: usize = 48;
const FLOWS: usize = 320;

/// One shared star: every flow funnels into `h0`, so `h0`'s ingress link
/// couples the whole workload into a *single* component whose bottleneck
/// incidence list holds hundreds of flows — the shape the fan-out engine
/// cannot shard and only level-split stealing can parallelise.
fn funnel_star() -> Platform {
    let mut b = PlatformBuilder::new();
    let sw = b.add_router("sw");
    let spec = LinkSpec::new(Bandwidth::from_mbps(100.0), SimDuration::from_micros(100));
    for i in 0..HOSTS {
        let h = b.add_host(
            format!("h{i}"),
            format!("10.0.{}.{}", i / 200, i % 200 + 1).parse().unwrap(),
            HostSpec::default(),
        );
        b.add_host_link(format!("l{i}"), h, sw, spec);
    }
    b.build()
}

fn funnel_workload() -> Vec<(HostId, HostId, DataSize, u64)> {
    (0..FLOWS)
        .map(|i| {
            (
                HostId::new((i % (HOSTS - 1) + 1) as u32),
                HostId::new(0),
                DataSize::from_bytes(50_000 + (i as u64 * 17_977) % 450_000),
                i as u64,
            )
        })
        .collect()
}

/// Run the funnel workload under `config`. Progressive completions churn
/// the single component flush after flush, so the warm-start records and
/// the split machinery are exercised across many saturation levels.
fn run(config: EngineConfig) -> NetWorld {
    let mut world = NetWorld {
        net: Network::with_config(funnel_star(), SharingMode::MaxMinFair, config),
        deliveries: vec![],
    };
    let mut sched: Scheduler<Ev> = Scheduler::new();
    for &(src, dst, size, token) in &funnel_workload() {
        world.net.start_flow(&mut sched, src, dst, size, token);
    }
    run_world(&mut world, &mut sched, None);
    assert_eq!(world.deliveries.len(), FLOWS);
    world
}

fn by_token(deliveries: &[(SimTime, FlowDelivery)]) -> BTreeMap<u64, u64> {
    deliveries
        .iter()
        .map(|&(t, d)| (d.token, t.duration_since(SimTime::ZERO).as_nanos()))
        .collect()
}

/// Force splitting on every round with at least two incident flows.
fn split_config(engine: RebalanceEngine, workers: usize) -> EngineConfig {
    EngineConfig::new(engine)
        .workers(workers)
        .parallel_threshold(0)
        .split_min_flows(2)
}

/// The tentpole pin: forced work-stolen split fills are bit-identical to
/// the serial fill at every worker budget — one (no pool, pure serial),
/// a few, the CI matrix's eight, and an oversubscribed sixty-four — for
/// both parallel-capable engines, and the stolen rounds really happen.
#[test]
fn split_fills_are_worker_budget_invariant() {
    let reference = run(EngineConfig::new(RebalanceEngine::DirtyComponent));
    let reference_times = by_token(&reference.deliveries);
    for engine in [RebalanceEngine::WarmStart, RebalanceEngine::ParallelShard] {
        let mut steals_seen = Vec::new();
        for workers in [1usize, 2, 3, 8, 64] {
            let split = run(split_config(engine, workers));
            assert_eq!(
                by_token(&split.deliveries),
                reference_times,
                "{engine:?} deliveries diverged at {workers} workers"
            );
            assert_eq!(
                split.net.stats(),
                reference.net.stats(),
                "{engine:?} statistics diverged at {workers} workers"
            );
            let stats = split.net.flush_stats();
            if workers >= 2 {
                assert!(
                    stats.steals > 0,
                    "{engine:?} at {workers} workers must work-steal the funnel's \
                     dominant bottleneck: {stats:?}"
                );
                assert!(
                    stats.flushes_dispatched >= stats.steals,
                    "every stolen round rides one pool dispatch: {stats:?}"
                );
                steals_seen.push(stats.steals);
            } else {
                assert_eq!(
                    stats.steals, 0,
                    "a one-worker budget has no pool and must never split"
                );
                assert_eq!(stats.flushes_dispatched, 0);
            }
        }
        // Which rounds split depends only on the threshold and the flow
        // set — never on how many workers share the round — so the steal
        // count is one number across the whole budget sweep.
        steals_seen.dedup();
        assert_eq!(
            steals_seen.len(),
            1,
            "{engine:?} steal counts must not depend on the worker budget"
        );
    }
}

/// Below the split threshold the pooled engines never steal and match the
/// serial engines exactly — the pool is pure overhead insurance, not a
/// behaviour switch.
#[test]
fn no_rounds_split_below_the_threshold() {
    let split = run(EngineConfig::new(RebalanceEngine::WarmStart)
        .workers(8)
        .parallel_threshold(0)
        .split_min_flows(usize::MAX));
    assert_eq!(split.net.flush_stats().steals, 0);
    let reference = run(EngineConfig::new(RebalanceEngine::WarmStart).workers(1));
    assert_eq!(by_token(&split.deliveries), by_token(&reference.deliveries));
}

/// The pool's scratch shows up in the memory footprint once the pool has
/// run, and the total includes it.
#[test]
fn pool_scratch_is_accounted_in_the_footprint() {
    let pooled = run(split_config(RebalanceEngine::WarmStart, 4));
    let fp = pooled.net.memory_footprint();
    assert!(
        fp.pool_bytes > 0,
        "split scratch must be accounted after stolen rounds: {fp:?}"
    );
    assert!(fp.total_bytes() >= fp.pool_bytes + fp.slab_bytes);
}

fn streamed(config: EngineConfig) -> StreamSession {
    let mut s = StreamSession::with_config(funnel_star(), SharingMode::MaxMinFair, config);
    for (i, &(src, dst, size, token)) in funnel_workload().iter().enumerate() {
        // Staggered arrivals keep the session mid-churn for the cut.
        s.inject(
            SimTime::ZERO + SimDuration::from_micros(50 * i as u64),
            src,
            dst,
            size,
            token,
        )
        .expect("arrival in the future");
    }
    s
}

/// Checkpoint bytes are a pure function of simulation state even with a
/// live pool: the `park_wakeups` counter — which depends on OS scheduling —
/// encodes as zero, so two identical runs produce byte-equal envelopes.
#[test]
fn checkpoint_bytes_are_deterministic_under_a_live_pool() {
    let cut = SimTime::ZERO + SimDuration::from_millis(40);
    let mut a = streamed(split_config(RebalanceEngine::WarmStart, 8));
    let mut b = streamed(split_config(RebalanceEngine::WarmStart, 8));
    a.advance_to(cut);
    b.advance_to(cut);
    assert!(
        a.network().flush_stats().steals > 0,
        "the cut must land mid-churn with stolen rounds behind it"
    );
    let ja = serde_json::to_string(&a.checkpoint()).unwrap();
    let jb = serde_json::to_string(&b.checkpoint()).unwrap();
    assert_eq!(ja, jb, "identical runs must checkpoint byte-identically");
}

/// A session cut mid-run under an active pool (stolen rounds already
/// behind it, more ahead) restores and finishes bit-identically to the
/// uninterrupted run, and the engine configuration survives the envelope.
#[test]
fn mid_run_restore_under_pool_is_bit_identical() {
    let config = split_config(RebalanceEngine::WarmStart, 8);
    let mut uninterrupted = streamed(config);
    let mut tail = uninterrupted.quiesce();

    let cut = SimTime::ZERO + SimDuration::from_secs(2);
    let mut original = streamed(config);
    let mut head = original.advance_to(cut);
    assert!(
        !head.is_empty() && head.len() < FLOWS,
        "the cut must land mid-run ({} deliveries)",
        head.len()
    );
    let mut restored = StreamSession::restore(&original.checkpoint()).expect("restore");
    assert_eq!(
        restored.network().config(),
        config,
        "the engine configuration must round-trip through the envelope"
    );
    assert_eq!(
        restored.network().flush_stats().park_wakeups,
        0,
        "park wakeups are an OS artifact and restore zeroed"
    );
    head.extend(restored.quiesce());

    let key = |d: &netsim::DeliveryRecord| (d.token, d.completed_at);
    tail.sort_by_key(key);
    head.sort_by_key(key);
    assert_eq!(
        head.len(),
        tail.len(),
        "restored run must deliver every flow"
    );
    for (x, y) in head.iter().zip(&tail) {
        assert_eq!(key(x), key(y), "restored deliveries diverged");
    }
}
