//! Warm-start–specific differential generators and resume-level boundary
//! tests.
//!
//! `tests/props.rs` proves the five-way engine equivalence on generic
//! workloads; this file aims the generators straight at the warm-start
//! engine's moving parts:
//!
//! * **Cold-fill oracle, per flush** — a lockstep run of the warm engine
//!   against the dirty-component engine on the *same* event stream,
//!   comparing every active flow's rate **bit for bit after every event**
//!   (not just final deliveries), while flows arrive mid-run, depart, and
//!   `Network::invalidate_fill_records` fires at generator-chosen points.
//!   Any stale warm start — a record surviving a merge, a resume level one
//!   round too high, a capacity restored inexactly — shows up as a rate
//!   mismatch at the exact flush that produced it.
//! * **Resume-level boundaries** — table-driven scenarios on a hand-built
//!   access → shared-middle → access chain where the recorded saturation
//!   sequence is known analytically, asserting the *exact* resume level
//!   and kept-prefix size through [`netsim::network::FlushStats`],
//!   including the adversaries that land exactly **on** a recorded
//!   saturation level from both sides of the link-index tie-break; plus a
//!   proptest over random multi-hop paths asserting the contract of the
//!   issue — a change whose path link saturated at recorded level k must
//!   resume at ≤ k.
//! * **Record invalidation** — merges (key expiry) and explicit
//!   invalidation force cold fills, then re-record, without disturbing a
//!   single rate.
//!
//! Like `props.rs`, failing proptest cases persist to
//! `tests/regressions/warm__<test>.txt` and replay before fresh cases.

use netsim::event::{run_world, Scheduler, World};
use netsim::network::{
    FlowDelivery, NetEvent, NetWorldEvent, Network, RebalanceEngine, SharingMode,
};
use netsim::platform::{HostSpec, LinkSpec, Platform, PlatformBuilder};
use p2p_common::{Bandwidth, DataSize, FlowId, HostId, SimDuration, SimTime};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A star of `n` hosts around one switch (100 Mbps access links).
fn star(n: usize) -> Platform {
    let mut b = PlatformBuilder::new();
    let sw = b.add_router("sw");
    let spec = LinkSpec::new(Bandwidth::from_mbps(100.0), SimDuration::from_micros(100));
    for i in 0..n {
        let h = b.add_host(
            format!("h{i}"),
            format!("10.0.{}.{}", i / 250, i % 250 + 1).parse().unwrap(),
            HostSpec::default(),
        );
        b.add_host_link(format!("l{i}"), h, sw, spec);
    }
    b.build()
}

/// A forest of `groups` disjoint stars (same shape as the props-suite
/// forest: per-group latencies stagger the churn across components).
fn star_forest(groups: usize, hosts_per: usize) -> Platform {
    let mut b = PlatformBuilder::new();
    for g in 0..groups {
        let sw = b.add_router(format!("sw{g}"));
        let spec = LinkSpec::new(
            Bandwidth::from_mbps(100.0),
            SimDuration::from_micros(100 * (g as u64 + 1)),
        );
        for i in 0..hosts_per {
            let h = b.add_host(
                format!("g{g}h{i}"),
                format!("10.{g}.0.{}", i + 1).parse().unwrap(),
                HostSpec::default(),
            );
            b.add_host_link(format!("g{g}l{i}"), h, sw, spec);
        }
    }
    b.build()
}

/// A line of routers with one host hanging off each, inter-router
/// capacities given per hop: host i → host j crosses `|i − j| + 2` links,
/// so arrivals and departures dirty genuinely multi-link paths.
fn router_chain(caps_mbps: &[u32]) -> Platform {
    let m = caps_mbps.len() + 1;
    let mut b = PlatformBuilder::new();
    let routers: Vec<_> = (0..m).map(|i| b.add_router(format!("r{i}"))).collect();
    for (i, &mbps) in caps_mbps.iter().enumerate() {
        b.add_link(
            format!("c{i}"),
            routers[i],
            routers[i + 1],
            LinkSpec::new(
                Bandwidth::from_mbps(5.0 + (mbps % 200) as f64),
                SimDuration::from_micros(50),
            ),
        );
    }
    for (i, &r) in routers.iter().enumerate() {
        let h = b.add_host(
            format!("h{i}"),
            format!("10.0.{}.{}", i / 250, i % 250 + 1).parse().unwrap(),
            HostSpec::default(),
        );
        b.add_host_link(
            format!("l{i}"),
            h,
            r,
            LinkSpec::new(Bandwidth::from_mbps(100.0), SimDuration::from_micros(100)),
        );
    }
    b.build()
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    Net(NetEvent),
}
impl From<NetEvent> for Ev {
    fn from(e: NetEvent) -> Self {
        Ev::Net(e)
    }
}
impl NetWorldEvent for Ev {
    fn as_net_event(&self) -> Option<NetEvent> {
        let Ev::Net(e) = self;
        Some(*e)
    }
}

struct NewWorld {
    net: Network,
    deliveries: Vec<(SimTime, FlowDelivery)>,
}
impl World for NewWorld {
    type Event = Ev;
    fn handle(&mut self, sched: &mut Scheduler<Ev>, ev: Ev) {
        let Ev::Net(ne) = ev;
        let now = sched.now();
        for d in self.net.on_event(sched, ne) {
            self.deliveries.push((now, d));
        }
    }
}

fn network_for(platform: Platform, engine: RebalanceEngine) -> Network {
    let mut net = Network::with_engine(platform, SharingMode::MaxMinFair, engine);
    net.set_config(net.config().parallel_threshold(0));
    net
}

/// Map raw quadruples onto intra-group flows of a star forest.
fn forest_workload(
    groups: usize,
    hosts_per: usize,
    raw: &[(u32, u32, u32, u64)],
) -> Vec<(HostId, HostId, DataSize, u64)> {
    raw.iter()
        .enumerate()
        .map(|(i, &(g, a, b, size))| {
            let base = (g % groups as u32) * hosts_per as u32;
            (
                HostId::new(base + a % hosts_per as u32),
                HostId::new(base + b % hosts_per as u32),
                DataSize::from_bytes(1 + size % 5_000_000),
                i as u64,
            )
        })
        .collect()
}

/// Every active flow's rate, bit-cast — the oracle comparison's unit.
fn rates(net: &Network) -> BTreeMap<FlowId, u64> {
    net.active_flows()
        .iter()
        .map(|(id, _, rate)| (*id, rate.to_bits()))
        .collect()
}

fn by_token(deliveries: &[(SimTime, FlowDelivery)]) -> BTreeMap<u64, u64> {
    deliveries
        .iter()
        .map(|&(t, d)| (d.token, t.duration_since(SimTime::ZERO).as_nanos()))
        .collect()
}

/// Pop events until the network has performed at least `target` flushes.
/// Panics if the scheduler drains first — scenarios must make that
/// impossible (pending completions keep it populated).
fn settle(world: &mut NewWorld, sched: &mut Scheduler<Ev>, target: u64) {
    while world.net.flush_stats().flushes < target {
        let Some((_, ev)) = sched.pop() else {
            panic!("scheduler drained before flush {target}");
        };
        world.handle(sched, ev);
    }
}

/// Pop every event scheduled before `horizon` — used to drain activation
/// bursts (and near-instant loopback completions) while leaving far-future
/// completions of long-lived flows untouched.
fn drain_until(world: &mut NewWorld, sched: &mut Scheduler<Ev>, horizon: SimTime) {
    while sched.peek_time().is_some_and(|t| t < horizon) {
        let (_, ev) = sched.pop().expect("peeked");
        world.handle(sched, ev);
    }
}

proptest! {
    /// The per-flush cold-fill oracle: warm-start and dirty-component runs
    /// of one event stream stay rate-identical after **every** event, under
    /// any interleaving of initial flows, mid-run arrivals, departures
    /// (completions) and explicit record invalidation. The final delivery
    /// schedule must match bit for bit too.
    #[test]
    fn warm_rates_match_cold_oracle_after_every_event(
        raw in prop::collection::vec(
            (any::<u32>(), any::<u32>(), any::<u32>(), any::<u64>()),
            4..60,
        ),
        groups in 1usize..4,
        hosts_per in 2usize..6,
        inject_gap in 1usize..6,
        invalidate_every in 0usize..4,
    ) {
        let flows = forest_workload(groups, hosts_per, &raw);
        let split = flows.len().div_ceil(2);
        let mut warm = NewWorld {
            net: network_for(star_forest(groups, hosts_per), RebalanceEngine::WarmStart),
            deliveries: vec![],
        };
        let mut cold = NewWorld {
            net: network_for(star_forest(groups, hosts_per), RebalanceEngine::DirtyComponent),
            deliveries: vec![],
        };
        let mut ws: Scheduler<Ev> = Scheduler::new();
        let mut cs: Scheduler<Ev> = Scheduler::new();
        for &(src, dst, size, token) in &flows[..split] {
            warm.net.start_flow(&mut ws, src, dst, size, token);
            cold.net.start_flow(&mut cs, src, dst, size, token);
        }
        let mut pending = flows[split..].iter();
        let mut steps = 0usize;
        loop {
            match (ws.pop(), cs.pop()) {
                (None, None) => {
                    // Both drained: inject the next straggler (so every
                    // flow runs even when the gap outlasts the events), or
                    // finish.
                    match pending.next() {
                        Some(&(src, dst, size, token)) => {
                            warm.net.start_flow(&mut ws, src, dst, size, token);
                            cold.net.start_flow(&mut cs, src, dst, size, token);
                        }
                        None => break,
                    }
                }
                (Some((tw, ew)), Some((tc, ec))) => {
                    prop_assert_eq!(tw, tc, "event streams diverged in time");
                    warm.handle(&mut ws, ew);
                    cold.handle(&mut cs, ec);
                    steps += 1;
                    prop_assert!(steps < 200_000, "runaway event loop");
                    // The oracle: after every event, every active flow's
                    // rate is bit-identical to the cold engine's.
                    prop_assert_eq!(
                        rates(&warm.net),
                        rates(&cold.net),
                        "rates diverged after step {}",
                        steps
                    );
                    if steps.is_multiple_of(inject_gap) {
                        if let Some(&(src, dst, size, token)) = pending.next() {
                            warm.net.start_flow(&mut ws, src, dst, size, token);
                            cold.net.start_flow(&mut cs, src, dst, size, token);
                        }
                    }
                    if invalidate_every > 0 && steps.is_multiple_of(5 * invalidate_every) {
                        // Only the warm side: invalidation must be a pure
                        // perf event, never an observable one.
                        warm.net.invalidate_fill_records();
                    }
                }
                _ => prop_assert!(false, "event streams diverged in length"),
            }
        }
        prop_assert_eq!(warm.net.flows_in_flight(), 0, "every warm flow must finish");
        prop_assert_eq!(by_token(&warm.deliveries), by_token(&cold.deliveries));
    }

    /// The issue's resume-level contract on random multi-hop paths: when a
    /// warm flush is caused by an arrival whose path links include one that
    /// saturated at recorded round k, the flush resumes at ≤ k (measured
    /// through the `warm_resume_rounds` counter). Merges and recordless
    /// components make the flush cold — trivially within the bound — so the
    /// assertion triggers exactly on the warm flushes.
    #[test]
    fn arrival_resumes_at_or_below_its_path_links_recorded_rounds(
        caps in prop::collection::vec(any::<u32>(), 2..6),
        raw in prop::collection::vec((any::<u32>(), any::<u32>()), 2..12),
        arrival in (any::<u32>(), any::<u32>()),
    ) {
        let n_hosts = caps.len() + 1;
        let mut world = NewWorld {
            net: network_for(router_chain(&caps), RebalanceEngine::WarmStart),
            deliveries: vec![],
        };
        let mut sched: Scheduler<Ev> = Scheduler::new();
        let huge = DataSize::from_bytes(5_000_000_000_000_000); // outlives the test
        for (i, &(a, b)) in raw.iter().enumerate() {
            let src = HostId::new(a % n_hosts as u32);
            let dst = HostId::new(b % n_hosts as u32);
            world.net.start_flow(&mut sched, src, dst, huge, i as u64);
        }
        // Drain the activation burst (plus any near-instant loopback
        // completions); the huge flows' own completions sit years of
        // simulated time away, far past the horizon.
        let horizon = sched.now() + SimDuration::from_micros(3_600_000_000);
        drain_until(&mut world, &mut sched, horizon);
        // Pre-change snapshot: stats, and each link's recorded sequence.
        let links = world.net.platform().links().len();
        let rounds_before: Vec<Option<Vec<(usize, f64)>>> =
            (0..links).map(|l| world.net.fill_record_rounds(l)).collect();
        let stats0 = world.net.flush_stats();
        // The change: one arrival on a random (non-loopback) path.
        let (a, b) = arrival;
        let src = a % n_hosts as u32;
        let dst = (src + 1 + b % (n_hosts as u32 - 1)) % n_hosts as u32;
        let id = world.net.start_flow(
            &mut sched,
            HostId::new(src),
            HostId::new(dst),
            huge,
            u64::MAX,
        );
        settle(&mut world, &mut sched, stats0.flushes + 1);
        let stats1 = world.net.flush_stats();
        if stats1.warm_starts == stats0.warm_starts + 1 {
            // The flush warm-started, so the arrival did not merge
            // components: its whole route lies in one component whose
            // record we snapshotted.
            let route = world
                .net
                .active_flows()
                .into_iter()
                .find(|(fid, _, _)| *fid == id)
                .expect("the arrival is active")
                .1;
            let recorded = rounds_before[route.links[0]]
                .as_ref()
                .expect("a warm start implies a recorded component");
            let k_min = route
                .links
                .iter()
                .filter_map(|&l| recorded.iter().position(|&(rl, _)| rl == l))
                .min();
            if let Some(k_min) = k_min {
                let resumed = stats1.warm_resume_rounds - stats0.warm_resume_rounds;
                prop_assert!(
                    resumed as usize <= k_min,
                    "resumed at {} but a path link saturated at recorded round {}",
                    resumed,
                    k_min
                );
            }
            // Recorded shares stay non-decreasing — the monotonicity the
            // resume-level binary search relies on.
            let after = world
                .net
                .fill_record_rounds(route.links[0])
                .expect("a warm flush re-records");
            for w in after.windows(2) {
                prop_assert!(w[0].1 <= w[1].1, "recorded shares must be monotone");
            }
        }
    }
}

/// The hand-built boundary scenarios share this platform: five sources
/// with chosen access capacities on one router, 1 Gbps sinks on the other,
/// a 10 Gbps link between the routers — every flow `s_i → d_i` crosses
/// exactly three links, and each carries one long-lived flow from the
/// start, so every later arrival rides links already inside the one
/// recorded component (a fresh link would merge a singleton in, expire the
/// key and force a cold fill — covered by the merge test instead). Sources
/// and their uplinks are created first, in index order, so link-index
/// tie-breaks between access links follow source order.
///
/// With access capacities 10/40/20/40/80 Mbps the cold fill records
///
/// ```text
/// round 0: s0's uplink @ 10 Mbps   (freezes f0)
/// round 1: s2's uplink @ 20 Mbps   (freezes f2)
/// round 2: s1's uplink @ 40 Mbps   (freezes f1; ties s3, lower index)
/// round 3: s3's uplink @ 40 Mbps   (freezes f3)
/// round 4: s4's uplink @ 80 Mbps   (freezes f4)
/// ```
///
/// (the middle link and the sinks never saturate). A second flow on
/// source i halves that access link's fresh fair share to cap/2, landing
/// at an analytically chosen spot in the recorded sequence — including
/// exactly *on* a recorded level from either side of the link-index
/// tie-break.
struct ChainRig {
    world: NewWorld,
    sched: Scheduler<Ev>,
}

const SRC_CAPS: [f64; 5] = [10.0, 40.0, 20.0, 40.0, 80.0];
const HUGE: u64 = 5_000_000_000_000_000;

fn chain_rig(engine: RebalanceEngine, sizes: [u64; 5]) -> ChainRig {
    let mut b = PlatformBuilder::new();
    let r0 = b.add_router("r0");
    let r1 = b.add_router("r1");
    for (i, &mbps) in SRC_CAPS.iter().enumerate() {
        let h = b.add_host(
            format!("s{i}"),
            format!("10.0.0.{}", i + 1).parse().unwrap(),
            HostSpec::default(),
        );
        b.add_host_link(
            format!("s{i}l"),
            h,
            r0,
            LinkSpec::new(Bandwidth::from_mbps(mbps), SimDuration::from_micros(100)),
        );
    }
    b.add_link(
        "mid",
        r0,
        r1,
        LinkSpec::new(
            Bandwidth::from_mbps(10_000.0),
            SimDuration::from_micros(100),
        ),
    );
    for i in 0..SRC_CAPS.len() {
        let h = b.add_host(
            format!("d{i}"),
            format!("10.0.1.{}", i + 1).parse().unwrap(),
            HostSpec::default(),
        );
        b.add_host_link(
            format!("d{i}l"),
            h,
            r1,
            LinkSpec::new(Bandwidth::from_mbps(1000.0), SimDuration::from_micros(100)),
        );
    }
    let mut world = NewWorld {
        net: network_for(b.build(), engine),
        deliveries: vec![],
    };
    let mut sched: Scheduler<Ev> = Scheduler::new();
    let n = SRC_CAPS.len() as u32;
    for (i, &size) in sizes.iter().enumerate() {
        world.net.start_flow(
            &mut sched,
            HostId::new(i as u32),
            HostId::new(n + i as u32),
            DataSize::from_bytes(size),
            i as u64,
        );
    }
    // All five routes have identical latency, so the activations coalesce
    // into one cold recording flush of the single shared component.
    settle(&mut world, &mut sched, 1);
    assert_eq!(
        world.net.flush_stats().warm_starts,
        0,
        "the first fill is cold"
    );
    ChainRig { world, sched }
}

/// Run one boundary scenario: `change` perturbs the rig, then the next
/// flush must warm-start at exactly `expect_k` with exactly
/// `expect_prefix` flows kept un-walked.
fn assert_resume(
    rig: &mut ChainRig,
    expect_k: u64,
    expect_prefix: u64,
    change: impl FnOnce(&mut ChainRig),
) {
    let s0 = rig.world.net.flush_stats();
    change(rig);
    settle(&mut rig.world, &mut rig.sched, s0.flushes + 1);
    let s1 = rig.world.net.flush_stats();
    assert_eq!(
        s1.warm_starts,
        s0.warm_starts + 1,
        "the flush must warm-start"
    );
    assert_eq!(
        s1.warm_resume_rounds - s0.warm_resume_rounds,
        expect_k,
        "resume level"
    );
    assert_eq!(
        s1.warm_prefix_flows - s0.warm_prefix_flows,
        expect_prefix,
        "kept-prefix flows"
    );
}

/// A second huge flow on source `src`, riding the same three links as the
/// rig's initial flow there.
fn arrive(rig: &mut ChainRig, src: u32) {
    let n = SRC_CAPS.len() as u32;
    rig.world.net.start_flow(
        &mut rig.sched,
        HostId::new(src),
        HostId::new(n + src),
        DataSize::from_bytes(HUGE),
        100 + src as u64,
    );
}

/// Arrival on the top-level bottleneck (s4, saturated at round 4): its
/// halved fresh share 80/2 = 40 ties rounds 2 and 3 but loses both
/// link-index tie-breaks (s4's uplink is above s1's and s3's), so the
/// whole recorded sequence below its own pop round survives.
#[test]
fn arrival_on_the_top_bottleneck_resumes_at_its_round() {
    let mut rig = chain_rig(RebalanceEngine::WarmStart, [HUGE; 5]);
    assert_resume(&mut rig, 4, 4, |r| arrive(r, 4));
}

/// Arrival on the bottom bottleneck (s0, saturated at round 0): the fresh
/// share 10/2 = 5 undercuts everything — nothing can be kept.
#[test]
fn arrival_on_the_bottom_bottleneck_replays_everything() {
    let mut rig = chain_rig(RebalanceEngine::WarmStart, [HUGE; 5]);
    assert_resume(&mut rig, 0, 0, |r| arrive(r, 0));
}

/// Tie adversary, low side: a second flow on s1 halves its share to
/// 40/2 = 20, landing exactly on round 1's recorded level — and s1's
/// uplink index is *below* round 1's link (s2's uplink), so it wins the
/// tie-break and preempts that round: resume at 1, keeping only f0.
#[test]
fn tie_on_a_recorded_level_from_a_lower_link_preempts_it() {
    let mut rig = chain_rig(RebalanceEngine::WarmStart, [HUGE; 5]);
    assert_resume(&mut rig, 1, 1, |r| arrive(r, 1));
}

/// Tie adversary, high side: the same 20 Mbps fresh share from s3 — uplink
/// index *above* s2's — loses the tie-break, so round 1 survives and the
/// fill resumes at round 2 (s3's own pop round, 3, is not the binding
/// bound).
#[test]
fn tie_on_a_recorded_level_from_a_higher_link_keeps_that_round() {
    let mut rig = chain_rig(RebalanceEngine::WarmStart, [HUGE; 5]);
    assert_resume(&mut rig, 2, 2, |r| arrive(r, 3));
}

/// Pop-round bound: a second flow on s2 ties round 0's 10 Mbps level and
/// loses to s0's uplink, so round 0 survives — and s2's own recorded pop
/// round (1) then binds: resume at 1.
#[test]
fn tie_on_a_recorded_level_from_a_higher_link_binds_by_pop_round() {
    let mut rig = chain_rig(RebalanceEngine::WarmStart, [HUGE; 5]);
    assert_resume(&mut rig, 1, 1, |r| arrive(r, 2));
}

/// Departure of the round-0 flow: its freeze round bounds the resume level
/// at 0 — full replay.
#[test]
fn departure_of_the_bottom_flow_replays_everything() {
    // f0 completes after ~0.8 s at its 10 Mbps allocation; the others
    // outlive the test.
    let mut rig = chain_rig(
        RebalanceEngine::WarmStart,
        [1_000_000, HUGE, HUGE, HUGE, HUGE],
    );
    assert_resume(&mut rig, 0, 0, |_| {});
}

/// Departure of the round-4 flow keeps all four lower rounds frozen.
#[test]
fn departure_of_the_top_flow_keeps_the_lower_rounds() {
    let mut rig = chain_rig(
        RebalanceEngine::WarmStart,
        [HUGE, HUGE, HUGE, HUGE, 1_000_000],
    );
    assert_resume(&mut rig, 4, 4, |_| {});
}

/// After a warm resume the record must describe the *new* flow set: the
/// top-bottleneck arrival rewrites round 4 from 80 Mbps to the shared
/// 40 Mbps while rounds 0–3 survive verbatim.
#[test]
fn a_warm_flush_rewrites_the_record_suffix() {
    let mut rig = chain_rig(RebalanceEngine::WarmStart, [HUGE; 5]);
    let probe = rig
        .world
        .net
        .active_flows()
        .first()
        .expect("flows are active")
        .1
        .links[0];
    let before = rig.world.net.fill_record_rounds(probe).expect("recorded");
    let shares = |r: &[(usize, f64)]| r.iter().map(|&(_, s)| s).collect::<Vec<_>>();
    assert_eq!(
        shares(&before),
        vec![1.25e6, 2.5e6, 5e6, 5e6, 1e7],
        "10/20/40/40/80 Mbps in bytes per second"
    );
    assert_resume(&mut rig, 4, 4, |r| arrive(r, 4));
    let after = rig
        .world
        .net
        .fill_record_rounds(probe)
        .expect("re-recorded");
    assert_eq!(shares(&after), vec![1.25e6, 2.5e6, 5e6, 5e6, 5e6]);
    assert_eq!(&after[..4], &before[..4], "rounds 0–3 survive verbatim");
}

/// A merge expires the records of both components (their union–find keys
/// die), so the flush after a bridging arrival is cold — and re-records
/// the merged component for the next change. The two components are built
/// in *separate* flushes: a first flush spanning both would take the dense
/// fast path and never record at all.
#[test]
fn merges_expire_both_records_and_the_flush_goes_cold() {
    let mut world = NewWorld {
        net: network_for(star(6), RebalanceEngine::WarmStart),
        deliveries: vec![],
    };
    let mut sched: Scheduler<Ev> = Scheduler::new();
    let huge = DataSize::from_bytes(HUGE);
    // Two disjoint components: h0→h1 and h2→h3 (directed links, so the
    // components share nothing).
    let f1 = world
        .net
        .start_flow(&mut sched, HostId::new(0), HostId::new(1), huge, 0);
    settle(&mut world, &mut sched, 1);
    world
        .net
        .start_flow(&mut sched, HostId::new(2), HostId::new(3), huge, 1);
    settle(&mut world, &mut sched, 2);
    let route1 = world
        .net
        .active_flows()
        .into_iter()
        .find(|&(id, _, _)| id == f1)
        .expect("f1 active")
        .1;
    assert!(world.net.fill_record_rounds(route1.links[0]).is_some());
    let s0 = world.net.flush_stats();
    // h0→h3 bridges the two components (h0's uplink + h3's downlink): the
    // union at attach bumps both keys, so the single merged dirty root
    // finds its record expired and runs a cold recorded fill.
    world
        .net
        .start_flow(&mut sched, HostId::new(0), HostId::new(3), huge, 2);
    settle(&mut world, &mut sched, s0.flushes + 1);
    let s1 = world.net.flush_stats();
    assert_eq!(
        s1.warm_starts, s0.warm_starts,
        "a merged flush must run cold"
    );
    assert!(
        world.net.fill_record_rounds(route1.links[0]).is_some(),
        "the cold fill re-records the merged component"
    );
    // The next change rides existing links only (h2's uplink, h1's
    // downlink) and warm-starts off the re-recorded merged component.
    let s1 = world.net.flush_stats();
    world
        .net
        .start_flow(&mut sched, HostId::new(2), HostId::new(1), huge, 3);
    settle(&mut world, &mut sched, s1.flushes + 1);
    assert_eq!(world.net.flush_stats().warm_starts, s1.warm_starts + 1);
}

/// `invalidate_fill_records` drops records (counted) and forces the next
/// flush cold; the one after that warm-starts again. All arrivals repeat
/// the h0→h1 pair so no flush ever merges a fresh link in.
#[test]
fn explicit_invalidation_forces_one_cold_flush() {
    let mut world = NewWorld {
        net: network_for(star(4), RebalanceEngine::WarmStart),
        deliveries: vec![],
    };
    let mut sched: Scheduler<Ev> = Scheduler::new();
    let huge = DataSize::from_bytes(HUGE);
    world
        .net
        .start_flow(&mut sched, HostId::new(0), HostId::new(1), huge, 0);
    settle(&mut world, &mut sched, 1);
    let s0 = world.net.flush_stats();
    world.net.invalidate_fill_records();
    assert_eq!(
        world.net.flush_stats().warm_invalidations,
        s0.warm_invalidations + 1
    );
    world
        .net
        .start_flow(&mut sched, HostId::new(0), HostId::new(1), huge, 1);
    settle(&mut world, &mut sched, s0.flushes + 1);
    let s1 = world.net.flush_stats();
    assert_eq!(
        s1.warm_starts, s0.warm_starts,
        "post-invalidation flush is cold"
    );
    world
        .net
        .start_flow(&mut sched, HostId::new(0), HostId::new(1), huge, 2);
    settle(&mut world, &mut sched, s1.flushes + 1);
    assert_eq!(world.net.flush_stats().warm_starts, s1.warm_starts + 1);
}

/// The canonical workload — sustained churn inside one component — must
/// actually take the warm path (records reused flush after flush, prefixes
/// genuinely kept), not silently fall back to cold fills. End-state
/// equality with the cold engine is asserted on top. Sizes are staggered
/// so the five flows complete one at a time, each departure driving one
/// warm flush; the round-4 flow finishes first, so its flush keeps a
/// four-flow prefix.
#[test]
fn single_component_churn_stays_on_the_warm_path() {
    let sizes = [4_000_000, 30_000_000, 10_000_000, 40_000_000, 10_000_000];
    let run = |engine| {
        let mut rig = chain_rig(engine, sizes);
        run_world(&mut rig.world, &mut rig.sched, None);
        rig.world
    };
    let warm = run(RebalanceEngine::WarmStart);
    let cold = run(RebalanceEngine::DirtyComponent);
    assert_eq!(by_token(&warm.deliveries), by_token(&cold.deliveries));
    assert_eq!(warm.net.flows_in_flight(), 0);
    let stats = warm.net.flush_stats();
    assert!(
        stats.warm_starts >= 4,
        "each departure warm-starts: {stats:?}"
    );
    assert!(
        stats.warm_prefix_flows >= 4,
        "prefixes must be kept: {stats:?}"
    );
    assert_eq!(
        stats.fast_flushes, 0,
        "one component never takes the dense path"
    );
}
