//! Thread-lifecycle pin for the persistent worker pool: creating a pooled
//! network spawns its workers once, reconfiguring the budget retires them,
//! and dropping the network joins every thread — no leaks, ever.
//!
//! This is deliberately the **only** test in this binary: it asserts on the
//! process thread count (`/proc/self/status`), which would race against
//! sibling tests spawning their own pools on other harness threads.

use netsim::event::{run_world, Scheduler, World};
use netsim::network::{NetEvent, NetWorldEvent, Network, RebalanceEngine, SharingMode};
use netsim::platform::{HostSpec, LinkSpec, PlatformBuilder};
use netsim::EngineConfig;
use p2p_common::{Bandwidth, DataSize, HostId, SimDuration};

#[derive(Debug, Clone, Copy)]
struct Ev(NetEvent);
impl From<NetEvent> for Ev {
    fn from(e: NetEvent) -> Self {
        Ev(e)
    }
}
impl NetWorldEvent for Ev {
    fn as_net_event(&self) -> Option<NetEvent> {
        Some(self.0)
    }
}

struct Sim {
    net: Network,
}
impl World for Sim {
    type Event = Ev;
    fn handle(&mut self, sched: &mut Scheduler<Ev>, ev: Ev) {
        self.net.on_event(sched, ev.0);
    }
}

/// Current thread count of this process, from `/proc/self/status`.
fn thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("Threads:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

/// Drive one funnel workload to completion so the lazy pool is created and
/// actually dispatches.
fn flush_once(net: &mut Network) {
    let mut sim = Sim {
        net: std::mem::replace(
            net,
            Network::new(PlatformBuilder::new().build(), SharingMode::MaxMinFair),
        ),
    };
    let mut sched: Scheduler<Ev> = Scheduler::new();
    for i in 0..64u64 {
        sim.net.start_flow(
            &mut sched,
            HostId::new((i % 7 + 1) as u32),
            HostId::new(0),
            DataSize::from_bytes(50_000 + i * 9_973),
            i,
        );
    }
    run_world(&mut sim, &mut sched, None);
    *net = sim.net;
}

#[test]
fn pool_reconfigure_and_drop_leak_no_threads() {
    let Some(baseline) = thread_count() else {
        eprintln!("skip: /proc/self/status not readable on this platform");
        return;
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut b = PlatformBuilder::new();
    let sw = b.add_router("sw");
    let spec = LinkSpec::new(Bandwidth::from_mbps(100.0), SimDuration::from_micros(100));
    for i in 0..8 {
        let h = b.add_host(
            format!("h{i}"),
            format!("10.0.0.{}", i + 1).parse().unwrap(),
            HostSpec::default(),
        );
        b.add_host_link(format!("l{i}"), h, sw, spec);
    }
    let config = EngineConfig::new(RebalanceEngine::WarmStart)
        .workers(4)
        .parallel_threshold(0)
        .split_min_flows(2);
    let mut net = Network::with_config(b.build(), SharingMode::MaxMinFair, config);

    flush_once(&mut net);
    let pooled = thread_count().unwrap();
    // The pool spawns budget-capped-by-cores minus the participating
    // caller; on a single-core box that is zero threads, and everything
    // below degenerates to equalities against the baseline.
    let expected_workers = 4usize.min(cores).saturating_sub(1);
    assert_eq!(
        pooled,
        baseline + expected_workers,
        "a pooled flush must spawn exactly the capped worker count once"
    );

    // Re-flushing must reuse the parked workers, not spawn fresh ones.
    flush_once(&mut net);
    assert_eq!(
        thread_count().unwrap(),
        pooled,
        "repeat flushes must reuse the persistent workers"
    );

    // Shrinking the budget to one retires the pool immediately.
    net.set_config(net.config().workers(1));
    assert_eq!(
        thread_count().unwrap(),
        baseline,
        "a one-worker budget must retire (join) the pool's threads"
    );

    // Growing it again re-creates the pool lazily at the next flush...
    net.set_config(net.config().workers(2));
    flush_once(&mut net);
    let regrown = thread_count().unwrap();
    assert_eq!(regrown, baseline + 2usize.min(cores).saturating_sub(1));

    // ...and dropping the network joins everything.
    drop(net);
    assert_eq!(
        thread_count().unwrap(),
        baseline,
        "dropping the network must join every pool thread"
    );
}
