//! Streaming simulation sessions: feed arrivals to a live network instead of
//! scripting them up front.
//!
//! [`replay`](mod@crate::replay) executes a *fixed* script; this module is the
//! open-ended counterpart. A [`StreamSession`] owns a [`Network`] plus its
//! [`Scheduler`] and accepts flow arrivals one at a time — from a socket, a
//! trace file being tailed, or an interactive prompt — while the simulation
//! is running. Between arrivals the caller advances virtual time with
//! [`StreamSession::advance_to`] or drains it with
//! [`StreamSession::quiesce`], collecting the [`FlowDelivery`] records
//! (predicted completion times) as they fall out.
//!
//! Sessions checkpoint and restore through the [`checkpoint`](mod@crate::checkpoint)
//! envelope: [`StreamSession::save`] writes the full session (network, event
//! queue, delivery log) and [`StreamSession::load`] resumes it
//! bit-identically, so a long-running prediction service can be stopped and
//! restarted without perturbing a single timestamp. The `simd` service binary
//! in `crates/bench` is a thin JSONL front end over exactly this API.
//!
//! ```
//! use netsim::{cluster_bordeplage, HostSpec, SharingMode, StreamSession};
//! use p2p_common::{DataSize, SimTime};
//!
//! let topo = cluster_bordeplage(4, HostSpec::default());
//! let mut s = StreamSession::new(topo.platform, SharingMode::MaxMinFair);
//!
//! // Two arrivals injected while the clock runs, not scripted in advance.
//! s.inject(SimTime::ZERO, topo.hosts[0], topo.hosts[1], DataSize::from_bytes(125_000), 1)
//!     .unwrap();
//! let first = s.quiesce();
//! s.inject(s.now(), topo.hosts[2], topo.hosts[3], DataSize::from_bytes(125_000), 2)
//!     .unwrap();
//! let second = s.quiesce();
//!
//! assert_eq!(first.len(), 1);
//! assert_eq!(second.len(), 1);
//! assert!(second[0].completed_at > first[0].completed_at);
//! ```

use crate::checkpoint::{self, CheckpointError};
use crate::event::Scheduler;
use crate::network::{
    FlowDelivery, NetEvent, NetWorldEvent, Network, RebalanceEngine, SharingMode,
};
use crate::platform::Platform;
use crate::pool::EngineConfig;
use p2p_common::{DataSize, HostId, SimTime};
use serde::{DeError, Deserialize, Serialize, Value};
use std::path::Path;

/// Event type of a [`StreamSession`]: internal network bookkeeping plus
/// arrivals injected for a future instant.
///
/// Arrivals are events (not immediate `start_flow` calls) so that a caller
/// may inject them out of order — the scheduler sorts them back into
/// timestamp order, and a checkpoint taken before an arrival fires captures
/// it like any other pending event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StreamEvent {
    /// A network-internal event (completion, rebalance, compaction...).
    Net(NetEvent),
    /// A flow arrival scheduled via [`StreamSession::inject`].
    Arrive {
        /// Source host.
        src: HostId,
        /// Destination host.
        dst: HostId,
        /// Payload size.
        size: DataSize,
        /// Caller token, echoed in the resulting [`FlowDelivery`].
        token: u64,
    },
}

impl From<NetEvent> for StreamEvent {
    fn from(e: NetEvent) -> Self {
        StreamEvent::Net(e)
    }
}

impl NetWorldEvent for StreamEvent {
    fn as_net_event(&self) -> Option<NetEvent> {
        match self {
            StreamEvent::Net(e) => Some(*e),
            StreamEvent::Arrive { .. } => None,
        }
    }
}

/// A live, checkpointable simulation accepting streamed arrivals.
///
/// See the [module docs](self) for the intended shape; the key invariant is
/// that a session is always *at an event boundary* between public calls, so
/// [`StreamSession::save`] may be called at any point and the restored
/// session continues bit-identically.
pub struct StreamSession {
    net: Network,
    sched: Scheduler<StreamEvent>,
    deliveries: Vec<FlowDelivery>,
}

impl StreamSession {
    /// Create a session over `platform` with the default (warm-start)
    /// rebalance engine and default [`EngineConfig`].
    pub fn new(platform: Platform, mode: SharingMode) -> Self {
        Self::with_config(platform, mode, EngineConfig::default())
    }

    /// Create a session with an explicit rebalance engine (and that
    /// engine's default threading configuration).
    pub fn with_engine(platform: Platform, mode: SharingMode, engine: RebalanceEngine) -> Self {
        Self::with_config(platform, mode, EngineConfig::new(engine))
    }

    /// Create a session with a full [`EngineConfig`] — engine, worker
    /// budget, parallel threshold and split granularity.
    pub fn with_config(platform: Platform, mode: SharingMode, config: EngineConfig) -> Self {
        StreamSession {
            net: Network::with_config(platform, mode, config),
            sched: Scheduler::new(),
            deliveries: Vec::new(),
        }
    }

    /// The session's virtual clock.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Events still queued (arrivals not yet fired plus network bookkeeping).
    pub fn pending(&self) -> usize {
        self.sched.pending()
    }

    /// Flows currently in flight in the network.
    pub fn flows_in_flight(&self) -> usize {
        self.net.flows_in_flight()
    }

    /// The underlying network (stats, footprint, topology).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Schedule a flow arrival at virtual time `at`.
    ///
    /// Fails if `at` is already in the past (the clock only moves forward)
    /// or if either endpoint is not a host of the platform.
    pub fn inject(
        &mut self,
        at: SimTime,
        src: HostId,
        dst: HostId,
        size: DataSize,
        token: u64,
    ) -> Result<(), StreamError> {
        if at < self.sched.now() {
            return Err(StreamError::PastArrival {
                at,
                now: self.sched.now(),
            });
        }
        let hosts = self.net.platform().host_count();
        for h in [src, dst] {
            if h.index() >= hosts {
                return Err(StreamError::UnknownHost { host: h, hosts });
            }
        }
        self.sched.schedule_at(
            at,
            StreamEvent::Arrive {
                src,
                dst,
                size,
                token,
            },
        );
        Ok(())
    }

    /// Run the simulation up to and including virtual time `limit`. Returns
    /// the deliveries that completed in the advanced window, in completion
    /// order.
    pub fn advance_to(&mut self, limit: SimTime) -> Vec<DeliveryRecord> {
        self.run(Some(limit))
    }

    /// Run until no events remain (all injected arrivals delivered).
    pub fn quiesce(&mut self) -> Vec<DeliveryRecord> {
        self.run(None)
    }

    fn run(&mut self, limit: Option<SimTime>) -> Vec<DeliveryRecord> {
        let mut out = Vec::new();
        while let Some(next) = self.sched.peek_time() {
            if let Some(l) = limit {
                if next > l {
                    break;
                }
            }
            let (_, ev) = self.sched.pop().expect("peeked event must exist");
            let deliveries = match ev {
                StreamEvent::Net(ne) => self.net.on_event(&mut self.sched, ne),
                StreamEvent::Arrive {
                    src,
                    dst,
                    size,
                    token,
                } => {
                    self.net.start_flow(&mut self.sched, src, dst, size, token);
                    Vec::new()
                }
            };
            let at = self.sched.now();
            for d in deliveries {
                out.push(DeliveryRecord {
                    token: d.token,
                    src: d.src,
                    dst: d.dst,
                    size: d.size,
                    completed_at: at,
                });
                self.deliveries.push(d);
            }
        }
        out
    }

    /// Every delivery the session has produced since creation (or restore).
    pub fn deliveries(&self) -> &[FlowDelivery] {
        &self.deliveries
    }

    /// Encode the full session into a checkpoint envelope [`Value`].
    pub fn checkpoint(&self) -> Value {
        let world = Value::Object(vec![(
            "deliveries".to_owned(),
            Value::Array(self.deliveries.iter().map(delivery_to_value).collect()),
        )]);
        checkpoint::encode(&self.net, &self.sched, world)
    }

    /// Rebuild a session from an envelope produced by
    /// [`StreamSession::checkpoint`].
    pub fn restore(v: &Value) -> Result<Self, CheckpointError> {
        let restored = checkpoint::decode::<StreamEvent>(v)?;
        let deliveries = match restored.world.as_object() {
            Some(fields) => {
                let arr = fields
                    .iter()
                    .find(|(k, _)| k == "deliveries")
                    .and_then(|(_, v)| v.as_array())
                    .ok_or_else(|| {
                        CheckpointError::Format(
                            "stream session world slot lacks a `deliveries` array".to_owned(),
                        )
                    })?;
                arr.iter()
                    .map(delivery_from_value)
                    .collect::<Result<Vec<_>, _>>()?
            }
            None => Vec::new(),
        };
        Ok(StreamSession {
            net: restored.network,
            sched: restored.scheduler,
            deliveries,
        })
    }

    /// Write the session to a checkpoint file.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let json = serde_json::to_string(&self.checkpoint())
            .map_err(|e| CheckpointError::Format(e.to_string()))?;
        std::fs::write(path, json)?;
        Ok(())
    }

    /// Resume a session from a file written by [`StreamSession::save`].
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let s = std::fs::read_to_string(path)?;
        let v: Value =
            serde_json::from_str(&s).map_err(|e| CheckpointError::Format(e.to_string()))?;
        Self::restore(&v)
    }
}

/// A completed transfer with its predicted completion time — what the
/// streaming front end reports back per arrival.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeliveryRecord {
    /// Caller token from [`StreamSession::inject`].
    pub token: u64,
    /// Source host.
    pub src: HostId,
    /// Destination host.
    pub dst: HostId,
    /// Payload size.
    pub size: DataSize,
    /// Virtual time at which the last byte arrived.
    pub completed_at: SimTime,
}

/// Why an arrival could not be injected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StreamError {
    /// The requested arrival time is before the session clock.
    PastArrival {
        /// Requested arrival instant.
        at: SimTime,
        /// Current session clock.
        now: SimTime,
    },
    /// An endpoint is not a host of the platform.
    UnknownHost {
        /// The offending id.
        host: HostId,
        /// Number of hosts in the platform.
        hosts: usize,
    },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::PastArrival { at, now } => write!(
                f,
                "arrival at {:?} predates the session clock {:?}",
                at, now
            ),
            StreamError::UnknownHost { host, hosts } => {
                write!(f, "{host} is not a host (platform has {hosts})")
            }
        }
    }
}

impl std::error::Error for StreamError {}

fn delivery_to_value(d: &FlowDelivery) -> Value {
    Value::Object(vec![
        ("flow".to_owned(), d.flow.to_value()),
        ("token".to_owned(), d.token.to_value()),
        ("src".to_owned(), d.src.to_value()),
        ("dst".to_owned(), d.dst.to_value()),
        ("size".to_owned(), d.size.to_value()),
    ])
}

fn delivery_from_value(v: &Value) -> Result<FlowDelivery, DeError> {
    let fields = v
        .as_object()
        .ok_or_else(|| DeError::expected("object", "FlowDelivery", v))?;
    Ok(FlowDelivery {
        flow: serde::field(fields, "flow", "FlowDelivery")?,
        token: serde::field(fields, "token", "FlowDelivery")?,
        src: serde::field(fields, "src", "FlowDelivery")?,
        dst: serde::field(fields, "dst", "FlowDelivery")?,
        size: serde::field(fields, "size", "FlowDelivery")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::HostSpec;
    use crate::topology::cluster_bordeplage;

    fn session(engine: RebalanceEngine) -> (StreamSession, Vec<HostId>) {
        let topo = cluster_bordeplage(8, HostSpec::default());
        (
            StreamSession::with_engine(topo.platform, SharingMode::MaxMinFair, engine),
            topo.hosts,
        )
    }

    #[test]
    fn streamed_arrivals_match_scripted_start_flows() {
        // The same arrival pattern fed through the streaming session and
        // through direct start_flow calls must produce identical completion
        // times.
        let (mut s, hosts) = session(RebalanceEngine::default());
        for i in 0..6usize {
            s.inject(
                SimTime::from_millis(10 * i as u64),
                hosts[i % 4],
                hosts[4 + (i % 4)],
                DataSize::from_bytes(2_000_000),
                i as u64,
            )
            .unwrap();
        }
        let streamed = s.quiesce();
        assert_eq!(streamed.len(), 6);

        // Reference: direct scripted run over an identical network.
        let topo = cluster_bordeplage(8, HostSpec::default());
        let mut net = Network::new(topo.platform, SharingMode::MaxMinFair);
        let mut sched: Scheduler<StreamEvent> = Scheduler::new();
        for i in 0..6usize {
            sched.schedule_at(
                SimTime::from_millis(10 * i as u64),
                StreamEvent::Arrive {
                    src: topo.hosts[i % 4],
                    dst: topo.hosts[4 + (i % 4)],
                    size: DataSize::from_bytes(2_000_000),
                    token: i as u64,
                },
            );
        }
        let mut reference = Vec::new();
        while let Some((_, ev)) = sched.pop() {
            match ev {
                StreamEvent::Net(ne) => {
                    for d in net.on_event(&mut sched, ne) {
                        reference.push((d.token, sched.now()));
                    }
                }
                StreamEvent::Arrive {
                    src,
                    dst,
                    size,
                    token,
                } => {
                    net.start_flow(&mut sched, src, dst, size, token);
                }
            }
        }
        let got: Vec<_> = streamed.iter().map(|d| (d.token, d.completed_at)).collect();
        assert_eq!(got, reference);
    }

    #[test]
    fn save_and_load_resume_bit_identically() {
        let (mut a, hosts) = session(RebalanceEngine::default());
        let (mut b, _) = session(RebalanceEngine::default());
        for s in [&mut a, &mut b] {
            for i in 0..8usize {
                s.inject(
                    SimTime::from_millis(3 * i as u64),
                    hosts[i % 8],
                    hosts[(i + 3) % 8],
                    DataSize::from_bytes(1_500_000 + 10_000 * i as u64),
                    i as u64,
                )
                .unwrap();
            }
        }
        // Advance both part-way, checkpoint/restore one, then drain both.
        let cut = SimTime::from_millis(40);
        let head_a = a.advance_to(cut);
        let head_b = b.advance_to(cut);
        assert_eq!(head_a, head_b);

        let dir = std::env::temp_dir().join("netsim-stream-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("session.ckpt");
        a.save(&path).unwrap();
        let mut restored = StreamSession::load(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(restored.now(), b.now());
        assert_eq!(restored.pending(), b.pending());
        assert_eq!(restored.deliveries(), b.deliveries());

        // Post-restore injections land identically too.
        for s in [&mut restored, &mut b] {
            let at = s.now();
            s.inject(at, hosts[0], hosts[7], DataSize::from_bytes(777_000), 99)
                .unwrap();
        }
        let tail_r = restored.quiesce();
        let tail_b = b.quiesce();
        assert_eq!(tail_r, tail_b);
    }

    #[test]
    fn inject_rejects_past_times_and_foreign_hosts() {
        let (mut s, hosts) = session(RebalanceEngine::default());
        s.inject(
            SimTime::from_millis(5),
            hosts[0],
            hosts[1],
            DataSize::from_bytes(1_000),
            0,
        )
        .unwrap();
        s.quiesce();
        assert!(matches!(
            s.inject(
                SimTime::ZERO,
                hosts[0],
                hosts[1],
                DataSize::from_bytes(1),
                1
            ),
            Err(StreamError::PastArrival { .. })
        ));
        assert!(matches!(
            s.inject(
                s.now(),
                HostId::new(10_000),
                hosts[1],
                DataSize::from_bytes(1),
                2
            ),
            Err(StreamError::UnknownHost { .. })
        ));
    }
}
