//! Versioned checkpoint envelope: pause a running simulation to disk and
//! restore it bit-identically.
//!
//! A checkpoint captures the complete [`Network`] state (flow slab, link
//! incidence, union–find components, warm-start fill records — see the
//! `Serialize` impl on [`Network`]) plus the [`Scheduler`]'s clock, counters
//! and pending events, wrapped in a self-describing envelope:
//!
//! ```json
//! {
//!   "format": "netsim-checkpoint",
//!   "version": 2,
//!   "network": { ... },
//!   "scheduler": { ... },
//!   "world": ...
//! }
//! ```
//!
//! The `world` slot is an opaque [`Value`] for whatever state the embedding
//! world carries beyond the network — replaying process scripts, fault
//! plans, RNG streams. The envelope does not interpret it; it only
//! round-trips it, so one file checkpoints the whole simulation.
//!
//! **Restore-determinism contract.** A simulation restored from a checkpoint
//! taken at an event boundary produces the same deliveries at the same
//! timestamps as the uninterrupted run — the restore-identity suites
//! (`tests/checkpoint.rs`, the workspace `checkpoint_restore` test) enforce
//! this across all five [`crate::RebalanceEngine`]s. The on-disk layout and
//! the invariants behind that guarantee are specified field by field in
//! `docs/CHECKPOINT.md`.
//!
//! Compatibility is strict: [`decode`] rejects any envelope whose `format`
//! or `version` does not match this build ([`FORMAT`], [`VERSION`]) rather
//! than guessing at field migrations — a checkpoint is a precise bit-level
//! contract, not a config file.

use crate::event::Scheduler;
use crate::network::Network;
use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;
use std::path::Path;

/// The envelope's `format` discriminator.
pub const FORMAT: &str = "netsim-checkpoint";

/// The envelope layout version this build reads and writes. Bumped on any
/// change to the encoded state layout; see `docs/CHECKPOINT.md` for the
/// versioning and invalidation rules.
///
/// History: v1 encoded the threading knobs as separate `engine` /
/// `shard_threads` / `parallel_min_flows` network fields; v2 replaced them
/// with the unified `engine_config` object ([`crate::EngineConfig`]) and
/// added the pool counters to `flush_stats` (`park_wakeups` always encodes
/// as 0 — it is an OS-scheduling artifact, not simulation state).
pub const VERSION: u64 = 2;

/// Why a checkpoint could not be written or read back.
#[derive(Debug)]
pub enum CheckpointError {
    /// The underlying file could not be read or written.
    Io(std::io::Error),
    /// The bytes were not a checkpoint this build understands: malformed
    /// JSON, a foreign `format`, a mismatched `version`, or state fields
    /// that fail validation (the message says which).
    Format(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Format(m) => write!(f, "invalid checkpoint: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<DeError> for CheckpointError {
    fn from(e: DeError) -> Self {
        CheckpointError::Format(e.to_string())
    }
}

/// A decoded checkpoint: the simulation state plus the embedding world's
/// opaque extra state, if the writer stored any.
pub struct Restored<E> {
    /// The network, exactly as checkpointed (routes re-derived).
    pub network: Network,
    /// The event queue: clock, counters and every pending event.
    pub scheduler: Scheduler<E>,
    /// The writer's `world` slot ([`Value::Null`] when none was stored).
    pub world: Value,
}

/// Encode a network + scheduler pair into a versioned envelope, with an
/// opaque `world` slot for the embedding layer's own state (pass
/// [`Value::Null`] if there is none).
pub fn encode<E: Serialize>(net: &Network, sched: &Scheduler<E>, world: Value) -> Value {
    Value::Object(vec![
        ("format".to_owned(), FORMAT.to_owned().to_value()),
        ("version".to_owned(), VERSION.to_value()),
        ("network".to_owned(), net.to_value()),
        ("scheduler".to_owned(), sched.to_value()),
        ("world".to_owned(), world),
    ])
}

/// Decode an envelope produced by [`encode`], verifying `format` and
/// `version` before touching any state field.
pub fn decode<E: Deserialize>(v: &Value) -> Result<Restored<E>, CheckpointError> {
    let fields = v
        .as_object()
        .ok_or_else(|| CheckpointError::Format("envelope is not an object".to_owned()))?;
    let format: String = serde::field(fields, "format", "checkpoint")?;
    if format != FORMAT {
        return Err(CheckpointError::Format(format!(
            "format is {format:?}, expected {FORMAT:?}"
        )));
    }
    let version: u64 = serde::field(fields, "version", "checkpoint")?;
    if version != VERSION {
        return Err(CheckpointError::Format(format!(
            "version {version} is not supported by this build (expected {VERSION})"
        )));
    }
    let network: Network = serde::field(fields, "network", "checkpoint")?;
    let scheduler: Scheduler<E> = serde::field(fields, "scheduler", "checkpoint")?;
    let world = fields
        .iter()
        .find(|(k, _)| k == "world")
        .map(|(_, v)| v.clone())
        .unwrap_or(Value::Null);
    Ok(Restored {
        network,
        scheduler,
        world,
    })
}

/// Serialize an envelope to a JSON string (one line, stable field order —
/// two checkpoints of identical state compare byte-equal).
pub fn to_json<E: Serialize>(
    net: &Network,
    sched: &Scheduler<E>,
    world: Value,
) -> Result<String, CheckpointError> {
    serde_json::to_string(&encode(net, sched, world))
        .map_err(|e| CheckpointError::Format(e.to_string()))
}

/// Parse and decode a JSON checkpoint produced by [`to_json`].
pub fn from_json<E: Deserialize>(s: &str) -> Result<Restored<E>, CheckpointError> {
    let v: Value = serde_json::from_str(s).map_err(|e| CheckpointError::Format(e.to_string()))?;
    decode(&v)
}

/// Write a checkpoint file.
///
/// ```
/// use netsim::{checkpoint, cluster_bordeplage, HostSpec, NetEvent, Network, Scheduler,
///              SharingMode};
/// use p2p_common::DataSize;
/// use serde::Value;
///
/// let topo = cluster_bordeplage(4, HostSpec::default());
/// let mut net = Network::new(topo.platform.clone(), SharingMode::MaxMinFair);
/// let mut sched: Scheduler<NetEvent> = Scheduler::new();
/// net.start_flow(&mut sched, topo.hosts[0], topo.hosts[1], DataSize::from_bytes(125_000), 7);
///
/// let dir = std::env::temp_dir().join("netsim-checkpoint-doctest");
/// std::fs::create_dir_all(&dir).unwrap();
/// let path = dir.join("sim.ckpt");
/// checkpoint::save(&path, &net, &sched, Value::Null).unwrap();
///
/// let restored = checkpoint::load::<NetEvent>(&path).unwrap();
/// assert_eq!(restored.scheduler.now(), sched.now());
/// assert_eq!(restored.scheduler.pending(), sched.pending());
/// assert_eq!(restored.network.flows_in_flight(), 1);
/// # std::fs::remove_file(&path).ok();
/// ```
pub fn save<E: Serialize>(
    path: &Path,
    net: &Network,
    sched: &Scheduler<E>,
    world: Value,
) -> Result<(), CheckpointError> {
    let json = to_json(net, sched, world)?;
    std::fs::write(path, json)?;
    Ok(())
}

/// Read a checkpoint file written by [`save`].
pub fn load<E: Deserialize>(path: &Path) -> Result<Restored<E>, CheckpointError> {
    let s = std::fs::read_to_string(path)?;
    from_json(&s)
}
