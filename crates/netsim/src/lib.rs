//! # netsim — a flow-level discrete-event network simulator
//!
//! This crate is the reproduction's substitute for the SimGrid framework the
//! paper uses for trace-based simulation (paper §III-D: "From Simgrid
//! framework, we use the MSG module for replaying trace files based on a
//! deployment platform defined by us").
//!
//! It provides:
//!
//! * [`event`] — a deterministic discrete-event [`Scheduler`] and the
//!   [`World`] trait that higher layers implement.
//! * [`platform`] — the platform description: hosts, routers, full-duplex
//!   links with bandwidth and latency, and shortest-path routing, mirroring
//!   SimGrid's platform files.
//! * [`network`] — the flow-level communication model. Two sharing modes are
//!   available: the classic *bottleneck* model (`T = Σ latency + size /
//!   min-bandwidth`, SimGrid MSG's default analytic assumption) and a
//!   *max–min fair* bandwidth-sharing model for congested scenarios.
//! * [`pool`](mod@pool) — the persistent pinned worker pool behind the
//!   parallel engines and [`EngineConfig`], the unified, serializable
//!   threading configuration (engine choice, worker budget, parallel
//!   threshold, split granularity).
//! * [`topology`] — builders for the three platforms of the paper's
//!   evaluation: the Grid'5000 Bordeplage cluster (Stage-1), the xDSL Daisy
//!   topology of Fig. 8 (Stage-2A) and the campus LAN (Stage-2B).
//! * [`replay`](mod@replay) — the MSG-like trace replay engine: per-process scripts of
//!   compute / send / receive operations are executed against a platform and
//!   yield the simulated makespan. dPerf converts its trace files into these
//!   scripts to obtain `t_predicted`.
//! * [`baseline`] — the pre-refactor from-scratch max–min engine, kept as a
//!   differential-testing and benchmarking baseline for the incremental
//!   engine in [`network`].
//! * [`checkpoint`](mod@checkpoint) — versioned checkpoint envelope: pause a
//!   running simulation to disk and restore it bit-identically (format spec
//!   in `docs/CHECKPOINT.md`).
//! * [`stream`](mod@stream) — streaming sessions: feed arrivals to a live
//!   network one at a time instead of scripting them up front, with
//!   checkpoint/resume; the front end behind the `simd` prediction service.
//!
//! # Example: two flows over a shared access link
//!
//! A world embeds the network's events in its own event type (via
//! [`NetWorldEvent`]) and feeds them back from its [`World::handle`]:
//!
//! ```
//! use netsim::{
//!     run_world, HostSpec, LinkSpec, NetEvent, NetWorldEvent, Network, PlatformBuilder,
//!     Scheduler, SharingMode, World,
//! };
//! use p2p_common::{Bandwidth, DataSize, HostId, SimDuration};
//!
//! #[derive(Debug, Clone, Copy)]
//! struct Ev(NetEvent);
//! impl From<NetEvent> for Ev {
//!     fn from(e: NetEvent) -> Self {
//!         Ev(e)
//!     }
//! }
//! impl NetWorldEvent for Ev {
//!     fn as_net_event(&self) -> Option<NetEvent> {
//!         Some(self.0)
//!     }
//! }
//!
//! struct Sim {
//!     net: Network,
//!     delivered: u64,
//! }
//! impl World for Sim {
//!     type Event = Ev;
//!     fn handle(&mut self, sched: &mut Scheduler<Ev>, ev: Ev) {
//!         self.delivered += self.net.on_event(sched, ev.0).len() as u64;
//!     }
//! }
//!
//! // Three hosts on one switch, 100 Mbps access links.
//! let mut b = PlatformBuilder::new();
//! let sw = b.add_router("sw");
//! let spec = LinkSpec::new(Bandwidth::from_mbps(100.0), SimDuration::from_micros(100));
//! for i in 0..3 {
//!     let h = b.add_host(format!("h{i}"), format!("10.0.0.{}", i + 1).parse().unwrap(),
//!                        HostSpec::default());
//!     b.add_host_link(format!("l{i}"), h, sw, spec);
//! }
//! let mut sim = Sim { net: Network::new(b.build(), SharingMode::MaxMinFair), delivered: 0 };
//! let mut sched = Scheduler::new();
//!
//! // Both flows funnel into h0, so they share h0's access link max–min fairly.
//! let size = DataSize::from_bytes(1_250_000); // 100 ms alone
//! sim.net.start_flow(&mut sched, HostId::new(1), HostId::new(0), size, 1);
//! sim.net.start_flow(&mut sched, HostId::new(2), HostId::new(0), size, 2);
//! let end = run_world(&mut sim, &mut sched, None);
//!
//! assert_eq!(sim.delivered, 2);
//! // Sharing the 100 Mbps ingress, the pair needs ~200 ms (plus latency).
//! assert!(end.as_secs_f64() > 0.19 && end.as_secs_f64() < 0.22);
//! ```

#![warn(missing_docs)]

pub mod baseline;
pub mod checkpoint;
pub(crate) mod component;
pub mod event;
pub(crate) mod fairshare;
pub mod network;
pub mod platform;
pub mod pool;
pub mod replay;
pub mod stream;
pub mod topology;

pub use event::{run_world, Scheduler, World};
pub use network::{
    CompactionPolicy, FlowDelivery, FlushStats, MemoryFootprint, NetEvent, NetStats, NetWorldEvent,
    Network, RebalanceEngine, SharingMode,
};
pub use platform::{HostSpec, Link, LinkSpec, Node, NodeKind, Platform, PlatformBuilder, Route};
pub use pool::EngineConfig;
pub use replay::{
    replay, ProcessScript, ProtocolCosts, ReplayConfig, ReplayOp, ReplayResult, ReplaySession,
};
pub use stream::{DeliveryRecord, StreamError, StreamEvent, StreamSession};
pub use topology::{
    cluster_bordeplage, daisy_xdsl, dslam_forest, dslam_forest_mirrored, isp_hierarchy, lan,
    IspHierarchyParams, PlacementPolicy, Topology, TopologyKind,
};
