//! # netsim — a flow-level discrete-event network simulator
//!
//! This crate is the reproduction's substitute for the SimGrid framework the
//! paper uses for trace-based simulation (paper §III-D: "From Simgrid
//! framework, we use the MSG module for replaying trace files based on a
//! deployment platform defined by us").
//!
//! It provides:
//!
//! * [`event`] — a deterministic discrete-event [`Scheduler`](event::Scheduler)
//!   and the [`World`](event::World) trait that higher layers implement.
//! * [`platform`] — the platform description: hosts, routers, full-duplex
//!   links with bandwidth and latency, and shortest-path routing, mirroring
//!   SimGrid's platform files.
//! * [`network`] — the flow-level communication model. Two sharing modes are
//!   available: the classic *bottleneck* model (`T = Σ latency + size /
//!   min-bandwidth`, SimGrid MSG's default analytic assumption) and a
//!   *max–min fair* bandwidth-sharing model for congested scenarios.
//! * [`topology`] — builders for the three platforms of the paper's
//!   evaluation: the Grid'5000 Bordeplage cluster (Stage-1), the xDSL Daisy
//!   topology of Fig. 8 (Stage-2A) and the campus LAN (Stage-2B).
//! * [`replay`] — the MSG-like trace replay engine: per-process scripts of
//!   compute / send / receive operations are executed against a platform and
//!   yield the simulated makespan. dPerf converts its trace files into these
//!   scripts to obtain `t_predicted`.
//! * [`baseline`] — the pre-refactor from-scratch max–min engine, kept as a
//!   differential-testing and benchmarking baseline for the incremental
//!   engine in [`network`].

pub mod baseline;
pub mod event;
pub mod network;
pub mod platform;
pub mod replay;
pub mod topology;

pub use event::{run_world, Scheduler, World};
pub use network::{FlowDelivery, NetEvent, NetStats, Network, SharingMode};
pub use platform::{HostSpec, Link, LinkSpec, Node, NodeKind, Platform, PlatformBuilder, Route};
pub use replay::{replay, ProcessScript, ProtocolCosts, ReplayConfig, ReplayOp, ReplayResult};
pub use topology::{cluster_bordeplage, daisy_xdsl, lan, PlacementPolicy, Topology, TopologyKind};
