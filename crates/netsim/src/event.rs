//! Discrete-event scheduling core.
//!
//! The simulator is organised as a *world* (all mutable simulation state:
//! network flows, overlay nodes, replaying processes, …) plus a [`Scheduler`]
//! holding the pending events of that world. Keeping the two separate avoids
//! borrow conflicts: a world handler receives `&mut self` and `&mut
//! Scheduler<E>` and can freely schedule follow-up events while mutating its
//! own state.
//!
//! Events with equal timestamps are delivered in scheduling order (FIFO), so a
//! simulation is a deterministic function of its inputs. The network layer
//! leans on that guarantee for its batched rebalances: a sentinel scheduled
//! *at the current instant* is delivered after every event of the same
//! instant that was already pending, which is exactly the point at which the
//! whole batch can be processed at once.
//!
//! # Memory-lean storage: arena + calendar queue
//!
//! Events are kept once, in a typed arena (`slots` + free list), and every
//! ordering structure holds only 24-byte `(time, seq, slot)` records. The
//! records are organised in three tiers, totally ordered by `(time, seq)`:
//!
//! 1. **`cur`** — the sorted run currently being drained (one promoted
//!    calendar bucket, plus any entry scheduled below the run's ceiling,
//!    inserted in place to preserve FIFO order).
//! 2. **`buckets`** — a calendar-queue window of `NUM_BUCKETS` buckets of
//!    width `width` starting at `base`. Scheduling into the window is an
//!    O(1) push; a bucket is sorted only when it is promoted to `cur`. This
//!    is the completion-heavy fast path: no per-event heap sift, and the
//!    sort touches a small, cache-resident chunk.
//! 3. **`far`** — a binary min-heap for everything beyond the window (and
//!    the *sparse-horizon fallback*: while fewer than `CALENDAR_MIN`
//!    records are pending, the calendar is bypassed entirely and events pop
//!    in plain heap order, so tiny simulations never pay for bucketing).
//!
//! When the window drains, a new one is built from `far`: the next
//! `WINDOW_TARGET` records (by order statistic, robust against far-future
//! outliers such as ETA-capped bottleneck completions) choose the span, the
//! width is `span / NUM_BUCKETS`, and the in-window records are scattered in
//! O(n). Pop order is the pure `(time, seq)` minimum across the tiers, so
//! the structure is observably identical to the plain `BinaryHeap` it
//! replaced — the five-way differential suite holds verbatim.

use p2p_common::{SimDuration, SimTime};
use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::BinaryHeap;

/// Number of buckets in one calendar window.
const NUM_BUCKETS: usize = 256;
/// Below this many pending records the calendar is bypassed and `far` serves
/// pops directly (heap order for sparse horizons).
const CALENDAR_MIN: usize = 512;
/// Records a window rebuild aims to ingest; bounds both bucket occupancy
/// (`WINDOW_TARGET / NUM_BUCKETS` on average) and rebuild frequency.
const WINDOW_TARGET: usize = 64 * 1024;

/// A 24-byte ordering record: where an event sits in time and in the arena.
#[derive(Clone, Copy, PartialEq, Eq)]
struct Rec {
    time: SimTime,
    seq: u64,
    slot: u32,
}

impl Rec {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

/// `Rec` wrapper giving `BinaryHeap` (a max-heap) min-heap behaviour.
#[derive(Clone, Copy, PartialEq, Eq)]
struct FarRec(Rec);

impl PartialOrd for FarRec {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FarRec {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.0.key().cmp(&self.0.key())
    }
}

/// The pending-event queue and simulated clock of one simulation.
///
/// ```
/// use netsim::Scheduler;
/// use p2p_common::{SimDuration, SimTime};
///
/// let mut sched: Scheduler<&str> = Scheduler::new();
/// sched.schedule_at(SimTime::from_millis(20), "late");
/// sched.schedule_in(SimDuration::from_millis(10), "early");
/// sched.schedule_at(SimTime::from_millis(20), "late-but-fifo-second");
///
/// // Events pop in (time, scheduling order); the clock follows them.
/// assert_eq!(sched.pop(), Some((SimTime::from_millis(10), "early")));
/// assert_eq!(sched.pop(), Some((SimTime::from_millis(20), "late")));
/// assert_eq!(sched.pop(), Some((SimTime::from_millis(20), "late-but-fifo-second")));
/// assert_eq!(sched.now(), SimTime::from_millis(20));
/// assert!(sched.is_empty());
/// ```
pub struct Scheduler<E> {
    now: SimTime,
    seq: u64,
    delivered: u64,
    /// Pending entries known to be stale (their producer superseded them).
    /// Maintained by producers through [`Scheduler::mark_dead`] /
    /// [`Scheduler::resolve_dead`]; makes the queue's live/dead ratio
    /// observable so callers can decide when to [`Scheduler::compact_pending`]
    /// (the netsim `Network` does so automatically, driven by its
    /// `CompactionPolicy`).
    dead: u64,
    /// Number of [`Scheduler::compact_pending`] passes run.
    compactions: u64,
    /// Total entries removed by those passes.
    compacted_entries: u64,

    // --- typed arena: events live here exactly once ---
    slots: Vec<Option<E>>,
    free: Vec<u32>,

    // --- tier 1: the sorted run being drained ---
    cur: Vec<Rec>,
    cur_pos: usize,
    /// Exclusive upper bound of `cur`: a new entry with `time < cur_ceiling`
    /// is insert-sorted into the run (preserving FIFO among equal times).
    /// `SimTime::ZERO` doubles as the "no run" sentinel — no schedulable
    /// time is below zero, so the collision is harmless.
    cur_ceiling: SimTime,

    // --- tier 2: the calendar window ---
    buckets: Vec<Vec<Rec>>,
    base: SimTime,
    /// Bucket width in nanoseconds; `0` means the window is inactive.
    width: u64,
    /// Exclusive end of the window (`base + NUM_BUCKETS * width`, clamped).
    window_end: SimTime,
    /// First bucket not yet promoted to `cur`.
    next_bucket: usize,
    /// Total records currently sitting in `buckets`.
    in_buckets: usize,

    // --- tier 3: beyond the window / sparse fallback ---
    far: BinaryHeap<FarRec>,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// An empty scheduler at time zero.
    pub fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            seq: 0,
            delivered: 0,
            dead: 0,
            compactions: 0,
            compacted_entries: 0,
            slots: Vec::new(),
            free: Vec::new(),
            cur: Vec::new(),
            cur_pos: 0,
            cur_ceiling: SimTime::ZERO,
            buckets: Vec::new(),
            base: SimTime::ZERO,
            width: 0,
            window_end: SimTime::ZERO,
            next_bucket: 0,
            in_buckets: 0,
            far: BinaryHeap::new(),
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting to fire.
    pub fn pending(&self) -> usize {
        (self.cur.len() - self.cur_pos) + self.in_buckets + self.far.len()
    }

    /// Total number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// True if no event is pending.
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    fn alloc(&mut self, event: E) -> u32 {
        match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Some(event);
                i
            }
            None => {
                let i = self.slots.len() as u32;
                self.slots.push(Some(event));
                i
            }
        }
    }

    fn release(&mut self, slot: u32) -> E {
        let e = self.slots[slot as usize]
            .take()
            .expect("arena slot double-freed");
        self.free.push(slot);
        e
    }

    /// Schedule `event` at absolute time `at`. Scheduling in the past is a
    /// logic error and panics (it would silently reorder causality otherwise).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule an event in the past ({} < {})",
            at,
            self.now
        );
        let rec = Rec {
            time: at,
            seq: self.seq,
            slot: self.alloc(event),
        };
        self.seq += 1;
        if at < self.cur_ceiling {
            // Belongs to the run being drained: insert in (time, seq) position
            // among the not-yet-popped suffix. `seq` is larger than every
            // pending record's, so FIFO among equal timestamps is preserved.
            let pos =
                self.cur_pos + self.cur[self.cur_pos..].partition_point(|r| r.key() < rec.key());
            self.cur.insert(pos, rec);
        } else if self.width > 0 && at < self.window_end {
            let b = self.bucket_of(at);
            self.buckets[b].push(rec);
            self.in_buckets += 1;
        } else {
            self.far.push(FarRec(rec));
        }
        self.settle();
    }

    /// Schedule `event` after a delay relative to the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    #[inline]
    fn bucket_of(&self, t: SimTime) -> usize {
        // The window end is clamped at u64::MAX, so the division can nominally
        // land past the last bucket; clamping keeps the record inside the
        // window (bucket ranges only need `start <= every member`, which the
        // floor division guarantees).
        (((t.as_nanos() - self.base.as_nanos()) / self.width) as usize).min(NUM_BUCKETS - 1)
    }

    /// Establish the invariant behind O(1) [`Scheduler::peek_time`]: whenever
    /// anything is pending, `cur[cur_pos]` is the global (time, seq) minimum.
    fn settle(&mut self) {
        loop {
            if self.cur_pos < self.cur.len() {
                return;
            }
            self.cur.clear();
            self.cur_pos = 0;
            if self.in_buckets > 0 {
                self.promote_next_bucket();
                continue;
            }
            // Window fully drained: deactivate it.
            self.width = 0;
            self.window_end = SimTime::ZERO;
            self.next_bucket = 0;
            self.cur_ceiling = SimTime::ZERO;
            if self.far.is_empty() {
                return;
            }
            if self.far.len() >= CALENDAR_MIN {
                self.rebuild_window();
                continue;
            }
            // Sparse horizon: plain heap order, one record at a time.
            let rec = self.far.pop().expect("checked non-empty").0;
            self.cur_ceiling = rec.time;
            self.cur.push(rec);
            return;
        }
    }

    fn promote_next_bucket(&mut self) {
        let b = (self.next_bucket..NUM_BUCKETS)
            .find(|&b| !self.buckets[b].is_empty())
            .expect("in_buckets > 0 implies a non-empty bucket");
        std::mem::swap(&mut self.cur, &mut self.buckets[b]);
        self.in_buckets -= self.cur.len();
        // seq is unique, so the unstable sort is deterministic.
        self.cur.sort_unstable_by_key(Rec::key);
        self.next_bucket = b + 1;
        let end = self.base.as_nanos() as u128 + (b as u128 + 1) * self.width as u128;
        self.cur_ceiling = SimTime::from_nanos(end.min(self.window_end.as_nanos() as u128) as u64);
    }

    /// Build a fresh calendar window from `far`. The span is chosen by order
    /// statistic — the `WINDOW_TARGET`-th smallest key — so a handful of
    /// far-future outliers (e.g. ETA-capped bottleneck completions) cannot
    /// inflate the bucket width and collapse the calendar into one bucket.
    fn rebuild_window(&mut self) {
        if self.buckets.is_empty() {
            self.buckets.resize_with(NUM_BUCKETS, Vec::new);
        }
        let mut v: Vec<Rec> = std::mem::take(&mut self.far)
            .into_vec()
            .into_iter()
            .map(|f| f.0)
            .collect();
        let base = v
            .iter()
            .map(|r| r.time)
            .min()
            .expect("rebuild of empty far");
        let span_end = if v.len() > WINDOW_TARGET {
            let (_, nth, _) = v.select_nth_unstable_by_key(WINDOW_TARGET, Rec::key);
            nth.time
        } else {
            v.iter().map(|r| r.time).max().expect("non-empty")
        };
        // Cover at least one nanosecond so a window of equal timestamps
        // still makes progress.
        let span = (span_end.as_nanos().saturating_sub(base.as_nanos())).max(1);
        self.width = span.div_ceil(NUM_BUCKETS as u64).max(1);
        let end = base.as_nanos() as u128 + NUM_BUCKETS as u128 * self.width as u128;
        self.base = base;
        self.window_end = SimTime::from_nanos(end.min(u64::MAX as u128) as u64);
        self.next_bucket = 0;
        self.cur_ceiling = base;
        let mut beyond = Vec::new();
        for rec in v {
            if rec.time < self.window_end {
                let b = self.bucket_of(rec.time);
                self.buckets[b].push(rec);
                self.in_buckets += 1;
            } else {
                beyond.push(FarRec(rec));
            }
        }
        self.far = BinaryHeap::from(beyond);
    }

    /// Record that one pending entry has become stale (its producer
    /// superseded it and will ignore it when it fires).
    pub fn mark_dead(&mut self) {
        self.dead += 1;
    }

    /// Record that a previously [`mark_dead`](Scheduler::mark_dead)ed entry
    /// has been popped and discarded.
    pub fn resolve_dead(&mut self) {
        self.dead = self.dead.saturating_sub(1);
    }

    /// Number of pending entries known to be stale.
    pub fn dead_pending(&self) -> u64 {
        self.dead
    }

    /// Number of pending entries believed live.
    pub fn live_pending(&self) -> usize {
        (self.pending() as u64).saturating_sub(self.dead) as usize
    }

    /// Drop every pending entry for which `keep` returns false, preserving
    /// the relative order (time, then scheduling order) of the survivors.
    /// Returns the number of entries removed.
    ///
    /// `keep` is treated as the *liveness oracle* for every pending entry, so
    /// the pass resynchronises the dead counter with ground truth: survivors
    /// are live by definition and the counter resets to zero (marks accrued
    /// after the pass count from there). Subtracting the removed count
    /// instead — as this used to do — silently corrupted `live_pending`
    /// whenever the predicate dropped entries that were never
    /// [`mark_dead`](Scheduler::mark_dead)ed, or kept entries that were.
    pub fn compact_pending(&mut self, mut keep: impl FnMut(&E) -> bool) -> usize {
        let mut all: Vec<Rec> = Vec::with_capacity(self.pending());
        all.extend_from_slice(&self.cur[self.cur_pos..]);
        for b in &mut self.buckets {
            all.append(b);
        }
        self.in_buckets = 0;
        all.extend(std::mem::take(&mut self.far).into_iter().map(|f| f.0));
        self.cur.clear();
        self.cur_pos = 0;
        self.cur_ceiling = SimTime::ZERO;
        self.width = 0;
        self.window_end = SimTime::ZERO;
        self.next_bucket = 0;

        let before = all.len();
        let mut survivors = Vec::with_capacity(before);
        for rec in all {
            let live = keep(
                self.slots[rec.slot as usize]
                    .as_ref()
                    .expect("pending record without arena slot"),
            );
            if live {
                survivors.push(FarRec(rec));
            } else {
                drop(self.release(rec.slot));
            }
        }
        let removed = before - survivors.len();
        self.far = BinaryHeap::from(survivors);
        self.dead = 0;
        self.compactions += 1;
        self.compacted_entries += removed as u64;
        self.settle();
        removed
    }

    /// Number of compaction passes run over this queue.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Total entries removed by compaction passes.
    pub fn compacted_entries(&self) -> u64 {
        self.compacted_entries
    }

    /// Approximate heap footprint of the queue in bytes: arena slots, free
    /// list, ordering records across all three tiers (including the calendar
    /// backbone itself). Telemetry for the memory gate; not an
    /// allocator-exact number.
    pub fn footprint_bytes(&self) -> usize {
        use std::mem::size_of;
        self.slots.capacity() * size_of::<Option<E>>()
            + self.free.capacity() * size_of::<u32>()
            + self.cur.capacity() * size_of::<Rec>()
            + self.buckets.capacity() * size_of::<Vec<Rec>>()
            + self
                .buckets
                .iter()
                .map(|b| b.capacity() * size_of::<Rec>())
                .sum::<usize>()
            + self.far.capacity() * size_of::<FarRec>()
    }

    /// Time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.cur.get(self.cur_pos).map(|r| r.time)
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let rec = *self.cur.get(self.cur_pos)?;
        self.cur_pos += 1;
        debug_assert!(rec.time >= self.now, "event queue went backwards");
        self.now = rec.time;
        self.delivered += 1;
        let event = self.release(rec.slot);
        self.settle();
        Some((rec.time, event))
    }
}

/// Checkpoint form: the counters plus every pending entry as a
/// `[time_ns, seq, event]` triple, sorted by `(time, seq)`.
///
/// The internal tier placement (sorted run / calendar bucket / far heap) is
/// deliberately **not** captured: pop order is the pure `(time, seq)` minimum
/// regardless of tier, so the restore may rebuild the tiers from scratch and
/// still replay the identical event sequence. Sorting the entries makes the
/// encoded bytes canonical — two schedulers with the same pending set and
/// counters serialize identically even if their calendar windows differ.
///
/// Each record's **original** `seq` is preserved (and the `seq` counter
/// restored), because FIFO order among equal timestamps is part of the
/// determinism contract: renumbering on restore would reorder same-instant
/// batches relative to entries scheduled after the restore.
///
/// ```
/// use netsim::Scheduler;
/// use p2p_common::SimTime;
/// use serde::{Deserialize, Serialize};
///
/// let mut sched: Scheduler<u32> = Scheduler::new();
/// sched.schedule_at(SimTime::from_millis(5), 1);
/// sched.schedule_at(SimTime::from_millis(5), 2); // same instant: FIFO
/// sched.pop();
///
/// let mut restored: Scheduler<u32> = Scheduler::from_value(&sched.to_value()).unwrap();
/// assert_eq!(restored.now(), sched.now());
/// assert_eq!(restored.pop(), sched.pop());
/// ```
impl<E: Serialize> Serialize for Scheduler<E> {
    fn to_value(&self) -> Value {
        let mut recs: Vec<Rec> = Vec::with_capacity(self.pending());
        recs.extend_from_slice(&self.cur[self.cur_pos..]);
        for b in &self.buckets {
            recs.extend_from_slice(b);
        }
        recs.extend(self.far.iter().map(|f| f.0));
        recs.sort_unstable_by_key(Rec::key);
        let pending: Vec<Value> = recs
            .into_iter()
            .map(|rec| {
                let event = self.slots[rec.slot as usize]
                    .as_ref()
                    .expect("pending record without arena slot");
                Value::Array(vec![
                    rec.time.as_nanos().to_value(),
                    rec.seq.to_value(),
                    event.to_value(),
                ])
            })
            .collect();
        Value::Object(vec![
            ("now".to_owned(), self.now.as_nanos().to_value()),
            ("seq".to_owned(), self.seq.to_value()),
            ("delivered".to_owned(), self.delivered.to_value()),
            ("dead".to_owned(), self.dead.to_value()),
            ("compactions".to_owned(), self.compactions.to_value()),
            (
                "compacted_entries".to_owned(),
                self.compacted_entries.to_value(),
            ),
            ("pending".to_owned(), Value::Array(pending)),
        ])
    }
}

impl<E: Deserialize> Deserialize for Scheduler<E> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let fields = v
            .as_object()
            .ok_or_else(|| DeError::expected("object", "Scheduler", v))?;
        let mut sched = Scheduler::new();
        sched.now = SimTime::from_nanos(serde::field(fields, "now", "Scheduler")?);
        sched.seq = serde::field(fields, "seq", "Scheduler")?;
        sched.delivered = serde::field(fields, "delivered", "Scheduler")?;
        sched.dead = serde::field(fields, "dead", "Scheduler")?;
        sched.compactions = serde::field(fields, "compactions", "Scheduler")?;
        sched.compacted_entries = serde::field(fields, "compacted_entries", "Scheduler")?;
        let pending = fields
            .iter()
            .find(|(k, _)| k == "pending")
            .map(|(_, v)| v)
            .ok_or_else(|| DeError::msg("missing field `pending` while deserializing Scheduler"))?;
        let entries = pending
            .as_array()
            .ok_or_else(|| DeError::expected("array", "Scheduler.pending", pending))?;
        let mut records = Vec::with_capacity(entries.len());
        for entry in entries {
            let triple = entry.as_array().filter(|a| a.len() == 3).ok_or_else(|| {
                DeError::expected("[time, seq, event] triple", "Scheduler.pending", entry)
            })?;
            let time = SimTime::from_nanos(u64::from_value(&triple[0])?);
            let seq = u64::from_value(&triple[1])?;
            if time < sched.now {
                return Err(DeError::msg(format!(
                    "Scheduler.pending: entry at {} predates the restored clock {}",
                    time, sched.now
                )));
            }
            if seq >= sched.seq {
                return Err(DeError::msg(format!(
                    "Scheduler.pending: entry seq {seq} not below the seq counter {}",
                    sched.seq
                )));
            }
            let slot = sched.alloc(E::from_value(&triple[2])?);
            records.push(FarRec(Rec { time, seq, slot }));
        }
        // Tier placement is irrelevant to pop order: drop everything into the
        // far heap and let `settle` rebuild the run/window lazily (the same
        // rebuild path `compact_pending` uses).
        sched.far = BinaryHeap::from(records);
        sched.settle();
        Ok(sched)
    }
}

/// A simulation world: everything that reacts to events.
pub trait World {
    /// The event alphabet of this world.
    type Event;

    /// Handle one event at the current simulated time. Follow-up events are
    /// scheduled through `sched`.
    fn handle(&mut self, sched: &mut Scheduler<Self::Event>, event: Self::Event);
}

/// Run `world` until the event queue drains or the clock passes `until`
/// (events strictly after `until` are left unprocessed). Returns the time of
/// the last processed event (or the start time if none fired).
pub fn run_world<W: World>(
    world: &mut W,
    sched: &mut Scheduler<W::Event>,
    until: Option<SimTime>,
) -> SimTime {
    let mut last = sched.now();
    while let Some(next) = sched.peek_time() {
        if let Some(limit) = until {
            if next > limit {
                break;
            }
        }
        let (t, ev) = sched.pop().expect("peeked event must exist");
        world.handle(sched, ev);
        last = t;
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2p_common::DetRng;

    struct Recorder {
        seen: Vec<(SimTime, u32)>,
    }

    #[derive(Debug, Clone, Copy)]
    enum Ev {
        Tag(u32),
        Chain { tag: u32, remaining: u32 },
    }

    impl World for Recorder {
        type Event = Ev;
        fn handle(&mut self, sched: &mut Scheduler<Ev>, ev: Ev) {
            match ev {
                Ev::Tag(t) => self.seen.push((sched.now(), t)),
                Ev::Chain { tag, remaining } => {
                    self.seen.push((sched.now(), tag));
                    if remaining > 0 {
                        sched.schedule_in(
                            SimDuration::from_millis(10),
                            Ev::Chain {
                                tag: tag + 1,
                                remaining: remaining - 1,
                            },
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut world = Recorder { seen: vec![] };
        let mut sched = Scheduler::new();
        sched.schedule_at(SimTime::from_millis(30), Ev::Tag(3));
        sched.schedule_at(SimTime::from_millis(10), Ev::Tag(1));
        sched.schedule_at(SimTime::from_millis(20), Ev::Tag(2));
        run_world(&mut world, &mut sched, None);
        assert_eq!(
            world.seen,
            vec![
                (SimTime::from_millis(10), 1),
                (SimTime::from_millis(20), 2),
                (SimTime::from_millis(30), 3)
            ]
        );
    }

    #[test]
    fn equal_timestamps_are_fifo() {
        let mut world = Recorder { seen: vec![] };
        let mut sched = Scheduler::new();
        for i in 0..10 {
            sched.schedule_at(SimTime::from_secs(1), Ev::Tag(i));
        }
        run_world(&mut world, &mut sched, None);
        let tags: Vec<u32> = world.seen.iter().map(|&(_, t)| t).collect();
        assert_eq!(tags, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn handlers_can_schedule_followups() {
        let mut world = Recorder { seen: vec![] };
        let mut sched = Scheduler::new();
        sched.schedule_at(
            SimTime::ZERO,
            Ev::Chain {
                tag: 0,
                remaining: 4,
            },
        );
        let end = run_world(&mut world, &mut sched, None);
        assert_eq!(world.seen.len(), 5);
        assert_eq!(end, SimTime::from_millis(40));
        assert_eq!(sched.delivered(), 5);
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut world = Recorder { seen: vec![] };
        let mut sched = Scheduler::new();
        sched.schedule_at(
            SimTime::ZERO,
            Ev::Chain {
                tag: 0,
                remaining: 100,
            },
        );
        run_world(&mut world, &mut sched, Some(SimTime::from_millis(35)));
        assert_eq!(world.seen.len(), 4, "events after the horizon must not run");
        assert!(!sched.is_empty());
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut world = Recorder { seen: vec![] };
        let mut sched = Scheduler::new();
        sched.schedule_at(SimTime::from_secs(1), Ev::Tag(0));
        run_world(&mut world, &mut sched, None);
        sched.schedule_at(SimTime::ZERO, Ev::Tag(1));
    }

    #[test]
    fn clock_does_not_move_without_events() {
        let mut world = Recorder { seen: vec![] };
        let mut sched: Scheduler<Ev> = Scheduler::new();
        let end = run_world(&mut world, &mut sched, None);
        assert_eq!(end, SimTime::ZERO);
        assert_eq!(sched.pending(), 0);
    }

    /// Differential check against a plain sorted model through enough volume
    /// to exercise every tier: sparse heap order, calendar scatter/promote,
    /// window rebuilds, in-run insertion, and interleaved pops.
    #[test]
    fn matches_reference_order_through_all_tiers() {
        let mut rng = DetRng::new(0xCA1E_0D0E);
        let mut sched: Scheduler<u64> = Scheduler::new();
        let mut model: Vec<(SimTime, u64)> = Vec::new(); // (time, payload), kept sorted lazily
        let mut next_payload = 0u64;
        let mut popped = Vec::new();
        let mut expected = Vec::new();
        for round in 0..2_000u32 {
            // Burst-schedule: occasionally far beyond, mostly near-horizon,
            // sometimes at the exact current instant (the sentinel pattern).
            let burst = if round % 97 == 0 {
                700
            } else {
                rng.gen_range(0..8)
            };
            for _ in 0..burst {
                let offset = match rng.gen_range(0..10u32) {
                    0 => 0,
                    1..=7 => rng.gen_range(0..50_000u64),
                    8 => rng.gen_range(0..5_000_000u64),
                    _ => u64::MAX / 4,
                };
                let at = SimTime::from_nanos(sched.now().as_nanos().saturating_add(offset));
                sched.schedule_at(at, next_payload);
                model.push((at, next_payload));
                next_payload += 1;
            }
            for _ in 0..rng.gen_range(0..6) {
                match sched.pop() {
                    Some((t, p)) => popped.push((t, p)),
                    None => break,
                }
            }
            while expected.len() < popped.len() {
                // Model: stable min by (time, insertion order).
                let best = model
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &(t, p))| (t, p))
                    .map(|(i, _)| i)
                    .expect("scheduler popped more than was scheduled");
                expected.push(model.swap_remove(best));
            }
            assert_eq!(&popped[..], &expected[..], "divergence at round {round}");
        }
        // Drain and compare the tail.
        while let Some((t, p)) = sched.pop() {
            popped.push((t, p));
        }
        model.sort_unstable_by_key(|&(t, p)| (t, p));
        expected.extend(model);
        assert_eq!(popped, expected);
        assert!(sched.is_empty());
        assert_eq!(sched.delivered() as usize, popped.len());
    }

    #[test]
    fn same_instant_entries_scheduled_mid_drain_stay_fifo() {
        // The batched-rebalance pattern: thousands of same-instant events so
        // the calendar activates, then entries scheduled *at the current
        // instant* while it drains must fire after all pending equal-time
        // entries — in-run insertion, not heap order.
        let mut sched: Scheduler<u32> = Scheduler::new();
        let t = SimTime::from_secs(1);
        for i in 0..2_000u32 {
            sched.schedule_at(t, i);
        }
        let mut seen = Vec::new();
        for _ in 0..1_000 {
            seen.push(sched.pop().unwrap().1);
        }
        sched.schedule_at(t, 9_999); // the "sentinel"
        sched.schedule_at(SimTime::from_secs(2), 10_000);
        while let Some((_, p)) = sched.pop() {
            seen.push(p);
        }
        let mut expected: Vec<u32> = (0..2_000).collect();
        expected.push(9_999);
        expected.push(10_000);
        assert_eq!(seen, expected);
    }

    #[test]
    fn compaction_recounts_dead_from_the_predicate() {
        // A mix of marked and unmarked entries: the predicate (the liveness
        // oracle) drops two entries that were never marked dead and keeps
        // everything else. The old subtract-removed accounting would leave
        // dead == 1 here, deflating live_pending; the recount resets to the
        // oracle's ground truth.
        let mut sched: Scheduler<u32> = Scheduler::new();
        for i in 0..10u32 {
            sched.schedule_at(SimTime::from_millis(u64::from(i)), i);
        }
        for _ in 0..3 {
            sched.mark_dead(); // producer thinks three entries went stale…
        }
        // …but the compaction predicate says entries 8 and 9 are the only
        // disposable ones.
        let removed = sched.compact_pending(|&e| e < 8);
        assert_eq!(removed, 2);
        assert_eq!(sched.pending(), 8);
        assert_eq!(sched.dead_pending(), 0, "counter resyncs to the oracle");
        assert_eq!(sched.live_pending(), 8, "live view no longer skewed");
        assert_eq!(sched.compactions(), 1);
        assert_eq!(sched.compacted_entries(), 2);
        // Survivors keep their relative order.
        let order: Vec<u32> = std::iter::from_fn(|| sched.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn compaction_preserves_order_across_all_tiers() {
        let mut sched: Scheduler<u64> = Scheduler::new();
        // Enough volume for a calendar window plus far-future stragglers.
        for i in 0..4_000u64 {
            sched.schedule_at(SimTime::from_nanos(i * 37), i);
        }
        sched.schedule_at(SimTime::from_nanos(u64::MAX / 4), 4_000);
        for _ in 0..500 {
            sched.pop();
        }
        let removed = sched.compact_pending(|&e| e % 3 != 0);
        assert!(removed > 0);
        let mut last = None;
        let mut count = 0usize;
        while let Some((t, e)) = sched.pop() {
            assert!(e % 3 != 0);
            if let Some(prev) = last {
                assert!(t >= prev, "pop order regressed after compaction");
            }
            last = Some(t);
            count += 1;
        }
        assert_eq!(count + removed + 500, 4_001);
    }

    #[test]
    fn serde_round_trip_replays_identically_across_all_tiers() {
        // Enough volume for a calendar window plus far-future stragglers and
        // a partially drained run: every tier contributes pending entries.
        let mut sched: Scheduler<u64> = Scheduler::new();
        for i in 0..4_000u64 {
            sched.schedule_at(SimTime::from_nanos(i * 37), i);
        }
        sched.schedule_at(SimTime::from_nanos(u64::MAX / 4), 4_000);
        for _ in 0..500 {
            sched.pop();
        }
        sched.mark_dead();
        let mut restored: Scheduler<u64> = Scheduler::from_value(&sched.to_value()).unwrap();
        assert_eq!(restored.now(), sched.now());
        assert_eq!(restored.pending(), sched.pending());
        assert_eq!(restored.delivered(), sched.delivered());
        assert_eq!(restored.dead_pending(), sched.dead_pending());
        // Entries scheduled after the restore must interleave identically.
        sched.schedule_in(SimDuration::from_nanos(40_000), 5_000);
        restored.schedule_in(SimDuration::from_nanos(40_000), 5_000);
        loop {
            let (a, b) = (sched.pop(), restored.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn serde_encoding_is_canonical_across_tier_layouts() {
        // Same pending set reached via different internal histories (one
        // scheduler went through a calendar window + partial drain, the other
        // scheduled the survivors directly) must encode identically.
        let mut a: Scheduler<u64> = Scheduler::new();
        for i in 0..2_000u64 {
            a.schedule_at(SimTime::from_nanos(1_000_000 + i * 13), i);
        }
        let mut b: Scheduler<u64> = Scheduler::new();
        for i in 0..2_000u64 {
            b.schedule_at(SimTime::from_nanos(1_000_000 + i * 13), i);
        }
        for _ in 0..700 {
            a.pop();
            b.pop();
        }
        // Force different tier layouts: rebuild b's tiers via compaction.
        b.compact_pending(|_| true);
        let (va, vb) = (a.to_value(), b.to_value());
        let pa = va.as_object().unwrap().iter().find(|(k, _)| k == "pending");
        let pb = vb.as_object().unwrap().iter().find(|(k, _)| k == "pending");
        assert_eq!(pa, pb, "pending encoding must not leak tier layout");
    }

    #[test]
    fn serde_rejects_corrupt_checkpoints() {
        let mut sched: Scheduler<u64> = Scheduler::new();
        sched.schedule_at(SimTime::from_millis(5), 7);
        let good = sched.to_value();
        // An entry behind the restored clock is refused (it could never pop).
        let tampered = match &good {
            Value::Object(fields) => Value::Object(
                fields
                    .iter()
                    .map(|(k, v)| {
                        if k == "now" {
                            (k.clone(), SimTime::from_secs(1).as_nanos().to_value())
                        } else {
                            (k.clone(), v.clone())
                        }
                    })
                    .collect(),
            ),
            _ => unreachable!(),
        };
        assert!(Scheduler::<u64>::from_value(&tampered).is_err());
        // A pending seq at/above the counter would break FIFO; refused too.
        let tampered = match &good {
            Value::Object(fields) => Value::Object(
                fields
                    .iter()
                    .map(|(k, v)| {
                        if k == "seq" {
                            (k.clone(), 0u64.to_value())
                        } else {
                            (k.clone(), v.clone())
                        }
                    })
                    .collect(),
            ),
            _ => unreachable!(),
        };
        assert!(Scheduler::<u64>::from_value(&tampered).is_err());
    }

    #[test]
    fn arena_slots_are_recycled() {
        let mut sched: Scheduler<u64> = Scheduler::new();
        for round in 0..50u64 {
            for i in 0..100 {
                sched.schedule_in(SimDuration::from_nanos(i + 1), round * 100 + i);
            }
            while sched.pop().is_some() {}
        }
        assert!(
            sched.slots.len() <= 200,
            "arena must recycle slots across drain cycles, got {}",
            sched.slots.len()
        );
        assert!(sched.footprint_bytes() < 64 * 1024);
    }
}
