//! Discrete-event scheduling core.
//!
//! The simulator is organised as a *world* (all mutable simulation state:
//! network flows, overlay nodes, replaying processes, …) plus a [`Scheduler`]
//! holding the pending events of that world. Keeping the two separate avoids
//! borrow conflicts: a world handler receives `&mut self` and `&mut
//! Scheduler<E>` and can freely schedule follow-up events while mutating its
//! own state.
//!
//! Events with equal timestamps are delivered in scheduling order (FIFO), so a
//! simulation is a deterministic function of its inputs. The network layer
//! leans on that guarantee for its batched rebalances: a sentinel scheduled
//! *at the current instant* is delivered after every event of the same
//! instant that was already pending, which is exactly the point at which the
//! whole batch can be processed at once.

use p2p_common::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One pending event.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// The pending-event queue and simulated clock of one simulation.
///
/// ```
/// use netsim::Scheduler;
/// use p2p_common::{SimDuration, SimTime};
///
/// let mut sched: Scheduler<&str> = Scheduler::new();
/// sched.schedule_at(SimTime::from_millis(20), "late");
/// sched.schedule_in(SimDuration::from_millis(10), "early");
/// sched.schedule_at(SimTime::from_millis(20), "late-but-fifo-second");
///
/// // Events pop in (time, scheduling order); the clock follows them.
/// assert_eq!(sched.pop(), Some((SimTime::from_millis(10), "early")));
/// assert_eq!(sched.pop(), Some((SimTime::from_millis(20), "late")));
/// assert_eq!(sched.pop(), Some((SimTime::from_millis(20), "late-but-fifo-second")));
/// assert_eq!(sched.now(), SimTime::from_millis(20));
/// assert!(sched.is_empty());
/// ```
pub struct Scheduler<E> {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Entry<E>>,
    delivered: u64,
    /// Pending entries known to be stale (their producer superseded them).
    /// Maintained by producers through [`Scheduler::mark_dead`] /
    /// [`Scheduler::resolve_dead`]; makes the heap's live/dead ratio
    /// observable so callers can decide when to [`Scheduler::compact_pending`]
    /// (the netsim `Network` does so automatically, driven by its
    /// `CompactionPolicy`).
    dead: u64,
    /// Number of [`Scheduler::compact_pending`] passes run.
    compactions: u64,
    /// Total entries removed by those passes.
    compacted_entries: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// An empty scheduler at time zero.
    pub fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            delivered: 0,
            dead: 0,
            compactions: 0,
            compacted_entries: 0,
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting to fire.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Total number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// True if no event is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `at`. Scheduling in the past is a
    /// logic error and panics (it would silently reorder causality otherwise).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule an event in the past ({} < {})",
            at,
            self.now
        );
        let entry = Entry {
            time: at,
            seq: self.seq,
            event,
        };
        self.seq += 1;
        self.heap.push(entry);
    }

    /// Schedule `event` after a delay relative to the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Record that one pending entry has become stale (its producer
    /// superseded it and will ignore it when it fires).
    pub fn mark_dead(&mut self) {
        self.dead += 1;
    }

    /// Record that a previously [`mark_dead`](Scheduler::mark_dead)ed entry
    /// has been popped and discarded.
    pub fn resolve_dead(&mut self) {
        self.dead = self.dead.saturating_sub(1);
    }

    /// Number of pending entries known to be stale.
    pub fn dead_pending(&self) -> u64 {
        self.dead
    }

    /// Number of pending entries believed live.
    pub fn live_pending(&self) -> usize {
        (self.heap.len() as u64).saturating_sub(self.dead) as usize
    }

    /// Drop every pending entry for which `keep` returns false, preserving
    /// the relative order (time, then scheduling order) of the survivors.
    /// Returns the number of entries removed; the dead counter is reduced by
    /// that amount (callers are expected to drop exactly the stale entries).
    pub fn compact_pending(&mut self, mut keep: impl FnMut(&E) -> bool) -> usize {
        let before = self.heap.len();
        let entries = std::mem::take(&mut self.heap).into_vec();
        self.heap = entries.into_iter().filter(|e| keep(&e.event)).collect();
        let removed = before - self.heap.len();
        self.dead = self.dead.saturating_sub(removed as u64);
        self.compactions += 1;
        self.compacted_entries += removed as u64;
        removed
    }

    /// Number of compaction passes run over this heap.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Total entries removed by compaction passes.
    pub fn compacted_entries(&self) -> u64 {
        self.compacted_entries
    }

    /// Time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now, "event queue went backwards");
        self.now = entry.time;
        self.delivered += 1;
        Some((entry.time, entry.event))
    }
}

/// A simulation world: everything that reacts to events.
pub trait World {
    /// The event alphabet of this world.
    type Event;

    /// Handle one event at the current simulated time. Follow-up events are
    /// scheduled through `sched`.
    fn handle(&mut self, sched: &mut Scheduler<Self::Event>, event: Self::Event);
}

/// Run `world` until the event queue drains or the clock passes `until`
/// (events strictly after `until` are left unprocessed). Returns the time of
/// the last processed event (or the start time if none fired).
pub fn run_world<W: World>(
    world: &mut W,
    sched: &mut Scheduler<W::Event>,
    until: Option<SimTime>,
) -> SimTime {
    let mut last = sched.now();
    while let Some(next) = sched.peek_time() {
        if let Some(limit) = until {
            if next > limit {
                break;
            }
        }
        let (t, ev) = sched.pop().expect("peeked event must exist");
        world.handle(sched, ev);
        last = t;
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        seen: Vec<(SimTime, u32)>,
    }

    #[derive(Debug, Clone, Copy)]
    enum Ev {
        Tag(u32),
        Chain { tag: u32, remaining: u32 },
    }

    impl World for Recorder {
        type Event = Ev;
        fn handle(&mut self, sched: &mut Scheduler<Ev>, ev: Ev) {
            match ev {
                Ev::Tag(t) => self.seen.push((sched.now(), t)),
                Ev::Chain { tag, remaining } => {
                    self.seen.push((sched.now(), tag));
                    if remaining > 0 {
                        sched.schedule_in(
                            SimDuration::from_millis(10),
                            Ev::Chain {
                                tag: tag + 1,
                                remaining: remaining - 1,
                            },
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut world = Recorder { seen: vec![] };
        let mut sched = Scheduler::new();
        sched.schedule_at(SimTime::from_millis(30), Ev::Tag(3));
        sched.schedule_at(SimTime::from_millis(10), Ev::Tag(1));
        sched.schedule_at(SimTime::from_millis(20), Ev::Tag(2));
        run_world(&mut world, &mut sched, None);
        assert_eq!(
            world.seen,
            vec![
                (SimTime::from_millis(10), 1),
                (SimTime::from_millis(20), 2),
                (SimTime::from_millis(30), 3)
            ]
        );
    }

    #[test]
    fn equal_timestamps_are_fifo() {
        let mut world = Recorder { seen: vec![] };
        let mut sched = Scheduler::new();
        for i in 0..10 {
            sched.schedule_at(SimTime::from_secs(1), Ev::Tag(i));
        }
        run_world(&mut world, &mut sched, None);
        let tags: Vec<u32> = world.seen.iter().map(|&(_, t)| t).collect();
        assert_eq!(tags, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn handlers_can_schedule_followups() {
        let mut world = Recorder { seen: vec![] };
        let mut sched = Scheduler::new();
        sched.schedule_at(
            SimTime::ZERO,
            Ev::Chain {
                tag: 0,
                remaining: 4,
            },
        );
        let end = run_world(&mut world, &mut sched, None);
        assert_eq!(world.seen.len(), 5);
        assert_eq!(end, SimTime::from_millis(40));
        assert_eq!(sched.delivered(), 5);
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut world = Recorder { seen: vec![] };
        let mut sched = Scheduler::new();
        sched.schedule_at(
            SimTime::ZERO,
            Ev::Chain {
                tag: 0,
                remaining: 100,
            },
        );
        run_world(&mut world, &mut sched, Some(SimTime::from_millis(35)));
        assert_eq!(world.seen.len(), 4, "events after the horizon must not run");
        assert!(!sched.is_empty());
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut world = Recorder { seen: vec![] };
        let mut sched = Scheduler::new();
        sched.schedule_at(SimTime::from_secs(1), Ev::Tag(0));
        run_world(&mut world, &mut sched, None);
        sched.schedule_at(SimTime::ZERO, Ev::Tag(1));
    }

    #[test]
    fn clock_does_not_move_without_events() {
        let mut world = Recorder { seen: vec![] };
        let mut sched: Scheduler<Ev> = Scheduler::new();
        let end = run_world(&mut world, &mut sched, None);
        assert_eq!(end, SimTime::ZERO);
        assert_eq!(sched.pending(), 0);
    }
}
