//! Monotone bucket queue over link fair shares.
//!
//! The progressive-filling loop of the max–min engine repeatedly needs the
//! link with the **smallest fair share** (`capacity / unfixed flow count`)
//! among the links that still carry unfixed flows. The seed engine — and the
//! PR 1 engine after it — found that link with a linear scan over every
//! touched link per bottleneck iteration, an O(touched²) inner loop per
//! rebalance. [`FairShareQueue`] replaces the scan with a priority structure
//! tailored to how progressive filling behaves:
//!
//! * **Shares only grow.** Fixing the flows of the current bottleneck at
//!   share `s` turns every other affected link's share `C/n` into
//!   `(C − k·s)/(n − k) ≥ s` (because `C/n ≥ s` when `s` is the minimum), so
//!   the sequence of popped keys is non-decreasing — a *monotone* priority
//!   queue. A cursor walks an array of buckets from low keys to high and
//!   (almost) never moves backwards; the one exception is floating-point
//!   cancellation nudging a recomputed share a hair below the popped one,
//!   which the cursor handles by stepping back.
//! * **Buckets are keyed by the quantised share** — the top 16 bits of the
//!   share's IEEE-754 representation (sign ∉, exponent + 4 mantissa bits),
//!   so one bucket spans a ≈6 % relative range and the whole positive f64
//!   range fits in 32 768 buckets. Occupancy is tracked in a two-level
//!   bitmap, making "next non-empty bucket" a handful of word operations.
//! * **Pops are exact, not approximate.** Within a bucket the queue compares
//!   the *authoritative* per-link keys, so the popped link is the true
//!   minimum — the filling fixes flows at exactly the share the linear scan
//!   would have chosen, and the engines stay numerically interchangeable.
//!   Ties between equal shares resolve to the **lowest link index** (the
//!   linear scan applies the same rule), which makes the whole fill a pure
//!   function of the active flow set: no matter in which order a rebalance
//!   seeds the links, equal inputs produce bit-identical rates. The
//!   dirty-component engine depends on that — it re-seeds a component from
//!   its own flow list rather than from the global active order, and a
//!   component whose flow set did not change must re-derive exactly the
//!   rates it already has.
//! * **Dense buckets fall back to a pairing heap.** Regular topologies
//!   (every access link of a star has the same capacity and similar flow
//!   counts) can land *all* their links in one bucket, which would turn the
//!   within-bucket scan back into the O(k²) behaviour this structure exists
//!   to remove. A bucket whose backlog exceeds [`DENSE_SPILL`] entries is
//!   converted into an arena-allocated pairing heap; stale heap entries
//!   (superseded by a later [`FairShareQueue::set`]) are discarded lazily at
//!   pop time, the classic lazy-deletion discipline.
//!
//! The queue is owned by `Network` and reused across rebalances: `clear` is
//! O(buckets actually used), and no allocation happens after the first
//! rebalance at a given scale. The parallel shard engine gives every worker
//! its *own* queue (components share no links, so per-shard queues see
//! disjoint key sets and pop exactly the subsequence of minima a combined
//! fill would have popped for those links); the bucket array itself is
//! allocated lazily on first insert, so the per-worker copies — and the
//! queue of a `Bottleneck`-mode network, which never fills — cost nothing
//! until used.

/// Sentinel for "this link holds no live entry".
const NO_BUCKET: u32 = u32::MAX;
/// Sentinel for "no node" in the pairing-heap arena.
const NO_NODE: u32 = u32::MAX;
/// Number of quantised key buckets (covers every non-negative finite f64).
const BUCKET_COUNT: usize = 1 << 15;
/// Sparse-bucket backlog beyond which the bucket converts to a pairing heap.
const DENSE_SPILL: usize = 24;

/// Quantise a non-negative share to its bucket index: IEEE-754 exponent plus
/// the top 4 mantissa bits, i.e. buckets of ≈6 % relative width.
#[inline]
fn bucket_index(key_bits: u64) -> usize {
    (key_bits >> 48) as usize
}

/// One pairing-heap node: an insertion-time key snapshot and a link id.
/// Nodes live in a shared arena and are thrown away wholesale on `clear`.
#[derive(Debug, Clone, Copy)]
struct HeapNode {
    key: u64,
    link: u32,
    child: u32,
    sibling: u32,
}

/// Arena-backed pairing heap keyed by the IEEE-754 bit pattern of the share
/// (bit order equals numeric order for non-negative floats), with the link
/// index as the tie-break so equal shares pop lowest-link-first — the same
/// rule the linear-scan engine applies, and one that is independent of the
/// order the rebalance seeded the links in.
#[derive(Debug, Default)]
struct PairingArena {
    nodes: Vec<HeapNode>,
}

impl PairingArena {
    fn alloc(&mut self, key: u64, link: u32) -> u32 {
        let id = self.nodes.len() as u32;
        self.nodes.push(HeapNode {
            key,
            link,
            child: NO_NODE,
            sibling: NO_NODE,
        });
        id
    }

    /// Meld two heaps; the smaller-keyed root adopts the other as a child.
    fn meld(&mut self, a: u32, b: u32) -> u32 {
        if a == NO_NODE {
            return b;
        }
        if b == NO_NODE {
            return a;
        }
        let ka = (self.nodes[a as usize].key, self.nodes[a as usize].link);
        let kb = (self.nodes[b as usize].key, self.nodes[b as usize].link);
        let (parent, child) = if ka <= kb { (a, b) } else { (b, a) };
        self.nodes[child as usize].sibling = self.nodes[parent as usize].child;
        self.nodes[parent as usize].child = child;
        parent
    }

    /// Remove the root and two-pass-merge its children into a new heap.
    fn pop_root(&mut self, root: u32) -> u32 {
        let mut head = self.nodes[root as usize].child;
        // First pass: meld children pairwise left to right.
        let mut pairs: u32 = NO_NODE; // reversed list of melded pairs, linked via sibling
        while head != NO_NODE {
            let a = head;
            let b = self.nodes[a as usize].sibling;
            if b == NO_NODE {
                self.nodes[a as usize].sibling = pairs;
                pairs = a;
                break;
            }
            let next = self.nodes[b as usize].sibling;
            self.nodes[a as usize].sibling = NO_NODE;
            self.nodes[b as usize].sibling = NO_NODE;
            let m = self.meld(a, b);
            self.nodes[m as usize].sibling = pairs;
            pairs = m;
            head = next;
        }
        // Second pass: meld the pairs right to left (list is already reversed).
        let mut merged = NO_NODE;
        while pairs != NO_NODE {
            let next = self.nodes[pairs as usize].sibling;
            self.nodes[pairs as usize].sibling = NO_NODE;
            merged = self.meld(merged, pairs);
            pairs = next;
        }
        merged
    }
}

/// Per-bucket storage: a plain vector of link ids until the backlog spills,
/// a pairing heap afterwards (for the lifetime of the current rebalance).
#[derive(Debug, Clone)]
struct Bucket {
    /// Sparse entries (link ids); validity is judged against `bucket_of`.
    sparse: Vec<u32>,
    /// Pairing-heap root, or [`NO_NODE`] while the bucket is sparse.
    dense: u32,
}

impl Default for Bucket {
    fn default() -> Self {
        Bucket {
            sparse: Vec::new(),
            dense: NO_NODE,
        }
    }
}

/// Monotone bucket queue of links keyed by fair share. See the module docs.
#[derive(Debug)]
pub(crate) struct FairShareQueue {
    /// Authoritative key (share bits) per link; meaningful only when the
    /// link's `bucket_of` entry is live.
    key: Vec<u64>,
    /// Bucket currently holding each link's live entry, or [`NO_BUCKET`].
    bucket_of: Vec<u32>,
    buckets: Vec<Bucket>,
    /// Level-0 occupancy bitmap: one bit per bucket.
    occupied: Vec<u64>,
    /// Level-1 bitmap: one bit per `occupied` word.
    summary: Vec<u64>,
    /// Buckets dirtied since the last `clear` (bounds the reset cost).
    used: Vec<u32>,
    arena: PairingArena,
    /// Number of live links queued.
    len: usize,
    /// Lower bound on the minimum occupied bucket (the monotone cursor).
    first: usize,
}

impl Default for FairShareQueue {
    fn default() -> Self {
        FairShareQueue::new()
    }
}

impl FairShareQueue {
    /// An empty queue. The bucket array and its occupancy bitmaps (~1 MB)
    /// are allocated lazily on the first [`FairShareQueue::set`]: a
    /// `Network` owns one queue per shard worker on top of its own — and
    /// one even in `Bottleneck` mode, where no fill ever runs — so queues
    /// that never see an entry must cost nothing.
    pub(crate) fn new() -> Self {
        FairShareQueue {
            key: Vec::new(),
            bucket_of: Vec::new(),
            buckets: Vec::new(),
            occupied: Vec::new(),
            summary: Vec::new(),
            used: Vec::new(),
            arena: PairingArena::default(),
            len: 0,
            first: BUCKET_COUNT,
        }
    }

    /// Allocate the bucket array and bitmaps on first use.
    fn ensure_buckets(&mut self) {
        if self.buckets.is_empty() {
            self.buckets = vec![Bucket::default(); BUCKET_COUNT];
            self.occupied = vec![0; BUCKET_COUNT / 64];
            self.summary = vec![0; BUCKET_COUNT / 64 / 64];
        }
    }

    /// Heap bytes held by this queue's tables (for the pool-scratch
    /// accounting in `Network::memory_footprint`).
    pub(crate) fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.key.capacity() * size_of::<u64>()
            + self.bucket_of.capacity() * size_of::<u32>()
            + self.buckets.capacity() * size_of::<Bucket>()
            + self
                .buckets
                .iter()
                .map(|b| b.sparse.capacity() * size_of::<u32>())
                .sum::<usize>()
            + self.occupied.capacity() * size_of::<u64>()
            + self.summary.capacity() * size_of::<u64>()
            + self.used.capacity() * size_of::<u32>()
            + self.arena.nodes.capacity() * size_of::<HeapNode>()
    }

    /// Grow the per-link tables to cover `n` links (no-op once sized).
    pub(crate) fn ensure_links(&mut self, n: usize) {
        if self.key.len() < n {
            self.key.resize(n, 0);
            self.bucket_of.resize(n, NO_BUCKET);
        }
    }

    /// Seed the queue with the fair share (`capacity / unfixed`) of every
    /// link in `links` that still carries unfixed flows. The per-link arrays
    /// are indexed like `Platform::links`; links with no unfixed flows are
    /// skipped. This is how a rebalance hands the queue a *subset* of the
    /// platform — the full touched set for a global recompute, or just one
    /// dirty component's links for a component-limited one.
    pub(crate) fn seed(&mut self, links: &[usize], capacity: &[f64], unfixed: &[u32]) {
        self.ensure_links(capacity.len());
        self.clear();
        for &l in links {
            let n = unfixed[l];
            if n > 0 {
                self.set(l, capacity[l] / n as f64);
            }
        }
    }

    /// Number of live links queued.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Forget every entry, in time proportional to the buckets actually used.
    pub(crate) fn clear(&mut self) {
        for &b in &self.used {
            let bucket = &mut self.buckets[b as usize];
            bucket.sparse.clear();
            bucket.dense = NO_NODE;
        }
        self.used.clear();
        self.occupied.fill(0);
        self.summary.fill(0);
        self.arena.nodes.clear();
        self.first = BUCKET_COUNT;
        if self.len != 0 {
            // A fill that ran to completion pops or removes every link; this
            // path only triggers if a caller abandoned a fill midway.
            self.bucket_of.fill(NO_BUCKET);
            self.len = 0;
        }
    }

    #[inline]
    fn mark_occupied(&mut self, b: usize) {
        let (w, bit) = (b / 64, 1u64 << (b % 64));
        if self.occupied[w] & bit == 0 {
            self.occupied[w] |= bit;
            self.summary[w / 64] |= 1u64 << (w % 64);
        }
    }

    /// First occupied bucket at or after `from`, via the two-level bitmap.
    fn next_occupied(&self, from: usize) -> Option<usize> {
        if from >= BUCKET_COUNT {
            return None;
        }
        let mut w = from / 64;
        // Tail of the starting word.
        let head = self.occupied[w] & (!0u64 << (from % 64));
        if head != 0 {
            return Some(w * 64 + head.trailing_zeros() as usize);
        }
        w += 1;
        // Jump over empty words via the summary bitmap.
        let mut s = w / 64;
        if s >= self.summary.len() {
            return None;
        }
        let mut sum = self.summary[s] & (!0u64 << (w % 64));
        loop {
            if sum != 0 {
                let word = s * 64 + sum.trailing_zeros() as usize;
                let bits = self.occupied[word];
                debug_assert_ne!(bits, 0, "summary bit set over an empty word");
                return Some(word * 64 + bits.trailing_zeros() as usize);
            }
            s += 1;
            if s >= self.summary.len() {
                return None;
            }
            sum = self.summary[s];
        }
    }

    /// Insert `link` or update its share. Keys are the non-negative, finite
    /// fair share in bytes/s; updates supersede earlier entries lazily.
    pub(crate) fn set(&mut self, link: usize, share: f64) {
        debug_assert!(
            share >= 0.0 && share.is_finite(),
            "share {share} out of domain"
        );
        self.ensure_buckets();
        let bits = share.to_bits();
        let b = bucket_index(bits);
        let prev = self.bucket_of[link];
        if prev == b as u32 {
            if self.key[link] == bits {
                return;
            }
            self.key[link] = bits;
            // Same bucket, new key: sparse entries read the authoritative
            // key at pop time and need nothing; heap entries are ordered by
            // their snapshot, so push a fresh one and let the old go stale.
            let bucket = &mut self.buckets[b];
            if bucket.dense != NO_NODE {
                let node = self.arena.alloc(bits, link as u32);
                bucket.dense = self.arena.meld(bucket.dense, node);
            }
            return;
        }
        if prev == NO_BUCKET {
            self.len += 1;
        }
        self.key[link] = bits;
        self.bucket_of[link] = b as u32;
        let bucket = &mut self.buckets[b];
        if bucket.dense == NO_NODE && bucket.sparse.is_empty() {
            self.used.push(b as u32);
        }
        if bucket.dense != NO_NODE {
            let node = self.arena.alloc(bits, link as u32);
            bucket.dense = self.arena.meld(bucket.dense, node);
        } else {
            bucket.sparse.push(link as u32);
            if bucket.sparse.len() > DENSE_SPILL {
                self.densify(b);
            }
        }
        self.mark_occupied(b);
        if b < self.first {
            self.first = b;
        }
    }

    /// Drop `link` from the queue (its unfixed count reached zero). The
    /// stored entry is discarded lazily.
    pub(crate) fn remove(&mut self, link: usize) {
        if self.bucket_of[link] != NO_BUCKET {
            self.bucket_of[link] = NO_BUCKET;
            self.len -= 1;
        }
    }

    /// Convert a spilling sparse bucket into a pairing heap.
    fn densify(&mut self, b: usize) {
        let entries = std::mem::take(&mut self.buckets[b].sparse);
        let mut root = NO_NODE;
        for &l in &entries {
            if self.bucket_of[l as usize] == b as u32 {
                let node = self.arena.alloc(self.key[l as usize], l);
                root = self.arena.meld(root, node);
            }
        }
        self.buckets[b].sparse = entries; // keep the allocation
        self.buckets[b].sparse.clear();
        self.buckets[b].dense = root;
    }

    /// Pop the link with the smallest current share. Exact, including ties:
    /// equal shares resolve to the lowest link index — the same link the
    /// linear-scan engine's `(share, link)` minimum selects — so the two
    /// selection strategies produce bit-identical fills, and the fill is
    /// independent of the order the links were seeded in.
    pub(crate) fn pop_min(&mut self) -> Option<(usize, f64)> {
        if self.len == 0 {
            return None;
        }
        let mut b = self.first;
        loop {
            b = self.next_occupied(b)?;
            self.first = b;
            if self.buckets[b].dense != NO_NODE {
                if let Some(hit) = self.pop_dense(b) {
                    return Some(hit);
                }
            } else if let Some(hit) = self.pop_sparse(b) {
                return Some(hit);
            }
            // Bucket exhausted (only stale entries): clear its bit and move on.
            let (w, bit) = (b / 64, 1u64 << (b % 64));
            self.occupied[w] &= !bit;
            if self.occupied[w] == 0 {
                self.summary[w / 64] &= !(1u64 << (w % 64));
            }
            b += 1;
        }
    }

    /// Extract the valid minimum of a sparse bucket, compacting stale
    /// entries in place. `None` means the bucket held nothing live.
    fn pop_sparse(&mut self, b: usize) -> Option<(usize, f64)> {
        let mut entries = std::mem::take(&mut self.buckets[b].sparse);
        let mut best: Option<(usize, u64, u32)> = None; // (position, key, link)
        let mut i = 0;
        while i < entries.len() {
            let l = entries[i] as usize;
            if self.bucket_of[l] != b as u32 {
                entries.swap_remove(i); // stale (moved, removed, or duplicate)
                continue;
            }
            let k = self.key[l];
            if best.is_none_or(|(_, bk, bl)| (k, l as u32) < (bk, bl)) {
                best = Some((i, k, l as u32));
            }
            i += 1;
        }
        let hit = best.map(|(pos, k, _)| {
            let l = entries.swap_remove(pos) as usize;
            self.bucket_of[l] = NO_BUCKET;
            self.len -= 1;
            (l, f64::from_bits(k))
        });
        self.buckets[b].sparse = entries;
        hit
    }

    /// Extract the valid minimum of a dense bucket, discarding stale heap
    /// entries lazily.
    fn pop_dense(&mut self, b: usize) -> Option<(usize, f64)> {
        let mut root = self.buckets[b].dense;
        let hit = loop {
            if root == NO_NODE {
                break None;
            }
            let node = self.arena.nodes[root as usize];
            root = self.arena.pop_root(root);
            let l = node.link as usize;
            if self.bucket_of[l] == b as u32 && self.key[l] == node.key {
                self.bucket_of[l] = NO_BUCKET;
                self.len -= 1;
                break Some((l, f64::from_bits(node.key)));
            }
        };
        self.buckets[b].dense = root;
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut FairShareQueue) -> Vec<(usize, f64)> {
        let mut out = vec![];
        while let Some(x) = q.pop_min() {
            out.push(x);
        }
        out
    }

    #[test]
    fn pops_in_nondecreasing_share_order() {
        let mut q = FairShareQueue::new();
        q.ensure_links(8);
        let shares = [125e6, 3.2e3, 9.9e8, 0.5, 77.0, 1.25e7, 3.1e3, 42.0];
        for (l, &s) in shares.iter().enumerate() {
            q.set(l, s);
        }
        assert_eq!(q.len(), 8);
        let popped = drain(&mut q);
        assert_eq!(popped.len(), 8);
        let keys: Vec<f64> = popped.iter().map(|&(_, s)| s).collect();
        let mut sorted = keys.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(keys, sorted, "pops must come out in share order");
        assert_eq!(popped[0], (3, 0.5));
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn updates_supersede_earlier_entries() {
        let mut q = FairShareQueue::new();
        q.ensure_links(4);
        q.set(0, 10.0);
        q.set(1, 20.0);
        // Move link 0 up past link 1 (two bucket hops), then nudge it within
        // its final bucket (same-bucket key update).
        q.set(0, 30.0);
        q.set(0, 30.5);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_min(), Some((1, 20.0)));
        assert_eq!(q.pop_min(), Some((0, 30.5)));
        assert_eq!(q.pop_min(), None);
    }

    #[test]
    fn removed_links_never_pop() {
        let mut q = FairShareQueue::new();
        q.ensure_links(3);
        q.set(0, 1.0);
        q.set(1, 2.0);
        q.set(2, 3.0);
        q.remove(1);
        q.remove(1); // idempotent
        let popped = drain(&mut q);
        assert_eq!(
            popped.iter().map(|&(l, _)| l).collect::<Vec<_>>(),
            vec![0, 2]
        );
    }

    #[test]
    fn dense_buckets_spill_into_the_pairing_heap() {
        let mut q = FairShareQueue::new();
        let n = 4 * DENSE_SPILL;
        q.ensure_links(n);
        // All shares within one ≈6% bucket: identical exponent + top mantissa
        // bits. Base 1.0e6 with sub-per-mill spreads stays in one bucket.
        for l in 0..n {
            q.set(l, 1.0e6 + l as f64);
        }
        let popped = drain(&mut q);
        assert_eq!(popped.len(), n);
        for (i, &(l, s)) in popped.iter().enumerate() {
            assert_eq!(l, i, "exact min order inside a dense bucket");
            assert_eq!(s, 1.0e6 + i as f64);
        }
    }

    #[test]
    fn interleaved_updates_during_dense_pops_stay_exact() {
        let mut q = FairShareQueue::new();
        let n = 2 * DENSE_SPILL;
        q.ensure_links(n + 1);
        for l in 0..n {
            q.set(l, 5.0e8 + l as f64);
        }
        // Pop a few, then update a queued link within the same bucket and
        // insert a fresh one below everything.
        assert_eq!(q.pop_min(), Some((0, 5.0e8)));
        assert_eq!(q.pop_min(), Some((1, 5.0e8 + 1.0)));
        q.set(7, 5.0e8 + 1000.0);
        q.set(n, 1.0); // below the cursor: the queue must step back
        assert_eq!(q.pop_min(), Some((n, 1.0)));
        assert_eq!(q.pop_min(), Some((2, 5.0e8 + 2.0)));
        // Link 7 pops at its updated key, after its old neighbours.
        let rest = drain(&mut q);
        let pos7 = rest.iter().position(|&(l, _)| l == 7).unwrap();
        assert_eq!(rest[pos7].1, 5.0e8 + 1000.0);
        assert_eq!(pos7, rest.len() - 1, "the raised link pops last");
        assert!(
            !rest.iter().take(pos7).any(|&(l, _)| l == 7),
            "no stale pop"
        );
    }

    #[test]
    fn clear_resets_cheaply_and_queue_is_reusable() {
        let mut q = FairShareQueue::new();
        q.ensure_links(64);
        for l in 0..64 {
            q.set(l, (l + 1) as f64 * 1e5);
        }
        for _ in 0..10 {
            q.pop_min();
        }
        q.clear();
        assert_eq!(q.len(), 0);
        assert_eq!(q.pop_min(), None);
        q.set(3, 9.0);
        q.set(5, 4.0);
        assert_eq!(q.pop_min(), Some((5, 4.0)));
        assert_eq!(q.pop_min(), Some((3, 9.0)));
        assert_eq!(q.pop_min(), None);
    }

    #[test]
    fn zero_shares_are_representable() {
        let mut q = FairShareQueue::new();
        q.ensure_links(2);
        q.set(0, 0.0);
        q.set(1, 1e9);
        assert_eq!(q.pop_min(), Some((0, 0.0)));
        assert_eq!(q.pop_min(), Some((1, 1e9)));
    }
}
