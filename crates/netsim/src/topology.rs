//! Builders for the evaluation platforms of the paper.
//!
//! * [`cluster_bordeplage`] — Stage-1: the Grid'5000 Bordeplage cluster.
//!   "All network interface cards are 1 Gbps Gigabit Ethernet with a latency
//!   of 100 microseconds; cluster backbone bandwidth is of 10 Gbps with a
//!   latency of 100 microseconds" (§IV-A.4).
//! * [`daisy_xdsl`] — Stage-2A: the Daisy xDSL topology of Fig. 8: 5 central
//!   routers on a 100 Gbps ring, 5 petals of 10 routers at 10 Gbps, 4 DSLAMs
//!   per petal router at 10 Gbps, 5 nodes per DSLAM with 5–10 Mbps randomly
//!   assigned last miles (one exceptional DSLAM carries 5+24 nodes so the
//!   structure holds 1024 nodes).
//! * [`lan`] — Stage-2B: a campus LAN with a 1 Gbps backbone and 100 Mbps
//!   node links.
//!
//! The paper gives no latency figures for the xDSL and LAN platforms; we use
//! representative values (10 ms ADSL last mile, 1 ms metro links, 0.5 ms
//! campus switching) and record them as constants so that a sensitivity sweep
//! can vary them (see `bench/ablation_flow_model`).

use crate::platform::{HostSpec, LinkSpec, Platform, PlatformBuilder};
use p2p_common::{Bandwidth, DetRng, HostId, IpAddr, SimDuration};

/// Which of the paper's platforms a [`Topology`] models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologyKind {
    /// Grid'5000 Bordeplage cluster (Stage-1).
    Grid5000Cluster,
    /// Daisy xDSL desktop grid (Stage-2A).
    DaisyXdsl,
    /// Campus / corporate LAN (Stage-2B).
    Lan,
    /// A forest of mutually disconnected DSLAM trees ([`dslam_forest`]) —
    /// the multi-component stress platform for the dirty-component engine.
    DslamForest,
    /// An internet-hierarchy platform ([`isp_hierarchy`]): backbone ring →
    /// metro routers → DSLAMs → xDSL leaves, parameterised by fan-outs up to
    /// tens of thousands of hosts — the million-flow scale platform.
    IspHierarchy,
}

impl TopologyKind {
    /// Human-readable label used in reports and benches.
    pub fn label(self) -> &'static str {
        match self {
            TopologyKind::Grid5000Cluster => "Grid5000",
            TopologyKind::DaisyXdsl => "xDSL",
            TopologyKind::Lan => "LAN",
            TopologyKind::DslamForest => "xDSL-forest",
            TopologyKind::IspHierarchy => "ISP-hierarchy",
        }
    }
}

/// How peers participating in a run are selected among the platform's hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Consecutive hosts (same DSLAM / rack first).
    Packed,
    /// Hosts striped across the platform (different petals / racks first).
    Spread,
}

/// A built platform plus its compute hosts in canonical order.
#[derive(Debug, Clone)]
pub struct Topology {
    /// The platform graph.
    pub platform: Platform,
    /// Compute hosts in creation order.
    pub hosts: Vec<HostId>,
    /// Which evaluation platform this is.
    pub kind: TopologyKind,
    /// Ranges into [`Topology::hosts`] covering the platform's connected
    /// components, in creation order. The paper's platforms are connected
    /// (one range spanning every host); [`dslam_forest`] yields one range
    /// per tree. Routes exist only *within* a component — workload
    /// generators must pick src/dst pairs from the same range.
    pub components: Vec<std::ops::Range<usize>>,
}

impl Topology {
    /// The hosts of connected component `c` (see [`Topology::components`]).
    pub fn component_hosts(&self, c: usize) -> &[HostId] {
        &self.hosts[self.components[c].clone()]
    }
    /// Pick `n` hosts according to `policy`. Panics if the platform has fewer
    /// than `n` hosts.
    pub fn pick_hosts(&self, n: usize, policy: PlacementPolicy) -> Vec<HostId> {
        assert!(
            n <= self.hosts.len(),
            "requested {n} hosts but the platform has only {}",
            self.hosts.len()
        );
        match policy {
            PlacementPolicy::Packed => self.hosts[..n].to_vec(),
            PlacementPolicy::Spread => {
                if n == 0 {
                    return vec![];
                }
                // Stride across the host table, skipping duplicates with an
                // order-preserving seen-set (`Vec::dedup` only removes
                // *adjacent* duplicates, so the old code could return repeated
                // hosts whenever the stride wrapped), then backfill from the
                // front. Both passes share the seen-set, so the result is
                // always `n` distinct hosts in O(hosts) time.
                let stride = (self.hosts.len() / n).max(1);
                let mut seen = vec![false; self.hosts.len()];
                let mut picked = Vec::with_capacity(n);
                for i in 0..n {
                    let idx = (i * stride) % self.hosts.len();
                    if !seen[idx] {
                        seen[idx] = true;
                        picked.push(self.hosts[idx]);
                    }
                }
                let mut next = 0usize;
                while picked.len() < n {
                    if !seen[next] {
                        seen[next] = true;
                        picked.push(self.hosts[next]);
                    }
                    next += 1;
                }
                picked
            }
        }
    }
}

/// Stage-1 platform: the Bordeplage cluster with `n` compute nodes.
///
/// Nodes are grouped in racks of 16. Each node has a 1 Gbps / 100 µs NIC link
/// to its rack switch; rack switches connect to the cluster core over the
/// 10 Gbps / 100 µs backbone.
pub fn cluster_bordeplage(n: usize, host: HostSpec) -> Topology {
    assert!(n > 0, "a cluster needs at least one node");
    let mut b = PlatformBuilder::new();
    let nic = LinkSpec::new(Bandwidth::from_gbps(1.0), SimDuration::from_micros(100));
    let backbone = LinkSpec::new(Bandwidth::from_gbps(10.0), SimDuration::from_micros(100));
    let core = b.add_router("core");
    let racks = n.div_ceil(16);
    let mut switches = Vec::with_capacity(racks);
    for r in 0..racks {
        let sw = b.add_router(format!("rack{r}"));
        b.add_link(format!("backbone{r}"), sw, core, backbone);
        switches.push(sw);
    }
    let mut hosts = Vec::with_capacity(n);
    for i in 0..n {
        let rack = i / 16;
        let ip = IpAddr::from_octets(172, 16, rack as u8, (i % 16 + 1) as u8);
        let h = b.add_host(format!("bordeplage-{i}"), ip, host);
        b.add_host_link(format!("nic{i}"), h, switches[rack], nic);
        hosts.push(h);
    }
    Topology {
        platform: b.build(),
        components: std::iter::once(0..hosts.len()).collect(),
        hosts,
        kind: TopologyKind::Grid5000Cluster,
    }
}

/// Latency of an xDSL last-mile link (not given by the paper; representative
/// ADSL interleaved-path value).
pub const XDSL_LAST_MILE_LATENCY: SimDuration = SimDuration::from_millis(10);
/// Latency of DSLAM-to-router and metro router links in the Daisy topology.
pub const XDSL_METRO_LATENCY: SimDuration = SimDuration::from_millis(1);

/// Stage-2A platform: the Daisy xDSL topology of Fig. 8 with up to 1024 end
/// nodes. Last-mile bandwidths are drawn uniformly in 5–10 Mbps from `seed`,
/// as in the paper ("all links from nodes to DSLAM are of 5 to 10 Mbps, value
/// randomly assigned").
///
/// ```
/// use netsim::{daisy_xdsl, HostSpec, TopologyKind};
///
/// let mut topo = daisy_xdsl(64, HostSpec::default(), 42);
/// assert_eq!(topo.kind, TopologyKind::DaisyXdsl);
/// assert_eq!(topo.hosts.len(), 64);
///
/// // Any host-to-host route bottlenecks on an xDSL last mile (< 10 Mbps).
/// let route = topo.platform.route(topo.hosts[0], topo.hosts[63]);
/// assert!(route.bottleneck.bps() < 10.0e6);
/// ```
pub fn daisy_xdsl(n_nodes: usize, host: HostSpec, seed: u64) -> Topology {
    assert!(
        n_nodes > 0 && n_nodes <= 1024,
        "the Daisy structure holds 1 to 1024 nodes"
    );
    let mut rng = DetRng::new(seed).fork(0xD51);
    let mut b = PlatformBuilder::new();
    let ring = LinkSpec::new(Bandwidth::from_gbps(100.0), XDSL_METRO_LATENCY);
    let metro = LinkSpec::new(Bandwidth::from_gbps(10.0), XDSL_METRO_LATENCY);

    // 5 central routers on a ring (l1 @ 100 Gbps).
    let centrals: Vec<_> = (0..5)
        .map(|i| b.add_router(format!("central{i}")))
        .collect();
    for i in 0..5 {
        b.add_link(format!("ring{i}"), centrals[i], centrals[(i + 1) % 5], ring);
    }
    // 5 petals of 10 routers each (l2 @ 10 Gbps), attached to their central
    // router at both ends of the chain so the petal forms a loop.
    let mut petal_routers = Vec::new(); // [petal][router]
    #[allow(clippy::needless_range_loop)] // indices name both ends of each link
    for p in 0..5 {
        let routers: Vec<_> = (0..10)
            .map(|r| b.add_router(format!("petal{p}-r{r}")))
            .collect();
        b.add_link(format!("petal{p}-in"), centrals[p], routers[0], metro);
        for r in 0..9 {
            b.add_link(format!("petal{p}-l{r}"), routers[r], routers[r + 1], metro);
        }
        b.add_link(format!("petal{p}-out"), routers[9], centrals[p], metro);
        petal_routers.push(routers);
    }
    // 4 DSLAMs per petal router (l2 @ 10 Gbps).
    let mut dslams = Vec::new(); // (petal, router, dslam) -> NodeId
    #[allow(clippy::needless_range_loop)] // indices name both ends of each link
    for p in 0..5 {
        for r in 0..10 {
            for d in 0..4 {
                let ds = b.add_router(format!("dslam{p}-{r}-{d}"));
                b.add_link(format!("uplink{p}-{r}-{d}"), ds, petal_routers[p][r], metro);
                dslams.push((p, r, d, ds));
            }
        }
    }
    // 5 nodes per DSLAM; the exceptional first DSLAM absorbs the 24 extras
    // needed to reach 1024. Hosts are created DSLAM by DSLAM so that
    // consecutive host indices share infrastructure (the `Packed` placement).
    let mut hosts = Vec::with_capacity(n_nodes);
    let mut created = 0usize;
    'outer: for &(p, r, d, ds) in &dslams {
        let capacity = if (p, r, d) == (0, 0, 0) { 5 + 24 } else { 5 };
        for slot in 0..capacity {
            if created == n_nodes {
                break 'outer;
            }
            let ip = IpAddr::from_octets(100 + p as u8, r as u8, d as u8, (slot + 1) as u8);
            let h = b.add_host(format!("xdsl-{p}-{r}-{d}-{slot}"), ip, host);
            let mbps = rng.gen_range(5.0..10.0);
            let last_mile = LinkSpec::new(Bandwidth::from_mbps(mbps), XDSL_LAST_MILE_LATENCY);
            b.add_host_link(format!("dsl{p}-{r}-{d}-{slot}"), h, ds, last_mile);
            hosts.push(h);
            created += 1;
        }
    }
    Topology {
        platform: b.build(),
        components: std::iter::once(0..hosts.len()).collect(),
        hosts,
        kind: TopologyKind::DaisyXdsl,
    }
}

/// Latency of a LAN access link (host to edge switch).
pub const LAN_ACCESS_LATENCY: SimDuration = SimDuration::from_micros(500);
/// Latency of the LAN backbone (edge switch to core).
pub const LAN_BACKBONE_LATENCY: SimDuration = SimDuration::from_micros(500);

/// Stage-2B platform: a campus LAN. "Backbone of 1 Gbps; each node is
/// connected to the backbone at 100 Mbps." Hosts are split over two edge
/// switches that join the 1 Gbps backbone, so cross-switch traffic shares the
/// backbone link.
pub fn lan(n_nodes: usize, host: HostSpec) -> Topology {
    assert!(n_nodes > 0, "a LAN needs at least one node");
    let mut b = PlatformBuilder::new();
    let access = LinkSpec::new(Bandwidth::from_mbps(100.0), LAN_ACCESS_LATENCY);
    let backbone = LinkSpec::new(Bandwidth::from_gbps(1.0), LAN_BACKBONE_LATENCY);
    let core = b.add_router("lan-core");
    let edge_a = b.add_router("edge-a");
    let edge_b = b.add_router("edge-b");
    b.add_link("backbone-a", edge_a, core, backbone);
    b.add_link("backbone-b", edge_b, core, backbone);
    let mut hosts = Vec::with_capacity(n_nodes);
    for i in 0..n_nodes {
        let ip = IpAddr::from_octets(192, 168, (i / 250) as u8, (i % 250 + 1) as u8);
        let h = b.add_host(format!("lan-{i}"), ip, host);
        let edge = if i % 2 == 0 { edge_a } else { edge_b };
        b.add_host_link(format!("drop{i}"), h, edge, access);
        hosts.push(h);
    }
    Topology {
        platform: b.build(),
        components: std::iter::once(0..hosts.len()).collect(),
        hosts,
        kind: TopologyKind::Lan,
    }
}

/// A forest of `trees` mutually **disconnected** DSLAM trees with
/// `nodes_per_tree` end nodes each: per tree, a root router, one DSLAM per
/// 8 nodes uplinked to the root at 10 Gbps, and 5–10 Mbps last miles drawn
/// from `seed`. No link joins two trees, so the platform's flow-sharing
/// graph has exactly `trees` connected components — the shape on which a
/// dirty-component–limited recompute pays off most, and the platform behind
/// the `flow_engine_multi` benchmark scenario.
///
/// Routes exist only within a tree; use [`Topology::components`] /
/// [`Topology::component_hosts`] to draw valid src/dst pairs.
///
/// ```
/// use netsim::{dslam_forest, HostSpec, TopologyKind};
///
/// let topo = dslam_forest(4, 16, HostSpec::default(), 7);
/// assert_eq!(topo.kind, TopologyKind::DslamForest);
/// assert_eq!(topo.components.len(), 4);
/// assert_eq!(topo.component_hosts(2).len(), 16);
///
/// // Hosts of different trees are unreachable from each other...
/// let (a, b) = (topo.component_hosts(0)[0], topo.component_hosts(1)[0]);
/// assert!(topo.platform.route_uncached(a, b).is_none());
/// // ...while hosts of one tree route over its DSLAM fabric.
/// let (c, d) = (topo.component_hosts(3)[0], topo.component_hosts(3)[15]);
/// assert!(topo.platform.route_uncached(c, d).is_some());
/// ```
pub fn dslam_forest(trees: usize, nodes_per_tree: usize, host: HostSpec, seed: u64) -> Topology {
    build_dslam_forest(trees, nodes_per_tree, host, seed, false)
}

/// [`dslam_forest`] with **identical** trees: the last-mile bandwidth
/// sequence restarts from `seed` for every tree, so tree `t` is a replica
/// of tree `0` (same link speeds hop for hop, same latencies as always).
///
/// Replicated trees make replicated *workloads* complete in lock-step:
/// mirroring the same flow pattern into every tree puts an arrival or
/// departure in all trees at the same simulated instants, so each batched
/// flush spans every tree's component at once — the shardable shape the
/// `flow_engine_parallel` benchmark and the parallel-engine tests drive.
/// (The plain [`dslam_forest`] draws one continuous bandwidth stream across
/// trees, so its completions spread out and its flushes are mostly
/// single-component — the shape the *dirty-component* engine is measured
/// on.)
pub fn dslam_forest_mirrored(
    trees: usize,
    nodes_per_tree: usize,
    host: HostSpec,
    seed: u64,
) -> Topology {
    build_dslam_forest(trees, nodes_per_tree, host, seed, true)
}

fn build_dslam_forest(
    trees: usize,
    nodes_per_tree: usize,
    host: HostSpec,
    seed: u64,
    mirrored: bool,
) -> Topology {
    assert!(trees > 0 && trees <= 255, "1 to 255 trees");
    assert!(
        nodes_per_tree > 0 && nodes_per_tree <= 2040,
        "1 to 2040 nodes per tree"
    );
    let mut rng = DetRng::new(seed).fork(0xF03E57);
    let mut b = PlatformBuilder::new();
    let metro = LinkSpec::new(Bandwidth::from_gbps(10.0), XDSL_METRO_LATENCY);
    let mut hosts = Vec::with_capacity(trees * nodes_per_tree);
    let mut components = Vec::with_capacity(trees);
    for t in 0..trees {
        if mirrored {
            // Restart the bandwidth stream so this tree replicates tree 0.
            rng = DetRng::new(seed).fork(0xF03E57);
        }
        let start = hosts.len();
        let root = b.add_router(format!("tree{t}-root"));
        let mut dslams = Vec::new();
        for n in 0..nodes_per_tree {
            let d = n / 8;
            if d == dslams.len() {
                let ds = b.add_router(format!("tree{t}-dslam{d}"));
                b.add_link(format!("tree{t}-uplink{d}"), ds, root, metro);
                dslams.push(ds);
            }
            let ip = IpAddr::from_octets(10, t as u8, d as u8, (n % 8 + 1) as u8);
            let h = b.add_host(format!("forest-{t}-{n}"), ip, host);
            let mbps = rng.gen_range(5.0..10.0);
            let last_mile = LinkSpec::new(Bandwidth::from_mbps(mbps), XDSL_LAST_MILE_LATENCY);
            b.add_host_link(format!("tree{t}-dsl{n}"), h, dslams[d], last_mile);
            hosts.push(h);
        }
        components.push(start..hosts.len());
    }
    Topology {
        platform: b.build(),
        components,
        hosts,
        kind: TopologyKind::DslamForest,
    }
}

/// Latency of one backbone hop in the ISP hierarchy (long-haul metro core
/// distances; not from the paper, recorded as a constant for sweeps).
pub const ISP_BACKBONE_LATENCY: SimDuration = SimDuration::from_millis(5);

/// Fan-outs of the [`isp_hierarchy`] platform. The host count is the product
/// `backbones * metros_per_backbone * dslams_per_metro * hosts_per_dslam`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IspHierarchyParams {
    /// Backbone routers, joined in a 100 Gbps ring.
    pub backbones: usize,
    /// Metro routers uplinked to each backbone router at 40 Gbps.
    pub metros_per_backbone: usize,
    /// DSLAMs uplinked to each metro router at 10 Gbps.
    pub dslams_per_metro: usize,
    /// End hosts per DSLAM, on 5–10 Mbps last miles.
    pub hosts_per_dslam: usize,
}

impl IspHierarchyParams {
    /// Total number of end hosts the fan-outs produce.
    pub fn host_count(&self) -> usize {
        self.backbones * self.metros_per_backbone * self.dslams_per_metro * self.hosts_per_dslam
    }
}

impl Default for IspHierarchyParams {
    /// 4 backbones × 8 metros × 16 DSLAMs × 40 hosts = 20 480 hosts — the
    /// "tens of thousands" shape of the million-flow benchmark.
    fn default() -> Self {
        IspHierarchyParams {
            backbones: 4,
            metros_per_backbone: 8,
            dslams_per_metro: 16,
            hosts_per_dslam: 40,
        }
    }
}

/// The internet-hierarchy platform for million-flow scale: a connected
/// backbone → metro → DSLAM → leaf tree-of-trees parameterised by
/// [`IspHierarchyParams`] fan-outs.
///
/// Structure, top down:
/// * `backbones` core routers on a 100 Gbps ring ([`ISP_BACKBONE_LATENCY`]
///   per hop; a single link for two backbones, nothing for one);
/// * `metros_per_backbone` metro routers per core at 40 Gbps /
///   [`XDSL_METRO_LATENCY`];
/// * `dslams_per_metro` DSLAMs per metro at 10 Gbps / [`XDSL_METRO_LATENCY`];
/// * `hosts_per_dslam` leaves per DSLAM on 5–10 Mbps last miles drawn from
///   `seed` ([`XDSL_LAST_MILE_LATENCY`]), like every xDSL platform here.
///
/// The platform is connected, so — per the forest contract on
/// [`Topology::components`] — it exposes a single component range spanning
/// every host, and a route exists between any host pair. Hosts are created
/// DSLAM by DSLAM, so `Packed` placement shares infrastructure and `Spread`
/// placement crosses the backbone.
///
/// ```
/// use netsim::{isp_hierarchy, HostSpec, IspHierarchyParams, TopologyKind};
///
/// let params = IspHierarchyParams {
///     backbones: 2,
///     metros_per_backbone: 2,
///     dslams_per_metro: 2,
///     hosts_per_dslam: 4,
/// };
/// let mut topo = isp_hierarchy(params, HostSpec::default(), 42);
/// assert_eq!(topo.kind, TopologyKind::IspHierarchy);
/// assert_eq!(topo.hosts.len(), params.host_count());
/// assert_eq!(topo.components, vec![0..32]);
///
/// // Cross-backbone routes exist and bottleneck on an xDSL last mile.
/// let route = topo.platform.route(topo.hosts[0], topo.hosts[31]);
/// assert!(route.bottleneck.bps() < 10.0e6);
/// ```
pub fn isp_hierarchy(params: IspHierarchyParams, host: HostSpec, seed: u64) -> Topology {
    assert!(
        (1..=200).contains(&params.backbones),
        "1 to 200 backbone routers"
    );
    assert!(
        (1..=255).contains(&params.metros_per_backbone),
        "1 to 255 metros per backbone"
    );
    assert!(
        (1..=255).contains(&params.dslams_per_metro),
        "1 to 255 DSLAMs per metro"
    );
    assert!(
        (1..=254).contains(&params.hosts_per_dslam),
        "1 to 254 hosts per DSLAM"
    );
    let mut rng = DetRng::new(seed).fork(0x15B);
    let mut b = PlatformBuilder::new();
    let ring = LinkSpec::new(Bandwidth::from_gbps(100.0), ISP_BACKBONE_LATENCY);
    let metro_up = LinkSpec::new(Bandwidth::from_gbps(40.0), XDSL_METRO_LATENCY);
    let dslam_up = LinkSpec::new(Bandwidth::from_gbps(10.0), XDSL_METRO_LATENCY);

    let cores: Vec<_> = (0..params.backbones)
        .map(|c| b.add_router(format!("core{c}")))
        .collect();
    match params.backbones {
        1 => {}
        2 => {
            b.add_link("core-trunk", cores[0], cores[1], ring);
        }
        n => {
            for c in 0..n {
                b.add_link(format!("core-ring{c}"), cores[c], cores[(c + 1) % n], ring);
            }
        }
    }
    let mut hosts = Vec::with_capacity(params.host_count());
    for (c, &core) in cores.iter().enumerate() {
        for m in 0..params.metros_per_backbone {
            let metro = b.add_router(format!("metro{c}-{m}"));
            b.add_link(format!("metro-up{c}-{m}"), metro, core, metro_up);
            for d in 0..params.dslams_per_metro {
                let dslam = b.add_router(format!("dslam{c}-{m}-{d}"));
                b.add_link(format!("dslam-up{c}-{m}-{d}"), dslam, metro, dslam_up);
                for s in 0..params.hosts_per_dslam {
                    let metro_flat = c * params.metros_per_backbone + m;
                    let ip = IpAddr::from_octets(
                        (metro_flat / 256) as u8,
                        (metro_flat % 256) as u8,
                        d as u8,
                        (s + 1) as u8,
                    );
                    let h = b.add_host(format!("isp-{c}-{m}-{d}-{s}"), ip, host);
                    let mbps = rng.gen_range(5.0..10.0);
                    let last_mile =
                        LinkSpec::new(Bandwidth::from_mbps(mbps), XDSL_LAST_MILE_LATENCY);
                    b.add_host_link(format!("isp-dsl{c}-{m}-{d}-{s}"), h, dslam, last_mile);
                    hosts.push(h);
                }
            }
        }
    }
    Topology {
        platform: b.build(),
        components: std::iter::once(0..hosts.len()).collect(),
        hosts,
        kind: TopologyKind::IspHierarchy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2p_common::DataSize;

    #[test]
    fn cluster_matches_paper_link_parameters() {
        let mut topo = cluster_bordeplage(32, HostSpec::default());
        assert_eq!(topo.hosts.len(), 32);
        let r = topo.platform.route(topo.hosts[0], topo.hosts[1]);
        // Same rack: two 1 Gbps NIC hops.
        assert_eq!(r.bottleneck, Bandwidth::from_gbps(1.0));
        assert_eq!(r.latency, SimDuration::from_micros(200));
        // Across racks: NIC + backbone + backbone + NIC.
        let cross = topo.platform.route(topo.hosts[0], topo.hosts[31]);
        assert_eq!(cross.bottleneck, Bandwidth::from_gbps(1.0));
        assert_eq!(cross.latency, SimDuration::from_micros(400));
        assert_eq!(topo.kind.label(), "Grid5000");
    }

    #[test]
    fn daisy_structure_counts_match_figure_8() {
        let topo = daisy_xdsl(1024, HostSpec::default(), 42);
        assert_eq!(topo.hosts.len(), 1024);
        // 5 centrals + 50 petal routers + 200 DSLAMs + 1024 hosts.
        assert_eq!(topo.platform.nodes().len(), 5 + 50 + 200 + 1024);
        // Last-mile bandwidths must all be in 5..10 Mbps.
        for h in &topo.hosts {
            let node = topo.platform.node_of_host(*h);
            let nic = topo
                .platform
                .links()
                .iter()
                .find(|l| l.from == node)
                .expect("every host has an uplink");
            let mbps = nic.bandwidth.bps() / 1e6;
            assert!((5.0..10.0).contains(&mbps), "last mile at {mbps} Mbps");
        }
    }

    #[test]
    fn daisy_is_deterministic_in_its_seed() {
        let a = daisy_xdsl(64, HostSpec::default(), 7);
        let b = daisy_xdsl(64, HostSpec::default(), 7);
        let c = daisy_xdsl(64, HostSpec::default(), 8);
        let bw = |t: &Topology| -> Vec<u64> {
            t.platform
                .links()
                .iter()
                .map(|l| l.bandwidth.bps() as u64)
                .collect()
        };
        assert_eq!(bw(&a), bw(&b));
        assert_ne!(bw(&a), bw(&c));
    }

    #[test]
    fn daisy_routes_cross_the_last_mile_bottleneck() {
        let mut topo = daisy_xdsl(64, HostSpec::default(), 1);
        let hosts = topo.pick_hosts(2, PlacementPolicy::Spread);
        let r = topo.platform.route(hosts[0], hosts[1]);
        assert!(
            r.bottleneck.bps() < 10.5e6,
            "bottleneck must be an xDSL last mile"
        );
        assert!(
            r.latency >= SimDuration::from_millis(20),
            "two last miles dominate the latency"
        );
        // A 9600-byte halo row takes far longer here than on the cluster.
        let t = r.analytic_transfer_time(DataSize::from_bytes(9600));
        assert!(t > SimDuration::from_millis(25));
    }

    #[test]
    fn lan_matches_paper_description() {
        let mut topo = lan(32, HostSpec::default());
        assert_eq!(topo.hosts.len(), 32);
        let r = topo.platform.route(topo.hosts[0], topo.hosts[1]);
        // Different edge switches: 100 Mbps access is the bottleneck, the
        // 1 Gbps backbone sits in the middle.
        assert_eq!(r.bottleneck, Bandwidth::from_mbps(100.0));
        assert!(r.latency >= SimDuration::from_millis(1));
        assert_eq!(topo.kind, TopologyKind::Lan);
    }

    #[test]
    fn placement_policies_return_distinct_host_sets() {
        let topo = daisy_xdsl(256, HostSpec::default(), 3);
        let packed = topo.pick_hosts(8, PlacementPolicy::Packed);
        let spread = topo.pick_hosts(8, PlacementPolicy::Spread);
        assert_eq!(packed.len(), 8);
        assert_eq!(spread.len(), 8);
        assert_ne!(packed, spread);
        // No duplicates in either.
        let mut p = packed.clone();
        p.sort();
        p.dedup();
        assert_eq!(p.len(), 8);
        let mut s = spread.clone();
        s.sort();
        s.dedup();
        assert_eq!(s.len(), 8);
    }

    #[test]
    fn spread_placement_spans_petals() {
        let topo = daisy_xdsl(1024, HostSpec::default(), 3);
        let spread = topo.pick_hosts(5, PlacementPolicy::Spread);
        // The first octet encodes the petal; 5 spread hosts should cover
        // several petals.
        let petals: std::collections::HashSet<u8> = spread
            .iter()
            .map(|&h| topo.platform.host(h).ip.unwrap().octets()[0])
            .collect();
        assert!(petals.len() >= 3, "spread placement stayed in {petals:?}");
    }

    #[test]
    fn connected_platforms_expose_one_component() {
        for topo in [
            cluster_bordeplage(20, HostSpec::default()),
            daisy_xdsl(32, HostSpec::default(), 5),
            lan(12, HostSpec::default()),
        ] {
            assert_eq!(topo.components, vec![0..topo.hosts.len()]);
            assert_eq!(topo.component_hosts(0), &topo.hosts[..]);
        }
    }

    #[test]
    fn forest_trees_are_disjoint_components() {
        let topo = dslam_forest(5, 24, HostSpec::default(), 11);
        assert_eq!(topo.kind.label(), "xDSL-forest");
        assert_eq!(topo.hosts.len(), 5 * 24);
        assert_eq!(topo.components.len(), 5);
        for c in 0..5 {
            let tree = topo.component_hosts(c);
            assert_eq!(tree.len(), 24);
            // Intra-tree routes exist and bottleneck on a last mile.
            let r = topo
                .platform
                .route_uncached(tree[0], tree[23])
                .expect("intra-tree route");
            assert!(r.bottleneck.bps() < 10.5e6);
            // Inter-tree routes must not exist.
            let other = topo.component_hosts((c + 1) % 5)[0];
            assert!(topo.platform.route_uncached(tree[0], other).is_none());
        }
        // Deterministic in the seed, like the Daisy builder.
        let again = dslam_forest(5, 24, HostSpec::default(), 11);
        let bw = |t: &Topology| -> Vec<u64> {
            t.platform
                .links()
                .iter()
                .map(|l| l.bandwidth.bps() as u64)
                .collect()
        };
        assert_eq!(bw(&topo), bw(&again));
    }

    #[test]
    fn isp_hierarchy_counts_and_structure_follow_fan_outs() {
        let params = IspHierarchyParams {
            backbones: 3,
            metros_per_backbone: 2,
            dslams_per_metro: 2,
            hosts_per_dslam: 5,
        };
        let mut topo = isp_hierarchy(params, HostSpec::default(), 9);
        assert_eq!(topo.kind.label(), "ISP-hierarchy");
        assert_eq!(topo.hosts.len(), params.host_count());
        // 3 cores + 6 metros + 12 dslams + 60 hosts.
        assert_eq!(topo.platform.nodes().len(), 3 + 6 + 12 + 60);
        assert_eq!(topo.components, vec![0..60]);
        // Same-DSLAM route: two last miles through the DSLAM only.
        let near = topo.platform.route(topo.hosts[0], topo.hosts[1]);
        assert_eq!(near.links.len(), 2);
        assert!(near.bottleneck.bps() < 10.0e6);
        // Cross-backbone route climbs the full hierarchy: last mile, DSLAM
        // uplink, metro uplink, ring, and down again.
        let far = topo
            .platform
            .route(topo.hosts[0], *topo.hosts.last().unwrap());
        assert!(far.links.len() >= 7);
        assert!(far.latency >= SimDuration::from_millis(2 * 10 + 5));
        assert!(far.bottleneck.bps() < 10.0e6, "last mile still bottlenecks");
    }

    #[test]
    fn isp_hierarchy_is_deterministic_in_its_seed() {
        let params = IspHierarchyParams {
            backbones: 2,
            metros_per_backbone: 2,
            dslams_per_metro: 3,
            hosts_per_dslam: 4,
        };
        let bw = |t: &Topology| -> Vec<u64> {
            t.platform
                .links()
                .iter()
                .map(|l| l.bandwidth.bps() as u64)
                .collect()
        };
        let a = isp_hierarchy(params, HostSpec::default(), 7);
        let b = isp_hierarchy(params, HostSpec::default(), 7);
        let c = isp_hierarchy(params, HostSpec::default(), 8);
        assert_eq!(bw(&a), bw(&b));
        assert_ne!(bw(&a), bw(&c));
    }

    #[test]
    fn spread_placement_returns_distinct_hosts_even_when_the_stride_wraps() {
        // 7 hosts, n = 5 -> stride 1; the old adjacent-only dedup was safe
        // here, but n close to the host count with wrapping strides used to
        // produce repeats. Sweep every n for several platform sizes.
        for size in [1usize, 2, 3, 5, 7, 16, 33] {
            let topo = lan(size, HostSpec::default());
            for n in 0..=size {
                let picked = topo.pick_hosts(n, PlacementPolicy::Spread);
                assert_eq!(picked.len(), n, "size {size}, n {n}");
                let mut sorted = picked.clone();
                sorted.sort();
                sorted.dedup();
                assert_eq!(sorted.len(), n, "duplicates for size {size}, n {n}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "requested")]
    fn picking_too_many_hosts_panics() {
        let topo = lan(4, HostSpec::default());
        topo.pick_hosts(5, PlacementPolicy::Packed);
    }

    #[test]
    fn cluster_ips_follow_rack_structure() {
        let topo = cluster_bordeplage(20, HostSpec::default());
        let ip0 = topo.platform.host(topo.hosts[0]).ip.unwrap();
        let ip1 = topo.platform.host(topo.hosts[1]).ip.unwrap();
        let ip17 = topo.platform.host(topo.hosts[17]).ip.unwrap();
        assert!(ip0.common_prefix_len(ip1) >= 24, "same rack shares a /24");
        assert!(ip0.common_prefix_len(ip17) < ip0.common_prefix_len(ip1));
    }
}
