//! Trace replay — the MSG-like simulation kernel.
//!
//! dPerf's prediction step "uses the MSG module for replaying trace files
//! based on a deployment platform defined by us" (paper §III-D.1). This module
//! is that replay kernel: every process (rank) owns a *script* of operations —
//! compute for some duration, send a message, wait for a message — and the
//! engine executes all scripts against a [`Platform`], yielding the simulated
//! makespan `t_predicted`.
//!
//! Message semantics are the eager/rendezvous-free semantics the P2PDC
//! obstacle code relies on: a `Send` is asynchronous (the sender continues
//! after paying the protocol's per-message CPU cost), a `Recv` blocks until a
//! matching message (same source rank and tag) has been fully delivered.
//! Per-message protocol costs ([`ProtocolCosts`]) model P2PSAP's header bytes
//! and send/receive processing time; charging the receive cost on the
//! receiving host serialises message handling at a coordinator exactly like
//! the real protocol stack would.
//!
//! Two entry points share the same kernel: [`replay`] runs a fixed script set
//! to completion (the batch shape dPerf's predictor uses), while
//! [`ReplaySession`] keeps the replay alive between calls — operations can be
//! streamed in with [`ReplaySession::push_ops`], virtual time advanced
//! incrementally, and the whole session checkpointed to disk and resumed
//! bit-identically through the [`checkpoint`](mod@crate::checkpoint) envelope.

use crate::checkpoint::{self, CheckpointError};
use crate::event::{run_world, Scheduler, World};
use crate::network::{FlowDelivery, NetEvent, NetStats, NetWorldEvent, Network, SharingMode};
use crate::platform::Platform;
use crate::pool::EngineConfig;
use p2p_common::{DataSize, HostId, SimDuration, SimTime};
use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::{HashMap, VecDeque};
use std::path::Path;

/// One operation of a process script.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplayOp {
    /// Busy the CPU for the given duration (measured or modelled block time).
    Compute {
        /// How long the CPU is busy.
        duration: SimDuration,
    },
    /// Asynchronously send `bytes` to rank `to` with the given tag.
    Send {
        /// Destination rank.
        to: usize,
        /// Payload size on the wire (before protocol headers).
        bytes: u64,
        /// Message tag matched by the receiver.
        tag: u32,
    },
    /// Block until a message from rank `from` with the given tag arrives.
    Recv {
        /// Source rank to match.
        from: usize,
        /// Message tag to match.
        tag: u32,
    },
    /// Convenience: send to `to`, then wait for a message from `from`
    /// (the classic halo exchange). Expanded to `Send` + `Recv` internally.
    SendRecv {
        /// Destination rank of the send half.
        to: usize,
        /// Source rank the receive half waits for.
        from: usize,
        /// Payload size of the send half.
        bytes: u64,
        /// Tag used by both halves.
        tag: u32,
    },
}

/// The full operation list of one rank.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessScript {
    /// The rank this script belongs to (must equal its index in the script list).
    pub rank: usize,
    /// Operations, executed in order.
    pub ops: Vec<ReplayOp>,
}

/// Per-message protocol overheads (models P2PSAP's channel stack).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProtocolCosts {
    /// Header/control bytes added to every message on the wire.
    pub header_bytes: u64,
    /// CPU time charged at the sender per message.
    pub send_cpu: SimDuration,
    /// CPU time charged at the receiver per message, once it is consumed.
    pub recv_cpu: SimDuration,
}

impl ProtocolCosts {
    /// No overhead at all (raw network model).
    pub fn none() -> Self {
        ProtocolCosts {
            header_bytes: 0,
            send_cpu: SimDuration::ZERO,
            recv_cpu: SimDuration::ZERO,
        }
    }
}

impl Default for ProtocolCosts {
    fn default() -> Self {
        ProtocolCosts::none()
    }
}

/// Configuration of a replay run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplayConfig {
    /// Bandwidth-sharing model for bulk transfers.
    pub sharing: SharingMode,
    /// Per-message protocol costs.
    pub protocol: ProtocolCosts,
    /// Rebalance engine and threading configuration for
    /// `SharingMode::MaxMinFair` (ignored under `Bottleneck`). Every
    /// engine produces identical simulated results at every worker budget;
    /// non-default choices exist for differential tests and benchmarks.
    /// The default engine, [`crate::RebalanceEngine::WarmStart`], resumes
    /// each component's fill from its persisted bottleneck record.
    pub config: EngineConfig,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            sharing: SharingMode::Bottleneck,
            protocol: ProtocolCosts::none(),
            config: EngineConfig::default(),
        }
    }
}

/// Outcome of a replay.
#[derive(Debug, Clone)]
pub struct ReplayResult {
    /// Completion time of the slowest rank — the predicted execution time.
    pub makespan: SimDuration,
    /// Completion time of every rank.
    pub finish_times: Vec<SimTime>,
    /// Total CPU-busy time per rank (compute blocks + protocol processing).
    pub compute_time: Vec<SimDuration>,
    /// Total time each rank spent blocked in `Recv`.
    pub wait_time: Vec<SimDuration>,
    /// Number of messages sent across all ranks.
    pub messages_sent: u64,
    /// Network-level statistics.
    pub net_stats: NetStats,
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
enum ProcState {
    /// Ready to execute the next operation.
    Ready,
    /// CPU busy (compute block or protocol processing) until a `Resume` fires.
    Busy,
    /// Blocked waiting for a message.
    Waiting { from: usize, tag: u32 },
    /// Script exhausted.
    Done,
}

#[derive(Debug)]
struct Proc {
    host: HostId,
    ops: Vec<ReplayOp>,
    pc: usize,
    state: ProcState,
    mailbox: HashMap<(usize, u32), VecDeque<()>>,
    finish: Option<SimTime>,
    compute_total: SimDuration,
    wait_total: SimDuration,
    wait_since: SimTime,
}

// Hand-written serde: the mailbox is keyed by `(usize, u32)` tuples, which
// the shim's map encoding cannot express as JSON object keys. Each non-empty
// queue becomes a `[from, tag, count]` triple (the payloads are unit values,
// so a queue is fully described by its length), sorted so the encoding is
// canonical regardless of hash iteration order.
impl Serialize for Proc {
    fn to_value(&self) -> Value {
        let mut mail: Vec<(usize, u32, u64)> = self
            .mailbox
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(&(from, tag), q)| (from, tag, q.len() as u64))
            .collect();
        mail.sort_unstable();
        Value::Object(vec![
            ("host".to_owned(), self.host.to_value()),
            ("ops".to_owned(), self.ops.to_value()),
            ("pc".to_owned(), self.pc.to_value()),
            ("state".to_owned(), self.state.to_value()),
            (
                "mailbox".to_owned(),
                Value::Array(
                    mail.into_iter()
                        .map(|(f, t, n)| {
                            Value::Array(vec![f.to_value(), t.to_value(), n.to_value()])
                        })
                        .collect(),
                ),
            ),
            ("finish".to_owned(), self.finish.to_value()),
            ("compute_total".to_owned(), self.compute_total.to_value()),
            ("wait_total".to_owned(), self.wait_total.to_value()),
            ("wait_since".to_owned(), self.wait_since.to_value()),
        ])
    }
}

impl Deserialize for Proc {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let fields = v
            .as_object()
            .ok_or_else(|| DeError::expected("object", "Proc", v))?;
        let ops: Vec<ReplayOp> = serde::field(fields, "ops", "Proc")?;
        let pc: usize = serde::field(fields, "pc", "Proc")?;
        if pc > ops.len() {
            return Err(DeError::msg(format!(
                "program counter {pc} is past the end of a {}-op script",
                ops.len()
            )));
        }
        let triples: Vec<(usize, u32, u64)> = serde::field(fields, "mailbox", "Proc")?;
        let mut mailbox: HashMap<(usize, u32), VecDeque<()>> = HashMap::new();
        for (from, tag, count) in triples {
            mailbox.insert(
                (from, tag),
                std::iter::repeat_n((), count as usize).collect(),
            );
        }
        Ok(Proc {
            host: serde::field(fields, "host", "Proc")?,
            ops,
            pc,
            state: serde::field(fields, "state", "Proc")?,
            mailbox,
            finish: serde::field(fields, "finish", "Proc")?,
            compute_total: serde::field(fields, "compute_total", "Proc")?,
            wait_total: serde::field(fields, "wait_total", "Proc")?,
            wait_since: serde::field(fields, "wait_since", "Proc")?,
        })
    }
}

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
enum Ev {
    Net(NetEvent),
    Resume { rank: usize },
}

impl From<NetEvent> for Ev {
    fn from(e: NetEvent) -> Self {
        Ev::Net(e)
    }
}

impl NetWorldEvent for Ev {
    fn as_net_event(&self) -> Option<NetEvent> {
        match self {
            Ev::Net(e) => Some(*e),
            Ev::Resume { .. } => None,
        }
    }
}

struct ReplayWorld {
    net: Network,
    procs: Vec<Proc>,
    protocol: ProtocolCosts,
    token_info: HashMap<u64, (usize, usize, u32)>, // token -> (src, dst, tag)
    next_token: u64,
    messages_sent: u64,
}

impl ReplayWorld {
    fn advance(&mut self, sched: &mut Scheduler<Ev>, rank: usize) {
        loop {
            if self.procs[rank].state == ProcState::Done {
                return;
            }
            let pc = self.procs[rank].pc;
            if pc >= self.procs[rank].ops.len() {
                self.procs[rank].state = ProcState::Done;
                self.procs[rank].finish = Some(sched.now());
                return;
            }
            let op = self.procs[rank].ops[pc];
            match op {
                ReplayOp::Compute { duration } => {
                    self.procs[rank].pc += 1;
                    self.procs[rank].state = ProcState::Busy;
                    self.procs[rank].compute_total += duration;
                    sched.schedule_in(duration, Ev::Resume { rank });
                    return;
                }
                ReplayOp::Send { to, bytes, tag } => {
                    self.procs[rank].pc += 1;
                    self.post_send(sched, rank, to, bytes, tag);
                    let cpu = self.protocol.send_cpu;
                    if !cpu.is_zero() {
                        self.procs[rank].state = ProcState::Busy;
                        self.procs[rank].compute_total += cpu;
                        sched.schedule_in(cpu, Ev::Resume { rank });
                        return;
                    }
                }
                ReplayOp::Recv { from, tag } => {
                    let available = self.procs[rank]
                        .mailbox
                        .get_mut(&(from, tag))
                        .and_then(|q| q.pop_front())
                        .is_some();
                    if available {
                        self.procs[rank].pc += 1;
                        let cpu = self.protocol.recv_cpu;
                        if !cpu.is_zero() {
                            self.procs[rank].state = ProcState::Busy;
                            self.procs[rank].compute_total += cpu;
                            sched.schedule_in(cpu, Ev::Resume { rank });
                            return;
                        }
                    } else {
                        self.procs[rank].state = ProcState::Waiting { from, tag };
                        self.procs[rank].wait_since = sched.now();
                        return;
                    }
                }
                ReplayOp::SendRecv { .. } => {
                    unreachable!("SendRecv is expanded before the replay starts")
                }
            }
        }
    }

    fn post_send(
        &mut self,
        sched: &mut Scheduler<Ev>,
        from: usize,
        to: usize,
        bytes: u64,
        tag: u32,
    ) {
        assert!(to < self.procs.len(), "send to unknown rank {to}");
        let token = self.next_token;
        self.next_token += 1;
        self.token_info.insert(token, (from, to, tag));
        self.messages_sent += 1;
        let size = DataSize::from_bytes(bytes + self.protocol.header_bytes);
        let src_host = self.procs[from].host;
        let dst_host = self.procs[to].host;
        self.net.start_flow(sched, src_host, dst_host, size, token);
    }

    fn deliver(&mut self, sched: &mut Scheduler<Ev>, delivery: FlowDelivery) {
        let (src, dst, tag) = self
            .token_info
            .remove(&delivery.token)
            .expect("delivery for unknown token");
        self.procs[dst]
            .mailbox
            .entry((src, tag))
            .or_default()
            .push_back(());
        if let ProcState::Waiting { from, tag: wtag } = self.procs[dst].state {
            if from == src && wtag == tag {
                // Consume the message we were waiting for and resume.
                self.procs[dst]
                    .mailbox
                    .get_mut(&(src, tag))
                    .and_then(|q| q.pop_front())
                    .expect("message just enqueued");
                let waited = sched.now().duration_since(self.procs[dst].wait_since);
                self.procs[dst].wait_total += waited;
                self.procs[dst].pc += 1;
                let cpu = self.protocol.recv_cpu;
                if cpu.is_zero() {
                    self.procs[dst].state = ProcState::Ready;
                    self.advance(sched, dst);
                } else {
                    self.procs[dst].state = ProcState::Busy;
                    self.procs[dst].compute_total += cpu;
                    sched.schedule_in(cpu, Ev::Resume { rank: dst });
                }
            }
        }
    }
}

impl World for ReplayWorld {
    type Event = Ev;

    fn handle(&mut self, sched: &mut Scheduler<Ev>, event: Ev) {
        match event {
            Ev::Resume { rank } => {
                self.procs[rank].state = ProcState::Ready;
                self.advance(sched, rank);
            }
            Ev::Net(ne) => {
                let deliveries = self.net.on_event(sched, ne);
                for d in deliveries {
                    self.deliver(sched, d);
                }
            }
        }
    }
}

/// Expand `SendRecv` into `Send` followed by `Recv`.
fn expand_ops(ops: &[ReplayOp]) -> Vec<ReplayOp> {
    let mut out = Vec::with_capacity(ops.len());
    for &op in ops {
        match op {
            ReplayOp::SendRecv {
                to,
                from,
                bytes,
                tag,
            } => {
                out.push(ReplayOp::Send { to, bytes, tag });
                out.push(ReplayOp::Recv { from, tag });
            }
            other => out.push(other),
        }
    }
    out
}

/// An interruptible, checkpointable replay.
///
/// [`replay`] runs a script set to completion in one call; a session keeps
/// the same kernel alive between calls so the embedding service can
///
/// * advance virtual time in increments ([`ReplaySession::run_until`]),
/// * append operations to a rank's script while the replay is live
///   ([`ReplaySession::push_ops`] — the streaming front end),
/// * pause the whole thing to disk ([`ReplaySession::save`]) and resume it
///   later ([`ReplaySession::load`]) with bit-identical timing.
///
/// ```
/// use netsim::replay::{ProcessScript, ReplayConfig, ReplayOp, ReplaySession};
/// use netsim::{cluster_bordeplage, HostSpec};
///
/// let topo = cluster_bordeplage(2, HostSpec::default());
/// let scripts = vec![
///     ProcessScript { rank: 0, ops: vec![ReplayOp::Send { to: 1, bytes: 12_500, tag: 0 }] },
///     ProcessScript { rank: 1, ops: vec![ReplayOp::Recv { from: 0, tag: 0 }] },
/// ];
/// let mut session = ReplaySession::new(
///     topo.platform, &topo.hosts[..2], &scripts, &ReplayConfig::default());
/// session.run_until(None);
///
/// // Checkpoint at the end, restore, and stream more work into rank 0.
/// let snapshot = session.checkpoint();
/// let mut resumed = ReplaySession::restore(&snapshot).unwrap();
/// resumed.push_ops(0, &[ReplayOp::Compute {
///     duration: p2p_common::SimDuration::from_millis(5) }]);
/// resumed.run_until(None);
/// assert!(resumed.result().makespan > session.result().makespan);
/// ```
pub struct ReplaySession {
    world: ReplayWorld,
    sched: Scheduler<Ev>,
}

impl ReplaySession {
    /// Set up a replay of `scripts` on `platform`, mapping rank `i` to
    /// `rank_hosts[i]`, without running it. Every rank is primed with a
    /// wake-up at `t = 0`.
    ///
    /// Panics if the number of scripts and host mappings differ, or if a
    /// script's `rank` field does not match its position.
    pub fn new(
        platform: Platform,
        rank_hosts: &[HostId],
        scripts: &[ProcessScript],
        cfg: &ReplayConfig,
    ) -> Self {
        assert_eq!(
            rank_hosts.len(),
            scripts.len(),
            "need exactly one host per process script"
        );
        for (i, s) in scripts.iter().enumerate() {
            assert_eq!(s.rank, i, "script {i} declares rank {}", s.rank);
        }
        let procs: Vec<Proc> = scripts
            .iter()
            .zip(rank_hosts)
            .map(|(s, &h)| Proc {
                host: h,
                ops: expand_ops(&s.ops),
                pc: 0,
                state: ProcState::Ready,
                mailbox: HashMap::new(),
                finish: None,
                compute_total: SimDuration::ZERO,
                wait_total: SimDuration::ZERO,
                wait_since: SimTime::ZERO,
            })
            .collect();
        let net = Network::with_config(platform, cfg.sharing, cfg.config);
        let world = ReplayWorld {
            net,
            procs,
            protocol: cfg.protocol,
            token_info: HashMap::new(),
            next_token: 0,
            messages_sent: 0,
        };
        let mut sched: Scheduler<Ev> = Scheduler::new();
        // Kick every rank off at t = 0.
        for rank in 0..world.procs.len() {
            sched.schedule_at(SimTime::ZERO, Ev::Resume { rank });
        }
        ReplaySession { world, sched }
    }

    /// Run until the event queue is empty, or (with `Some(limit)`) until the
    /// next event would fire past `limit`. Returns the timestamp of the last
    /// event processed.
    pub fn run_until(&mut self, limit: Option<SimTime>) -> SimTime {
        run_world(&mut self.world, &mut self.sched, limit)
    }

    /// The session's virtual clock.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Events still queued. Zero means every rank is `Done` or deadlocked
    /// waiting for a message no one will send.
    pub fn pending(&self) -> usize {
        self.sched.pending()
    }

    /// Number of ranks in the replay.
    pub fn ranks(&self) -> usize {
        self.world.procs.len()
    }

    /// True once every rank has run off the end of its script.
    pub fn finished(&self) -> bool {
        self.world.procs.iter().all(|p| p.finish.is_some())
    }

    /// Append operations to rank `rank`'s script while the replay is live —
    /// the streaming entry point. `SendRecv` is expanded exactly as in
    /// [`ReplaySession::new`]. A rank that had already finished is revived:
    /// its finish time is cleared and it resumes at the current virtual time.
    ///
    /// Panics if `rank` is out of range.
    pub fn push_ops(&mut self, rank: usize, ops: &[ReplayOp]) {
        assert!(rank < self.world.procs.len(), "unknown rank {rank}");
        let expanded = expand_ops(ops);
        let p = &mut self.world.procs[rank];
        p.ops.extend(expanded);
        if p.state == ProcState::Done {
            p.state = ProcState::Ready;
            p.finish = None;
            self.sched
                .schedule_at(self.sched.now(), Ev::Resume { rank });
        }
    }

    /// Summarise the replay. Panics (with the blocked rank's position) if a
    /// rank has not finished — call after [`ReplaySession::run_until`] has
    /// drained the queue.
    pub fn result(&self) -> ReplayResult {
        for (i, p) in self.world.procs.iter().enumerate() {
            assert!(
                p.finish.is_some(),
                "rank {i} never finished (blocked at pc {} of {}): unmatched receive?",
                p.pc,
                p.ops.len()
            );
        }
        let finish_times: Vec<SimTime> =
            self.world.procs.iter().map(|p| p.finish.unwrap()).collect();
        let makespan = finish_times
            .iter()
            .copied()
            .max()
            .unwrap_or(SimTime::ZERO)
            .duration_since(SimTime::ZERO);
        ReplayResult {
            makespan,
            finish_times,
            compute_time: self.world.procs.iter().map(|p| p.compute_total).collect(),
            wait_time: self.world.procs.iter().map(|p| p.wait_total).collect(),
            messages_sent: self.world.messages_sent,
            net_stats: self.world.net.stats().clone(),
        }
    }

    /// Encode the full session into a checkpoint envelope [`Value`]. The
    /// process table, in-flight message tokens and protocol costs ride in
    /// the envelope's `world` slot alongside the network and scheduler.
    pub fn checkpoint(&self) -> Value {
        let world = Value::Object(vec![
            ("procs".to_owned(), self.world.procs.to_value()),
            ("protocol".to_owned(), self.world.protocol.to_value()),
            ("token_info".to_owned(), self.world.token_info.to_value()),
            ("next_token".to_owned(), self.world.next_token.to_value()),
            (
                "messages_sent".to_owned(),
                self.world.messages_sent.to_value(),
            ),
        ]);
        checkpoint::encode(&self.world.net, &self.sched, world)
    }

    /// Rebuild a session from an envelope produced by
    /// [`ReplaySession::checkpoint`].
    pub fn restore(v: &Value) -> Result<Self, CheckpointError> {
        let restored = checkpoint::decode::<Ev>(v)?;
        let fields = restored.world.as_object().ok_or_else(|| {
            CheckpointError::Format("replay session world slot is not an object".to_owned())
        })?;
        let procs: Vec<Proc> = serde::field(fields, "procs", "ReplaySession")?;
        let hosts = restored.network.platform().host_count();
        for (i, p) in procs.iter().enumerate() {
            if p.host.index() >= hosts {
                return Err(CheckpointError::Format(format!(
                    "rank {i} maps to {} but the platform has {hosts} hosts",
                    p.host
                )));
            }
        }
        let token_info: HashMap<u64, (usize, usize, u32)> =
            serde::field(fields, "token_info", "ReplaySession")?;
        for (token, &(src, dst, _)) in &token_info {
            if src >= procs.len() || dst >= procs.len() {
                return Err(CheckpointError::Format(format!(
                    "in-flight message {token} references a rank outside the {}-rank replay",
                    procs.len()
                )));
            }
        }
        Ok(ReplaySession {
            world: ReplayWorld {
                net: restored.network,
                procs,
                protocol: serde::field(fields, "protocol", "ReplaySession")?,
                token_info,
                next_token: serde::field(fields, "next_token", "ReplaySession")?,
                messages_sent: serde::field(fields, "messages_sent", "ReplaySession")?,
            },
            sched: restored.scheduler,
        })
    }

    /// Write the session to a checkpoint file.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let json = serde_json::to_string(&self.checkpoint())
            .map_err(|e| CheckpointError::Format(e.to_string()))?;
        std::fs::write(path, json)?;
        Ok(())
    }

    /// Resume a session from a file written by [`ReplaySession::save`].
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let s = std::fs::read_to_string(path)?;
        let v: Value =
            serde_json::from_str(&s).map_err(|e| CheckpointError::Format(e.to_string()))?;
        Self::restore(&v)
    }
}

/// Replay `scripts` on `platform`, mapping rank `i` to `rank_hosts[i]`.
///
/// Panics if the number of scripts and host mappings differ, or if a script's
/// `rank` field does not match its position.
pub fn replay(
    platform: Platform,
    rank_hosts: &[HostId],
    scripts: &[ProcessScript],
    cfg: &ReplayConfig,
) -> ReplayResult {
    let mut session = ReplaySession::new(platform, rank_hosts, scripts, cfg);
    session.run_until(None);
    session.result()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{HostSpec, LinkSpec, PlatformBuilder};
    use p2p_common::Bandwidth;

    fn star_platform(n: usize) -> (Platform, Vec<HostId>) {
        let mut b = PlatformBuilder::new();
        let sw = b.add_router("sw");
        let spec = LinkSpec::new(Bandwidth::from_mbps(100.0), SimDuration::from_micros(100));
        let hosts: Vec<HostId> = (0..n)
            .map(|i| {
                let h = b.add_host(
                    format!("h{i}"),
                    format!("10.0.0.{}", i + 1).parse().unwrap(),
                    HostSpec::default(),
                );
                b.add_host_link(format!("l{i}"), h, sw, spec);
                h
            })
            .collect();
        (b.build(), hosts)
    }

    fn compute(ms: u64) -> ReplayOp {
        ReplayOp::Compute {
            duration: SimDuration::from_millis(ms),
        }
    }

    #[test]
    fn pure_compute_makespan_is_the_slowest_rank() {
        let (p, hosts) = star_platform(3);
        let scripts = vec![
            ProcessScript {
                rank: 0,
                ops: vec![compute(10)],
            },
            ProcessScript {
                rank: 1,
                ops: vec![compute(30)],
            },
            ProcessScript {
                rank: 2,
                ops: vec![compute(20), compute(5)],
            },
        ];
        let res = replay(p, &hosts, &scripts, &ReplayConfig::default());
        assert_eq!(res.makespan, SimDuration::from_millis(30));
        assert_eq!(res.compute_time[2], SimDuration::from_millis(25));
        assert_eq!(res.messages_sent, 0);
    }

    #[test]
    fn ping_message_timing_is_exact() {
        let (p, hosts) = star_platform(2);
        // 12500 bytes over 100 Mbps = 1 ms, plus 200 us of route latency.
        let scripts = vec![
            ProcessScript {
                rank: 0,
                ops: vec![ReplayOp::Send {
                    to: 1,
                    bytes: 12_500,
                    tag: 0,
                }],
            },
            ProcessScript {
                rank: 1,
                ops: vec![ReplayOp::Recv { from: 0, tag: 0 }],
            },
        ];
        let res = replay(p, &hosts, &scripts, &ReplayConfig::default());
        assert_eq!(res.makespan, SimDuration::from_micros(1200));
        assert_eq!(res.wait_time[1], SimDuration::from_micros(1200));
        assert_eq!(res.wait_time[0], SimDuration::ZERO);
        assert_eq!(res.messages_sent, 1);
    }

    #[test]
    fn sendrecv_exchange_does_not_deadlock() {
        let (p, hosts) = star_platform(2);
        let xchg = |other: usize| ReplayOp::SendRecv {
            to: other,
            from: other,
            bytes: 9600,
            tag: 7,
        };
        let scripts = vec![
            ProcessScript {
                rank: 0,
                ops: vec![compute(1), xchg(1), compute(1)],
            },
            ProcessScript {
                rank: 1,
                ops: vec![compute(2), xchg(0), compute(1)],
            },
        ];
        let res = replay(p, &hosts, &scripts, &ReplayConfig::default());
        // Rank 1 computes 2 ms, exchanges (~0.968 ms), computes 1 ms more.
        assert!(res.makespan > SimDuration::from_millis(3));
        assert!(res.makespan < SimDuration::from_millis(5));
    }

    #[test]
    fn recv_before_send_blocks_until_delivery() {
        let (p, hosts) = star_platform(2);
        let scripts = vec![
            ProcessScript {
                rank: 0,
                ops: vec![
                    compute(50),
                    ReplayOp::Send {
                        to: 1,
                        bytes: 100,
                        tag: 1,
                    },
                ],
            },
            ProcessScript {
                rank: 1,
                ops: vec![ReplayOp::Recv { from: 0, tag: 1 }],
            },
        ];
        let res = replay(p, &hosts, &scripts, &ReplayConfig::default());
        assert!(res.wait_time[1] >= SimDuration::from_millis(50));
        assert!(res.makespan >= SimDuration::from_millis(50));
    }

    #[test]
    fn tags_disambiguate_messages() {
        let (p, hosts) = star_platform(2);
        // Rank 0 sends tag 2 then tag 1; rank 1 waits for tag 1 first. Since
        // matching is by (source, tag) the replay must not mis-deliver.
        let scripts = vec![
            ProcessScript {
                rank: 0,
                ops: vec![
                    ReplayOp::Send {
                        to: 1,
                        bytes: 50_000,
                        tag: 2,
                    },
                    ReplayOp::Send {
                        to: 1,
                        bytes: 100,
                        tag: 1,
                    },
                ],
            },
            ProcessScript {
                rank: 1,
                ops: vec![
                    ReplayOp::Recv { from: 0, tag: 1 },
                    ReplayOp::Recv { from: 0, tag: 2 },
                ],
            },
        ];
        let res = replay(p, &hosts, &scripts, &ReplayConfig::default());
        assert_eq!(res.messages_sent, 2);
        assert!(res.finish_times[1] > SimTime::ZERO);
    }

    #[test]
    fn protocol_costs_are_charged_and_serialised() {
        let (p, hosts) = star_platform(3);
        let protocol = ProtocolCosts {
            header_bytes: 64,
            send_cpu: SimDuration::from_micros(50),
            recv_cpu: SimDuration::from_micros(50),
        };
        // Ranks 1 and 2 both send to rank 0, which receives both.
        let scripts = vec![
            ProcessScript {
                rank: 0,
                ops: vec![
                    ReplayOp::Recv { from: 1, tag: 0 },
                    ReplayOp::Recv { from: 2, tag: 0 },
                ],
            },
            ProcessScript {
                rank: 1,
                ops: vec![ReplayOp::Send {
                    to: 0,
                    bytes: 8,
                    tag: 0,
                }],
            },
            ProcessScript {
                rank: 2,
                ops: vec![ReplayOp::Send {
                    to: 0,
                    bytes: 8,
                    tag: 0,
                }],
            },
        ];
        let cfg = ReplayConfig {
            sharing: SharingMode::Bottleneck,
            protocol,
            ..ReplayConfig::default()
        };
        let res = replay(p, &hosts, &scripts, &cfg);
        // Receiver pays 2 * 50 us of protocol processing.
        assert_eq!(res.compute_time[0], SimDuration::from_micros(100));
        assert_eq!(res.compute_time[1], SimDuration::from_micros(50));
        // Headers inflate the wire size.
        assert_eq!(res.net_stats.bytes_delivered, 2 * (8 + 64));
    }

    #[test]
    #[should_panic(expected = "never finished")]
    fn unmatched_receive_is_reported() {
        let (p, hosts) = star_platform(2);
        let scripts = vec![
            ProcessScript {
                rank: 0,
                ops: vec![],
            },
            ProcessScript {
                rank: 1,
                ops: vec![ReplayOp::Recv { from: 0, tag: 9 }],
            },
        ];
        replay(p, &hosts, &scripts, &ReplayConfig::default());
    }

    #[test]
    fn ring_pipeline_over_many_ranks_completes() {
        let n = 16;
        let (p, hosts) = star_platform(n);
        let mut scripts = Vec::new();
        for r in 0..n {
            let mut ops = vec![compute(1)];
            if r > 0 {
                ops.push(ReplayOp::Recv {
                    from: r - 1,
                    tag: 0,
                });
            }
            if r + 1 < n {
                ops.push(ReplayOp::Send {
                    to: r + 1,
                    bytes: 1000,
                    tag: 0,
                });
            }
            scripts.push(ProcessScript { rank: r, ops });
        }
        let res = replay(p, &hosts, &scripts, &ReplayConfig::default());
        assert_eq!(res.messages_sent, (n - 1) as u64);
        // The token must travel through all ranks: makespan well above a single hop.
        assert!(res.makespan > SimDuration::from_millis(3));
    }

    #[test]
    fn session_checkpoint_mid_replay_restores_bit_identically() {
        // A congested max–min run with protocol costs, paused part-way.
        let n = 8;
        let (p, hosts) = star_platform(n);
        let mut scripts = Vec::new();
        for r in 0..n {
            let mut ops = vec![compute(1 + r as u64)];
            for _ in 0..3 {
                ops.push(ReplayOp::Send {
                    to: (r + 1) % n,
                    bytes: 400_000,
                    tag: 5,
                });
                ops.push(ReplayOp::Recv {
                    from: (r + n - 1) % n,
                    tag: 5,
                });
            }
            scripts.push(ProcessScript { rank: r, ops });
        }
        let cfg = ReplayConfig {
            sharing: SharingMode::MaxMinFair,
            protocol: ProtocolCosts {
                header_bytes: 64,
                send_cpu: SimDuration::from_micros(20),
                recv_cpu: SimDuration::from_micros(20),
            },
            ..ReplayConfig::default()
        };

        let mut uninterrupted = ReplaySession::new(p.clone(), &hosts, &scripts, &cfg);
        uninterrupted.run_until(None);
        let want = uninterrupted.result();

        let mut paused = ReplaySession::new(p, &hosts, &scripts, &cfg);
        paused.run_until(Some(SimTime::from_millis(20)));
        let snapshot = paused.checkpoint();
        // Serialization is canonical: a second snapshot of the same state is
        // byte-identical.
        assert_eq!(
            serde_json::to_string(&snapshot).unwrap(),
            serde_json::to_string(&paused.checkpoint()).unwrap()
        );
        let mut resumed = ReplaySession::restore(&snapshot).unwrap();
        resumed.run_until(None);
        let got = resumed.result();

        assert_eq!(got.finish_times, want.finish_times);
        assert_eq!(got.compute_time, want.compute_time);
        assert_eq!(got.wait_time, want.wait_time);
        assert_eq!(got.messages_sent, want.messages_sent);
        assert_eq!(got.net_stats, want.net_stats);
    }

    #[test]
    fn push_ops_streams_work_into_a_live_session() {
        let (p, hosts) = star_platform(2);
        let scripts = vec![
            ProcessScript {
                rank: 0,
                ops: vec![compute(1)],
            },
            ProcessScript {
                rank: 1,
                ops: vec![],
            },
        ];
        let mut s = ReplaySession::new(p, &hosts, &scripts, &ReplayConfig::default());
        s.run_until(None);
        assert!(s.finished());
        let first = s.result().makespan;

        // Revive both ranks with a streamed message exchange.
        s.push_ops(
            0,
            &[ReplayOp::Send {
                to: 1,
                bytes: 12_500,
                tag: 3,
            }],
        );
        s.push_ops(1, &[ReplayOp::Recv { from: 0, tag: 3 }]);
        s.run_until(None);
        assert!(s.finished());
        let second = s.result();
        assert!(second.makespan > first);
        assert_eq!(second.messages_sent, 1);
    }

    #[test]
    fn maxmin_and_bottleneck_agree_for_sparse_traffic() {
        let (p, hosts) = star_platform(2);
        let scripts = vec![
            ProcessScript {
                rank: 0,
                ops: vec![ReplayOp::Send {
                    to: 1,
                    bytes: 125_000,
                    tag: 0,
                }],
            },
            ProcessScript {
                rank: 1,
                ops: vec![ReplayOp::Recv { from: 0, tag: 0 }],
            },
        ];
        let a = replay(p.clone(), &hosts, &scripts, &ReplayConfig::default());
        let cfg = ReplayConfig {
            sharing: SharingMode::MaxMinFair,
            protocol: ProtocolCosts::none(),
            ..ReplayConfig::default()
        };
        let b = replay(p, &hosts, &scripts, &cfg);
        let rel =
            (a.makespan.as_secs_f64() - b.makespan.as_secs_f64()).abs() / a.makespan.as_secs_f64();
        assert!(rel < 0.01, "models disagree by {rel}");
    }
}
