//! Trace replay — the MSG-like simulation kernel.
//!
//! dPerf's prediction step "uses the MSG module for replaying trace files
//! based on a deployment platform defined by us" (paper §III-D.1). This module
//! is that replay kernel: every process (rank) owns a *script* of operations —
//! compute for some duration, send a message, wait for a message — and the
//! engine executes all scripts against a [`Platform`], yielding the simulated
//! makespan `t_predicted`.
//!
//! Message semantics are the eager/rendezvous-free semantics the P2PDC
//! obstacle code relies on: a `Send` is asynchronous (the sender continues
//! after paying the protocol's per-message CPU cost), a `Recv` blocks until a
//! matching message (same source rank and tag) has been fully delivered.
//! Per-message protocol costs ([`ProtocolCosts`]) model P2PSAP's header bytes
//! and send/receive processing time; charging the receive cost on the
//! receiving host serialises message handling at a coordinator exactly like
//! the real protocol stack would.

use crate::event::{run_world, Scheduler, World};
use crate::network::{
    FlowDelivery, NetEvent, NetStats, NetWorldEvent, Network, RebalanceEngine, SharingMode,
};
use crate::platform::Platform;
use p2p_common::{DataSize, HostId, SimDuration, SimTime};
use std::collections::{HashMap, VecDeque};

/// One operation of a process script.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayOp {
    /// Busy the CPU for the given duration (measured or modelled block time).
    Compute {
        /// How long the CPU is busy.
        duration: SimDuration,
    },
    /// Asynchronously send `bytes` to rank `to` with the given tag.
    Send {
        /// Destination rank.
        to: usize,
        /// Payload size on the wire (before protocol headers).
        bytes: u64,
        /// Message tag matched by the receiver.
        tag: u32,
    },
    /// Block until a message from rank `from` with the given tag arrives.
    Recv {
        /// Source rank to match.
        from: usize,
        /// Message tag to match.
        tag: u32,
    },
    /// Convenience: send to `to`, then wait for a message from `from`
    /// (the classic halo exchange). Expanded to `Send` + `Recv` internally.
    SendRecv {
        /// Destination rank of the send half.
        to: usize,
        /// Source rank the receive half waits for.
        from: usize,
        /// Payload size of the send half.
        bytes: u64,
        /// Tag used by both halves.
        tag: u32,
    },
}

/// The full operation list of one rank.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessScript {
    /// The rank this script belongs to (must equal its index in the script list).
    pub rank: usize,
    /// Operations, executed in order.
    pub ops: Vec<ReplayOp>,
}

/// Per-message protocol overheads (models P2PSAP's channel stack).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtocolCosts {
    /// Header/control bytes added to every message on the wire.
    pub header_bytes: u64,
    /// CPU time charged at the sender per message.
    pub send_cpu: SimDuration,
    /// CPU time charged at the receiver per message, once it is consumed.
    pub recv_cpu: SimDuration,
}

impl ProtocolCosts {
    /// No overhead at all (raw network model).
    pub fn none() -> Self {
        ProtocolCosts {
            header_bytes: 0,
            send_cpu: SimDuration::ZERO,
            recv_cpu: SimDuration::ZERO,
        }
    }
}

impl Default for ProtocolCosts {
    fn default() -> Self {
        ProtocolCosts::none()
    }
}

/// Configuration of a replay run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayConfig {
    /// Bandwidth-sharing model for bulk transfers.
    pub sharing: SharingMode,
    /// Per-message protocol costs.
    pub protocol: ProtocolCosts,
    /// Rebalance engine for `SharingMode::MaxMinFair` (ignored under
    /// `Bottleneck`). Every engine produces identical simulated results;
    /// non-default choices exist for differential tests and benchmarks.
    /// The default, [`RebalanceEngine::WarmStart`], resumes each
    /// component's fill from its persisted bottleneck record.
    pub engine: RebalanceEngine,
    /// Worker-thread budget for [`RebalanceEngine::ParallelShard`] and
    /// [`RebalanceEngine::WarmStart`] flushes (`None` = the rayon worker
    /// count, which honours `RAYON_NUM_THREADS`). Thread count never
    /// changes simulated results — this exists so differential tests and
    /// benchmarks can pin it.
    pub shard_threads: Option<usize>,
    /// Work threshold for [`RebalanceEngine::ParallelShard`] and
    /// [`RebalanceEngine::WarmStart`] flushes (`None` = the engine
    /// default; see [`Network::set_parallel_threshold`]).
    pub parallel_threshold: Option<usize>,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            sharing: SharingMode::Bottleneck,
            protocol: ProtocolCosts::none(),
            engine: RebalanceEngine::default(),
            shard_threads: None,
            parallel_threshold: None,
        }
    }
}

/// Outcome of a replay.
#[derive(Debug, Clone)]
pub struct ReplayResult {
    /// Completion time of the slowest rank — the predicted execution time.
    pub makespan: SimDuration,
    /// Completion time of every rank.
    pub finish_times: Vec<SimTime>,
    /// Total CPU-busy time per rank (compute blocks + protocol processing).
    pub compute_time: Vec<SimDuration>,
    /// Total time each rank spent blocked in `Recv`.
    pub wait_time: Vec<SimDuration>,
    /// Number of messages sent across all ranks.
    pub messages_sent: u64,
    /// Network-level statistics.
    pub net_stats: NetStats,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum ProcState {
    /// Ready to execute the next operation.
    Ready,
    /// CPU busy (compute block or protocol processing) until a `Resume` fires.
    Busy,
    /// Blocked waiting for a message.
    Waiting { from: usize, tag: u32 },
    /// Script exhausted.
    Done,
}

#[derive(Debug)]
struct Proc {
    host: HostId,
    ops: Vec<ReplayOp>,
    pc: usize,
    state: ProcState,
    mailbox: HashMap<(usize, u32), VecDeque<()>>,
    finish: Option<SimTime>,
    compute_total: SimDuration,
    wait_total: SimDuration,
    wait_since: SimTime,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    Net(NetEvent),
    Resume { rank: usize },
}

impl From<NetEvent> for Ev {
    fn from(e: NetEvent) -> Self {
        Ev::Net(e)
    }
}

impl NetWorldEvent for Ev {
    fn as_net_event(&self) -> Option<NetEvent> {
        match self {
            Ev::Net(e) => Some(*e),
            Ev::Resume { .. } => None,
        }
    }
}

struct ReplayWorld {
    net: Network,
    procs: Vec<Proc>,
    protocol: ProtocolCosts,
    token_info: HashMap<u64, (usize, usize, u32)>, // token -> (src, dst, tag)
    next_token: u64,
    messages_sent: u64,
}

impl ReplayWorld {
    fn advance(&mut self, sched: &mut Scheduler<Ev>, rank: usize) {
        loop {
            if self.procs[rank].state == ProcState::Done {
                return;
            }
            let pc = self.procs[rank].pc;
            if pc >= self.procs[rank].ops.len() {
                self.procs[rank].state = ProcState::Done;
                self.procs[rank].finish = Some(sched.now());
                return;
            }
            let op = self.procs[rank].ops[pc];
            match op {
                ReplayOp::Compute { duration } => {
                    self.procs[rank].pc += 1;
                    self.procs[rank].state = ProcState::Busy;
                    self.procs[rank].compute_total += duration;
                    sched.schedule_in(duration, Ev::Resume { rank });
                    return;
                }
                ReplayOp::Send { to, bytes, tag } => {
                    self.procs[rank].pc += 1;
                    self.post_send(sched, rank, to, bytes, tag);
                    let cpu = self.protocol.send_cpu;
                    if !cpu.is_zero() {
                        self.procs[rank].state = ProcState::Busy;
                        self.procs[rank].compute_total += cpu;
                        sched.schedule_in(cpu, Ev::Resume { rank });
                        return;
                    }
                }
                ReplayOp::Recv { from, tag } => {
                    let available = self.procs[rank]
                        .mailbox
                        .get_mut(&(from, tag))
                        .and_then(|q| q.pop_front())
                        .is_some();
                    if available {
                        self.procs[rank].pc += 1;
                        let cpu = self.protocol.recv_cpu;
                        if !cpu.is_zero() {
                            self.procs[rank].state = ProcState::Busy;
                            self.procs[rank].compute_total += cpu;
                            sched.schedule_in(cpu, Ev::Resume { rank });
                            return;
                        }
                    } else {
                        self.procs[rank].state = ProcState::Waiting { from, tag };
                        self.procs[rank].wait_since = sched.now();
                        return;
                    }
                }
                ReplayOp::SendRecv { .. } => {
                    unreachable!("SendRecv is expanded before the replay starts")
                }
            }
        }
    }

    fn post_send(
        &mut self,
        sched: &mut Scheduler<Ev>,
        from: usize,
        to: usize,
        bytes: u64,
        tag: u32,
    ) {
        assert!(to < self.procs.len(), "send to unknown rank {to}");
        let token = self.next_token;
        self.next_token += 1;
        self.token_info.insert(token, (from, to, tag));
        self.messages_sent += 1;
        let size = DataSize::from_bytes(bytes + self.protocol.header_bytes);
        let src_host = self.procs[from].host;
        let dst_host = self.procs[to].host;
        self.net.start_flow(sched, src_host, dst_host, size, token);
    }

    fn deliver(&mut self, sched: &mut Scheduler<Ev>, delivery: FlowDelivery) {
        let (src, dst, tag) = self
            .token_info
            .remove(&delivery.token)
            .expect("delivery for unknown token");
        self.procs[dst]
            .mailbox
            .entry((src, tag))
            .or_default()
            .push_back(());
        if let ProcState::Waiting { from, tag: wtag } = self.procs[dst].state {
            if from == src && wtag == tag {
                // Consume the message we were waiting for and resume.
                self.procs[dst]
                    .mailbox
                    .get_mut(&(src, tag))
                    .and_then(|q| q.pop_front())
                    .expect("message just enqueued");
                let waited = sched.now().duration_since(self.procs[dst].wait_since);
                self.procs[dst].wait_total += waited;
                self.procs[dst].pc += 1;
                let cpu = self.protocol.recv_cpu;
                if cpu.is_zero() {
                    self.procs[dst].state = ProcState::Ready;
                    self.advance(sched, dst);
                } else {
                    self.procs[dst].state = ProcState::Busy;
                    self.procs[dst].compute_total += cpu;
                    sched.schedule_in(cpu, Ev::Resume { rank: dst });
                }
            }
        }
    }
}

impl World for ReplayWorld {
    type Event = Ev;

    fn handle(&mut self, sched: &mut Scheduler<Ev>, event: Ev) {
        match event {
            Ev::Resume { rank } => {
                self.procs[rank].state = ProcState::Ready;
                self.advance(sched, rank);
            }
            Ev::Net(ne) => {
                let deliveries = self.net.on_event(sched, ne);
                for d in deliveries {
                    self.deliver(sched, d);
                }
            }
        }
    }
}

/// Expand `SendRecv` into `Send` followed by `Recv`.
fn expand_ops(ops: &[ReplayOp]) -> Vec<ReplayOp> {
    let mut out = Vec::with_capacity(ops.len());
    for &op in ops {
        match op {
            ReplayOp::SendRecv {
                to,
                from,
                bytes,
                tag,
            } => {
                out.push(ReplayOp::Send { to, bytes, tag });
                out.push(ReplayOp::Recv { from, tag });
            }
            other => out.push(other),
        }
    }
    out
}

/// Replay `scripts` on `platform`, mapping rank `i` to `rank_hosts[i]`.
///
/// Panics if the number of scripts and host mappings differ, or if a script's
/// `rank` field does not match its position.
pub fn replay(
    platform: Platform,
    rank_hosts: &[HostId],
    scripts: &[ProcessScript],
    cfg: &ReplayConfig,
) -> ReplayResult {
    assert_eq!(
        rank_hosts.len(),
        scripts.len(),
        "need exactly one host per process script"
    );
    for (i, s) in scripts.iter().enumerate() {
        assert_eq!(s.rank, i, "script {i} declares rank {}", s.rank);
    }
    let procs: Vec<Proc> = scripts
        .iter()
        .zip(rank_hosts)
        .map(|(s, &h)| Proc {
            host: h,
            ops: expand_ops(&s.ops),
            pc: 0,
            state: ProcState::Ready,
            mailbox: HashMap::new(),
            finish: None,
            compute_total: SimDuration::ZERO,
            wait_total: SimDuration::ZERO,
            wait_since: SimTime::ZERO,
        })
        .collect();
    let mut net = Network::with_engine(platform, cfg.sharing, cfg.engine);
    if let Some(threads) = cfg.shard_threads {
        net.set_shard_threads(threads);
    }
    if let Some(min_flows) = cfg.parallel_threshold {
        net.set_parallel_threshold(min_flows);
    }
    let mut world = ReplayWorld {
        net,
        procs,
        protocol: cfg.protocol,
        token_info: HashMap::new(),
        next_token: 0,
        messages_sent: 0,
    };
    let mut sched: Scheduler<Ev> = Scheduler::new();
    // Kick every rank off at t = 0.
    for rank in 0..world.procs.len() {
        sched.schedule_at(SimTime::ZERO, Ev::Resume { rank });
    }
    run_world(&mut world, &mut sched, None);
    for (i, p) in world.procs.iter().enumerate() {
        assert!(
            p.finish.is_some(),
            "rank {i} never finished (blocked at pc {} of {}): unmatched receive?",
            p.pc,
            p.ops.len()
        );
    }
    let finish_times: Vec<SimTime> = world.procs.iter().map(|p| p.finish.unwrap()).collect();
    let makespan = finish_times
        .iter()
        .copied()
        .max()
        .unwrap_or(SimTime::ZERO)
        .duration_since(SimTime::ZERO);
    ReplayResult {
        makespan,
        finish_times,
        compute_time: world.procs.iter().map(|p| p.compute_total).collect(),
        wait_time: world.procs.iter().map(|p| p.wait_total).collect(),
        messages_sent: world.messages_sent,
        net_stats: world.net.stats().clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{HostSpec, LinkSpec, PlatformBuilder};
    use p2p_common::Bandwidth;

    fn star_platform(n: usize) -> (Platform, Vec<HostId>) {
        let mut b = PlatformBuilder::new();
        let sw = b.add_router("sw");
        let spec = LinkSpec::new(Bandwidth::from_mbps(100.0), SimDuration::from_micros(100));
        let hosts: Vec<HostId> = (0..n)
            .map(|i| {
                let h = b.add_host(
                    format!("h{i}"),
                    format!("10.0.0.{}", i + 1).parse().unwrap(),
                    HostSpec::default(),
                );
                b.add_host_link(format!("l{i}"), h, sw, spec);
                h
            })
            .collect();
        (b.build(), hosts)
    }

    fn compute(ms: u64) -> ReplayOp {
        ReplayOp::Compute {
            duration: SimDuration::from_millis(ms),
        }
    }

    #[test]
    fn pure_compute_makespan_is_the_slowest_rank() {
        let (p, hosts) = star_platform(3);
        let scripts = vec![
            ProcessScript {
                rank: 0,
                ops: vec![compute(10)],
            },
            ProcessScript {
                rank: 1,
                ops: vec![compute(30)],
            },
            ProcessScript {
                rank: 2,
                ops: vec![compute(20), compute(5)],
            },
        ];
        let res = replay(p, &hosts, &scripts, &ReplayConfig::default());
        assert_eq!(res.makespan, SimDuration::from_millis(30));
        assert_eq!(res.compute_time[2], SimDuration::from_millis(25));
        assert_eq!(res.messages_sent, 0);
    }

    #[test]
    fn ping_message_timing_is_exact() {
        let (p, hosts) = star_platform(2);
        // 12500 bytes over 100 Mbps = 1 ms, plus 200 us of route latency.
        let scripts = vec![
            ProcessScript {
                rank: 0,
                ops: vec![ReplayOp::Send {
                    to: 1,
                    bytes: 12_500,
                    tag: 0,
                }],
            },
            ProcessScript {
                rank: 1,
                ops: vec![ReplayOp::Recv { from: 0, tag: 0 }],
            },
        ];
        let res = replay(p, &hosts, &scripts, &ReplayConfig::default());
        assert_eq!(res.makespan, SimDuration::from_micros(1200));
        assert_eq!(res.wait_time[1], SimDuration::from_micros(1200));
        assert_eq!(res.wait_time[0], SimDuration::ZERO);
        assert_eq!(res.messages_sent, 1);
    }

    #[test]
    fn sendrecv_exchange_does_not_deadlock() {
        let (p, hosts) = star_platform(2);
        let xchg = |other: usize| ReplayOp::SendRecv {
            to: other,
            from: other,
            bytes: 9600,
            tag: 7,
        };
        let scripts = vec![
            ProcessScript {
                rank: 0,
                ops: vec![compute(1), xchg(1), compute(1)],
            },
            ProcessScript {
                rank: 1,
                ops: vec![compute(2), xchg(0), compute(1)],
            },
        ];
        let res = replay(p, &hosts, &scripts, &ReplayConfig::default());
        // Rank 1 computes 2 ms, exchanges (~0.968 ms), computes 1 ms more.
        assert!(res.makespan > SimDuration::from_millis(3));
        assert!(res.makespan < SimDuration::from_millis(5));
    }

    #[test]
    fn recv_before_send_blocks_until_delivery() {
        let (p, hosts) = star_platform(2);
        let scripts = vec![
            ProcessScript {
                rank: 0,
                ops: vec![
                    compute(50),
                    ReplayOp::Send {
                        to: 1,
                        bytes: 100,
                        tag: 1,
                    },
                ],
            },
            ProcessScript {
                rank: 1,
                ops: vec![ReplayOp::Recv { from: 0, tag: 1 }],
            },
        ];
        let res = replay(p, &hosts, &scripts, &ReplayConfig::default());
        assert!(res.wait_time[1] >= SimDuration::from_millis(50));
        assert!(res.makespan >= SimDuration::from_millis(50));
    }

    #[test]
    fn tags_disambiguate_messages() {
        let (p, hosts) = star_platform(2);
        // Rank 0 sends tag 2 then tag 1; rank 1 waits for tag 1 first. Since
        // matching is by (source, tag) the replay must not mis-deliver.
        let scripts = vec![
            ProcessScript {
                rank: 0,
                ops: vec![
                    ReplayOp::Send {
                        to: 1,
                        bytes: 50_000,
                        tag: 2,
                    },
                    ReplayOp::Send {
                        to: 1,
                        bytes: 100,
                        tag: 1,
                    },
                ],
            },
            ProcessScript {
                rank: 1,
                ops: vec![
                    ReplayOp::Recv { from: 0, tag: 1 },
                    ReplayOp::Recv { from: 0, tag: 2 },
                ],
            },
        ];
        let res = replay(p, &hosts, &scripts, &ReplayConfig::default());
        assert_eq!(res.messages_sent, 2);
        assert!(res.finish_times[1] > SimTime::ZERO);
    }

    #[test]
    fn protocol_costs_are_charged_and_serialised() {
        let (p, hosts) = star_platform(3);
        let protocol = ProtocolCosts {
            header_bytes: 64,
            send_cpu: SimDuration::from_micros(50),
            recv_cpu: SimDuration::from_micros(50),
        };
        // Ranks 1 and 2 both send to rank 0, which receives both.
        let scripts = vec![
            ProcessScript {
                rank: 0,
                ops: vec![
                    ReplayOp::Recv { from: 1, tag: 0 },
                    ReplayOp::Recv { from: 2, tag: 0 },
                ],
            },
            ProcessScript {
                rank: 1,
                ops: vec![ReplayOp::Send {
                    to: 0,
                    bytes: 8,
                    tag: 0,
                }],
            },
            ProcessScript {
                rank: 2,
                ops: vec![ReplayOp::Send {
                    to: 0,
                    bytes: 8,
                    tag: 0,
                }],
            },
        ];
        let cfg = ReplayConfig {
            sharing: SharingMode::Bottleneck,
            protocol,
            ..ReplayConfig::default()
        };
        let res = replay(p, &hosts, &scripts, &cfg);
        // Receiver pays 2 * 50 us of protocol processing.
        assert_eq!(res.compute_time[0], SimDuration::from_micros(100));
        assert_eq!(res.compute_time[1], SimDuration::from_micros(50));
        // Headers inflate the wire size.
        assert_eq!(res.net_stats.bytes_delivered, 2 * (8 + 64));
    }

    #[test]
    #[should_panic(expected = "never finished")]
    fn unmatched_receive_is_reported() {
        let (p, hosts) = star_platform(2);
        let scripts = vec![
            ProcessScript {
                rank: 0,
                ops: vec![],
            },
            ProcessScript {
                rank: 1,
                ops: vec![ReplayOp::Recv { from: 0, tag: 9 }],
            },
        ];
        replay(p, &hosts, &scripts, &ReplayConfig::default());
    }

    #[test]
    fn ring_pipeline_over_many_ranks_completes() {
        let n = 16;
        let (p, hosts) = star_platform(n);
        let mut scripts = Vec::new();
        for r in 0..n {
            let mut ops = vec![compute(1)];
            if r > 0 {
                ops.push(ReplayOp::Recv {
                    from: r - 1,
                    tag: 0,
                });
            }
            if r + 1 < n {
                ops.push(ReplayOp::Send {
                    to: r + 1,
                    bytes: 1000,
                    tag: 0,
                });
            }
            scripts.push(ProcessScript { rank: r, ops });
        }
        let res = replay(p, &hosts, &scripts, &ReplayConfig::default());
        assert_eq!(res.messages_sent, (n - 1) as u64);
        // The token must travel through all ranks: makespan well above a single hop.
        assert!(res.makespan > SimDuration::from_millis(3));
    }

    #[test]
    fn maxmin_and_bottleneck_agree_for_sparse_traffic() {
        let (p, hosts) = star_platform(2);
        let scripts = vec![
            ProcessScript {
                rank: 0,
                ops: vec![ReplayOp::Send {
                    to: 1,
                    bytes: 125_000,
                    tag: 0,
                }],
            },
            ProcessScript {
                rank: 1,
                ops: vec![ReplayOp::Recv { from: 0, tag: 0 }],
            },
        ];
        let a = replay(p.clone(), &hosts, &scripts, &ReplayConfig::default());
        let cfg = ReplayConfig {
            sharing: SharingMode::MaxMinFair,
            protocol: ProtocolCosts::none(),
            ..ReplayConfig::default()
        };
        let b = replay(p, &hosts, &scripts, &cfg);
        let rel =
            (a.makespan.as_secs_f64() - b.makespan.as_secs_f64()).abs() / a.makespan.as_secs_f64();
        assert!(rel < 0.01, "models disagree by {rel}");
    }
}
